#!/usr/bin/env python
"""Transcribe measured tables from bench_output.txt into EXPERIMENTS.md.

The benchmark harness prints every regenerated table in the
``== <Name>: <description> ==`` format; this script lifts each table into
the matching ``<!-- TABLE:<key> -->`` placeholder of EXPERIMENTS.md as a
fenced code block. Idempotent: placeholders are preserved as HTML comments
so reruns replace previous transcriptions.

Usage: python scripts/fill_experiments_md.py [bench_output.txt] [EXPERIMENTS.md]
"""

import re
import sys

NAME_BY_KEY = {
    "fig4": "Figure 4",
    "fig5": "Figure 5",
    "fig6": "Figure 6",
    "fig7": "Figure 7",
    "fig8": "Figure 8",
    "fig9": "Figure 9",
    "fig10": "Figure 10",
    "fig11": "Figure 11",
    "fig12": "Figure 12",
    "fig13": "Figure 13",
}


def extract_tables(log_text: str) -> dict:
    """Pull every printed '== Name: ... ==' table out of a bench log."""
    tables = {}
    lines = log_text.splitlines()
    i = 0
    while i < len(lines):
        match = re.match(r"== (.+?): .+ ==$", lines[i].strip())
        if match:
            name = match.group(1)
            block = [lines[i].strip()]
            i += 1
            while i < len(lines) and lines[i].strip() and not lines[i].startswith("=="):
                if re.match(r"^-+ benchmark", lines[i]):
                    break
                block.append(lines[i].rstrip())
                if lines[i].startswith("average"):
                    i += 1
                    break
                i += 1
            tables[name] = "\n".join(block)
        else:
            i += 1
    return tables


def fill(markdown: str, tables: dict) -> str:
    """Replace each placeholder (and any previous fill) with its table."""
    for key, name in NAME_BY_KEY.items():
        if name not in tables:
            continue
        replacement = f"<!-- TABLE:{key} -->\n```\n{tables[name]}\n```"
        pattern = re.compile(
            rf"<!-- TABLE:{key} -->(?:\n```\n.*?\n```)?", re.DOTALL
        )
        markdown = pattern.sub(replacement, markdown, count=1)
    return markdown


def main() -> int:
    bench_path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    md_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    tables = extract_tables(open(bench_path).read())
    filled = fill(open(md_path).read(), tables)
    open(md_path, "w").write(filled)
    found = sorted(set(NAME_BY_KEY.values()) & set(tables))
    print(f"transcribed {len(found)} tables: {', '.join(found)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
