"""Setuptools shim.

All project metadata lives in pyproject.toml; this file exists so
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (e.g. fully offline machines).
"""

from setuptools import setup

setup()
