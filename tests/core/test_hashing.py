"""Tests for the context hash and float quantization (Section VII-B)."""

import math
import struct

from hypothesis import given
from hypothesis import strategies as st

from repro.core.hashing import context_hash, quantize_float, value_to_bits


class TestQuantizeFloat:
    def test_zero_drop_returns_value(self):
        assert quantize_float(1.5, 0) == 1.5

    def test_full_mantissa_drop_keeps_sign_and_exponent(self):
        quantized = quantize_float(1.999, 23)
        assert quantized == 1.0  # 1.999 -> exponent of 1.0, mantissa zeroed

    def test_drop_merges_close_values(self):
        a = quantize_float(1.0001, 15)
        b = quantize_float(1.0002, 15)
        assert a == b

    def test_negative_values_keep_sign(self):
        assert quantize_float(-3.7, 23) == -2.0

    def test_nan_passes_through(self):
        assert math.isnan(quantize_float(float("nan"), 10))

    def test_infinity_passes_through(self):
        assert quantize_float(math.inf, 10) == math.inf

    @given(st.floats(-1e30, 1e30, allow_nan=False), st.integers(0, 23))
    def test_idempotent(self, value, bits):
        once = quantize_float(value, bits)
        assert quantize_float(once, bits) == once

    @given(st.floats(min_value=1e-30, max_value=1e30), st.integers(1, 23))
    def test_magnitude_never_increases(self, value, bits):
        # Clearing mantissa bits can only round magnitude towards zero
        # (relative to the single-precision rounding of the input).
        assert abs(quantize_float(value, bits)) <= abs(
            struct.unpack("<f", struct.pack("<f", value))[0]
        )


class TestValueToBits:
    def test_int_is_its_own_pattern(self):
        assert value_to_bits(42) == 42

    def test_negative_int_uses_twos_complement(self):
        assert value_to_bits(-1) == (1 << 64) - 1

    def test_bool_coerces_to_int(self):
        assert value_to_bits(True) == 1

    def test_float_uses_float32_pattern(self):
        expected = struct.unpack("<I", struct.pack("<f", 1.5))[0]
        assert value_to_bits(1.5) == expected

    def test_mantissa_drop_changes_pattern(self):
        assert value_to_bits(1.0001, 0) != value_to_bits(1.0001, 23)

    def test_close_floats_merge_after_drop(self):
        assert value_to_bits(1.0001, 15) == value_to_bits(1.0002, 15)

    def test_nan_has_canonical_pattern(self):
        assert value_to_bits(float("nan")) == 0x7FC00000

    def test_float_overflow_maps_to_inf_pattern(self):
        assert value_to_bits(1e300) == 0x7F800000
        assert value_to_bits(-1e300) == 0xFF800000

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_ints_fit_64_bits(self, value):
        assert 0 <= value_to_bits(value) < (1 << 64)


class TestContextHash:
    def test_deterministic(self):
        a = context_hash(0x400, [1.0, 2.0], 9, 21)
        b = context_hash(0x400, [1.0, 2.0], 9, 21)
        assert a == b

    def test_index_in_range(self):
        index, tag = context_hash(0x1234, [3.5], 9, 21)
        assert 0 <= index < 512
        assert 0 <= tag < (1 << 21)

    def test_different_pcs_usually_differ(self):
        pairs = {context_hash(pc, [], 9, 21) for pc in range(0, 400, 4)}
        assert len(pairs) > 90  # near-perfect separation for 100 PCs

    def test_ghb_values_affect_hash(self):
        a = context_hash(0x400, [1.0], 9, 21)
        b = context_hash(0x400, [2.0], 9, 21)
        assert a != b

    def test_mantissa_drop_merges_contexts(self):
        a = context_hash(0x400, [1.0001], 9, 21, mantissa_drop_bits=20)
        b = context_hash(0x400, [1.0002], 9, 21, mantissa_drop_bits=20)
        assert a == b

    def test_empty_ghb_is_pc_only(self):
        assert context_hash(0x400, [], 9, 21) == context_hash(0x400, (), 9, 21)

    @given(
        st.integers(0, 2**40),
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=4),
        st.integers(1, 12),
        st.integers(4, 24),
    )
    def test_outputs_always_in_range(self, pc, ghb, index_bits, tag_bits):
        index, tag = context_hash(pc, ghb, index_bits, tag_bits)
        assert 0 <= index < (1 << index_bits)
        assert 0 <= tag < (1 << tag_bits)
