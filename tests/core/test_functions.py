"""Tests for the LHB computation functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.functions import (
    COMPUTE_FUNCTIONS,
    average,
    compute_approximation,
    last_delta,
    last_value,
    stride,
)
from repro.errors import ConfigurationError


class TestFunctions:
    def test_average(self):
        assert average([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_last_value(self):
        assert last_value([1, 2, 9]) == 9.0

    def test_stride_extrapolates_mean_delta(self):
        assert stride([1.0, 2.0, 3.0]) == 4.0

    def test_stride_single_value_degenerates_to_last(self):
        assert stride([7.0]) == 7.0

    def test_last_delta(self):
        assert last_delta([1.0, 5.0, 6.0]) == 7.0

    def test_last_delta_single_value(self):
        assert last_delta([3.0]) == 3.0

    def test_registry_contains_paper_baseline(self):
        assert "average" in COMPUTE_FUNCTIONS
        assert set(COMPUTE_FUNCTIONS) >= {"average", "last", "stride", "delta"}


class TestComputeApproximation:
    def test_float_returns_float_average(self):
        assert compute_approximation([1.0, 2.0], "average", is_float=True) == 1.5

    def test_int_rounds_to_nearest(self):
        result = compute_approximation([1, 2], "average", is_float=False)
        assert isinstance(result, int)
        assert result == 2  # 1.5 rounds to 2

    def test_int_average_stays_in_value_range(self):
        # Pixels: averaging bounded ints can never leave the range —
        # Section VI-B's explanation of why integers approximate well.
        values = [0, 255, 128, 64]
        result = compute_approximation(values, "average", is_float=False)
        assert min(values) <= result <= max(values)

    def test_empty_lhb_rejected(self):
        with pytest.raises(ValueError):
            compute_approximation([], "average")

    def test_unknown_function_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_approximation([1.0], "median-of-medians")

    @given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=8))
    def test_average_within_bounds(self, values):
        result = compute_approximation(values, "average", is_float=True)
        assert min(values) - 1e-6 <= result <= max(values) + 1e-6

    @given(
        st.lists(st.integers(-1000, 1000), min_size=1, max_size=8),
        st.sampled_from(sorted(COMPUTE_FUNCTIONS)),
    )
    def test_int_results_are_ints(self, values, fn):
        assert isinstance(compute_approximation(values, fn, is_float=False), int)
