"""Tests for variable-step confidence updates (Section III-B future work)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.approximator import LoadValueApproximator
from repro.core.config import ApproximatorConfig
from repro.core.confidence import SaturatingCounter, confidence_update_steps
from repro.errors import ConfigurationError


class TestStepFunction:
    def test_baseline_step_is_plus_minus_one(self):
        assert confidence_update_steps(100.0, 100.0, 0.10, 1) == 1
        assert confidence_update_steps(95.0, 100.0, 0.10, 1) == 1
        assert confidence_update_steps(50.0, 100.0, 0.10, 1) == -1

    def test_perfect_approximation_earns_full_step(self):
        assert confidence_update_steps(100.0, 100.0, 0.10, 4) == 4

    def test_window_edge_earns_minimum_step(self):
        assert confidence_update_steps(90.0, 100.0, 0.10, 4) == 1

    def test_large_miss_costs_large_step(self):
        # 50 off on a 10-cycle window: ratio 5 -> capped at step_max.
        assert confidence_update_steps(50.0, 100.0, 0.10, 4) == -4

    def test_slight_miss_costs_small_step(self):
        # 12% off with a 10% window: ratio 1.2 -> -1.
        assert confidence_update_steps(88.0, 100.0, 0.10, 4) == -1

    def test_infinite_window_always_full_increment(self):
        assert confidence_update_steps(1e9, 1.0, math.inf, 4) == 4

    def test_zero_window_is_binary(self):
        assert confidence_update_steps(5.0, 5.0, 0.0, 3) == 3
        assert confidence_update_steps(5.0, 5.1, 0.0, 3) == -3

    def test_zero_actual_uses_absolute_window(self):
        assert confidence_update_steps(0.0, 0.0, 0.10, 2) == 2
        assert confidence_update_steps(5.0, 0.0, 0.10, 2) == -2

    def test_invalid_step_rejected(self):
        with pytest.raises(ConfigurationError):
            confidence_update_steps(1.0, 1.0, 0.10, 0)

    @given(
        st.floats(-1e6, 1e6, allow_nan=False),
        st.floats(-1e6, 1e6, allow_nan=False),
        st.integers(1, 8),
    )
    def test_magnitude_bounded_by_step_max(self, approx, actual, step_max):
        steps = confidence_update_steps(approx, actual, 0.10, step_max)
        assert 1 <= abs(steps) <= step_max

    @given(st.floats(0.1, 1e6), st.integers(1, 8))
    def test_sign_matches_window_membership(self, actual, step_max):
        inside = confidence_update_steps(actual, actual, 0.10, step_max)
        outside = confidence_update_steps(actual * 2, actual, 0.10, step_max)
        assert inside > 0
        assert outside < 0


class TestCounterAdd:
    def test_add_positive_saturates(self):
        counter = SaturatingCounter(bits=4, initial=6)
        assert counter.add(5) == 7

    def test_add_negative_saturates(self):
        counter = SaturatingCounter(bits=4, initial=-6)
        assert counter.add(-5) == -8

    def test_add_zero_is_noop(self):
        counter = SaturatingCounter(bits=4, initial=3)
        assert counter.add(0) == 3


class TestApproximatorIntegration:
    def test_larger_steps_recover_confidence_faster(self):
        """After a bad phase, step_max=4 re-enables approximation sooner."""

        def misses_to_recover(step_max: int) -> int:
            config = ApproximatorConfig(confidence_step_max=step_max)
            approx = LoadValueApproximator(config)
            # Establish the entry, then destroy confidence.
            for value in [1.0] + [1.0, 100.0] * 6:
                decision = approx.on_miss(0x400, True)
                if decision.token is not None:
                    approx.train(decision.token, value)
            # Stable phase: count misses until approximations resume.
            for count in range(1, 50):
                decision = approx.on_miss(0x400, True)
                if decision.approximated:
                    return count
                approx.train(decision.token, 50.0)
            return 50

        assert misses_to_recover(4) < misses_to_recover(1)
