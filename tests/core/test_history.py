"""Unit and property tests for the GHB/LHB FIFO buffers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.history import HistoryBuffer
from repro.errors import ConfigurationError


class TestBasics:
    def test_empty_buffer_is_falsy(self):
        assert not HistoryBuffer(4)

    def test_push_and_values_order_oldest_first(self):
        buf = HistoryBuffer(3)
        for v in (1, 2, 3):
            buf.push(v)
        assert buf.values() == (1, 2, 3)

    def test_overflow_evicts_oldest(self):
        buf = HistoryBuffer(3, initial=[1, 2, 3])
        buf.push(4)
        assert buf.values() == (2, 3, 4)

    def test_newest_returns_last_pushed(self):
        buf = HistoryBuffer(2, initial=[5.5])
        assert buf.newest() == 5.5
        buf.push(7.7)
        assert buf.newest() == 7.7

    def test_newest_on_empty_raises(self):
        with pytest.raises(IndexError):
            HistoryBuffer(2).newest()

    def test_clear_empties(self):
        buf = HistoryBuffer(2, initial=[1, 2])
        buf.clear()
        assert len(buf) == 0
        assert buf.values() == ()

    def test_is_full(self):
        buf = HistoryBuffer(2)
        assert not buf.is_full
        buf.push(1)
        assert not buf.is_full
        buf.push(2)
        assert buf.is_full

    def test_iteration_matches_values(self):
        buf = HistoryBuffer(4, initial=[3, 1, 4])
        assert list(buf) == [3, 1, 4]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            HistoryBuffer(-1)


class TestZeroCapacity:
    """The baseline GHB has zero entries and must be a permanent no-op."""

    def test_push_is_noop(self):
        buf = HistoryBuffer(0)
        buf.push(42)
        assert len(buf) == 0
        assert buf.values() == ()

    def test_zero_capacity_never_full_of_content(self):
        buf = HistoryBuffer(0)
        for v in range(10):
            buf.push(v)
        assert not buf
        assert buf.is_full  # vacuously holds capacity == len == 0


class TestProperties:
    @given(st.lists(st.integers(), max_size=50), st.integers(1, 8))
    def test_length_never_exceeds_capacity(self, values, capacity):
        buf = HistoryBuffer(capacity)
        for v in values:
            buf.push(v)
            assert len(buf) <= capacity

    @given(st.lists(st.floats(allow_nan=False), min_size=1, max_size=50),
           st.integers(1, 8))
    def test_contents_are_last_capacity_pushes(self, values, capacity):
        buf = HistoryBuffer(capacity)
        for v in values:
            buf.push(v)
        assert buf.values() == tuple(values[-capacity:])

    @given(st.lists(st.integers(), min_size=1, max_size=30))
    def test_newest_always_last_push(self, values):
        buf = HistoryBuffer(4)
        for v in values:
            buf.push(v)
            assert buf.newest() == v
