"""Tests for the approximator configuration (Table II baseline)."""

import dataclasses
import math

import pytest

from repro.core.config import BASELINE_CONFIG, INFINITE_WINDOW, ApproximatorConfig
from repro.errors import ConfigurationError


class TestBaseline:
    """The defaults must reproduce the paper's Table II exactly."""

    def test_table_ii_values(self):
        cfg = BASELINE_CONFIG
        assert cfg.table_entries == 512
        assert cfg.confidence_bits == 4
        assert cfg.confidence_min == -8
        assert cfg.confidence_max == 7
        assert cfg.confidence_window == pytest.approx(0.10)
        assert cfg.ghb_size == 0
        assert cfg.lhb_size == 4
        assert cfg.tag_bits == 21
        assert cfg.value_delay == 4
        assert cfg.approximation_degree == 0
        assert cfg.compute_fn == "average"

    def test_integer_confidence_disabled_by_default(self):
        assert not BASELINE_CONFIG.apply_confidence_to_ints
        assert BASELINE_CONFIG.apply_confidence_to_floats

    def test_index_bits(self):
        assert BASELINE_CONFIG.index_bits == 9

    def test_storage_estimate_matches_section_vii(self):
        # ~18 KB with 64-bit LHB values, ~10 KB with 32-bit values.
        kb64 = BASELINE_CONFIG.storage_bits(64) / 8 / 1024
        kb32 = BASELINE_CONFIG.storage_bits(32) / 8 / 1024
        assert 16 < kb64 < 20
        assert 9 < kb32 < 12


class TestValidation:
    @pytest.mark.parametrize("entries", [0, 3, 500, -512])
    def test_non_power_of_two_table_rejected(self, entries):
        with pytest.raises(ConfigurationError):
            ApproximatorConfig(table_entries=entries)

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            ApproximatorConfig(confidence_window=-0.1)

    def test_infinite_window_accepted(self):
        cfg = ApproximatorConfig(confidence_window=INFINITE_WINDOW)
        assert math.isinf(cfg.confidence_window)

    def test_zero_lhb_rejected(self):
        with pytest.raises(ConfigurationError):
            ApproximatorConfig(lhb_size=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            ApproximatorConfig(value_delay=-1)

    def test_negative_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            ApproximatorConfig(approximation_degree=-1)

    def test_mantissa_drop_bounded(self):
        with pytest.raises(ConfigurationError):
            ApproximatorConfig(mantissa_drop_bits=24)
        ApproximatorConfig(mantissa_drop_bits=23)  # boundary OK


class TestOverrides:
    def test_with_overrides_returns_new_config(self):
        base = ApproximatorConfig()
        derived = base.with_overrides(ghb_size=4, approximation_degree=8)
        assert derived.ghb_size == 4
        assert derived.approximation_degree == 8
        assert base.ghb_size == 0  # original untouched

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            BASELINE_CONFIG.ghb_size = 2  # type: ignore[misc]
