"""Behavioural tests for the load value approximator (Section III)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.approximator import DelayQueue, LoadValueApproximator
from repro.core.config import INFINITE_WINDOW, ApproximatorConfig

PC = 0x4000


def warm(approx: LoadValueApproximator, values, pc=PC, is_float=True):
    """Feed a sequence of (miss, train) rounds with the given actual values."""
    for value in values:
        decision = approx.on_miss(pc, is_float)
        if decision.token is not None:
            approx.train(decision.token, value)


class TestColdBehaviour:
    def test_first_miss_cannot_approximate(self):
        approx = LoadValueApproximator()
        decision = approx.on_miss(PC, True)
        assert not decision.approximated
        assert decision.fetch
        assert decision.token is not None

    def test_cold_miss_counted(self):
        approx = LoadValueApproximator()
        approx.on_miss(PC, True)
        assert approx.stats.tag_misses + approx.stats.cold_misses == 1


class TestGeneration:
    def test_warm_entry_returns_lhb_average(self):
        # Values within the 10% window of each other keep confidence up.
        approx = LoadValueApproximator()
        warm(approx, [2.4, 2.5, 2.5, 2.6])
        decision = approx.on_miss(PC, True)
        assert decision.approximated
        assert decision.value == pytest.approx(2.5)

    def test_integer_loads_get_integer_values(self):
        approx = LoadValueApproximator()
        warm(approx, [10, 11], is_float=False)
        decision = approx.on_miss(PC, False)
        assert decision.approximated
        assert isinstance(decision.value, int)

    def test_lhb_keeps_only_last_four(self):
        # Confidence disabled so the outlier cannot gate generation.
        config = ApproximatorConfig(apply_confidence_to_floats=False)
        approx = LoadValueApproximator(config)
        warm(approx, [100.0, 1.0, 2.0, 3.0, 4.0])
        decision = approx.on_miss(PC, True)
        assert decision.value == pytest.approx(2.5)  # the 100.0 fell out

    def test_distinct_pcs_have_distinct_histories(self):
        approx = LoadValueApproximator()
        warm(approx, [1.0, 1.0], pc=0x100)
        warm(approx, [9.0, 9.0], pc=0x200)
        assert approx.on_miss(0x100, True).value == pytest.approx(1.0)
        assert approx.on_miss(0x200, True).value == pytest.approx(9.0)


class TestConfidence:
    def test_bad_approximations_lower_confidence_and_gate(self):
        approx = LoadValueApproximator()
        # Train with wildly different values: every shadow approximation
        # falls outside the 10% window, driving confidence negative.
        warm(approx, [1.0, 100.0, 1.0, 100.0, 1.0, 100.0])
        decision = approx.on_miss(PC, True)
        assert not decision.approximated
        assert decision.fetch  # still fetches (and will retrain)

    def test_stable_values_stay_confident(self):
        approx = LoadValueApproximator()
        warm(approx, [5.0] * 8)
        assert approx.on_miss(PC, True).approximated

    def test_integers_bypass_confidence_by_default(self):
        approx = LoadValueApproximator()
        warm(approx, [1, 1000, 1, 1000, 1, 1000], is_float=False)
        assert approx.on_miss(PC, False).approximated

    def test_integers_gated_when_enabled(self):
        config = ApproximatorConfig(apply_confidence_to_ints=True)
        approx = LoadValueApproximator(config)
        warm(approx, [1, 1000, 1, 1000, 1, 1000], is_float=False)
        assert not approx.on_miss(PC, False).approximated

    def test_infinite_window_never_loses_confidence(self):
        config = ApproximatorConfig(confidence_window=INFINITE_WINDOW)
        approx = LoadValueApproximator(config)
        warm(approx, [1.0, 1e9, -1e9, 3.0, 0.0])
        assert approx.on_miss(PC, True).approximated
        assert approx.stats.confidence_decrements == 0

    def test_confidence_recovers_after_stability(self):
        approx = LoadValueApproximator()
        warm(approx, [1.0, 100.0] * 4)          # destroy confidence
        warm(approx, [50.0] * 20)               # long stable phase
        assert approx.on_miss(PC, True).approximated


class TestApproximationDegree:
    def test_degree_zero_always_fetches(self):
        approx = LoadValueApproximator()
        warm(approx, [2.0, 2.0])
        decision = approx.on_miss(PC, True)
        assert decision.approximated and decision.fetch

    def test_degree_skips_fetches_then_trains(self):
        config = ApproximatorConfig(approximation_degree=2)
        approx = LoadValueApproximator(config)
        warm(approx, [2.0])
        # Training reset the degree counter to 2: the next two
        # approximations skip their fetch, the third fetches and retrains.
        outcomes = []
        for _ in range(3):
            decision = approx.on_miss(PC, True)
            assert decision.approximated
            outcomes.append(decision.fetch)
            if decision.fetch:
                approx.train(decision.token, 2.0)
        assert outcomes == [False, False, True]

    def test_skipped_fetch_reuses_same_value(self):
        config = ApproximatorConfig(approximation_degree=3)
        approx = LoadValueApproximator(config)
        warm(approx, [4.0, 6.0])
        first = approx.on_miss(PC, True)
        second = approx.on_miss(PC, True)
        assert not first.fetch and not second.fetch
        assert first.value == second.value  # LHB untouched between them

    def test_fetch_ratio_is_one_over_degree_plus_one(self):
        degree = 4
        config = ApproximatorConfig(approximation_degree=degree)
        approx = LoadValueApproximator(config)
        warm(approx, [1.0])  # allocate + one training
        fetches = 0
        rounds = 50
        for _ in range(rounds):
            decision = approx.on_miss(PC, True)
            if decision.fetch:
                fetches += 1
                approx.train(decision.token, 1.0)
        # Section III-C: degree 4 -> 1 fetch per 5 misses.
        assert fetches == pytest.approx(rounds / (degree + 1), abs=1)


class TestTraining:
    def test_training_pushes_to_ghb(self):
        config = ApproximatorConfig(ghb_size=2)
        approx = LoadValueApproximator(config)
        warm(approx, [1.0, 2.0, 3.0])
        assert approx.ghb.values() == (2.0, 3.0)

    def test_stale_training_dropped_after_reallocation(self):
        config = ApproximatorConfig(table_entries=1, tag_bits=21)
        approx = LoadValueApproximator(config)
        d1 = approx.on_miss(0x100, True)
        # A second PC maps to the same (only) entry and re-tags it.
        approx.on_miss(0x104, True)
        approx.train(d1.token, 1.0)
        assert approx.stats.stale_trainings == 1

    def test_reset_clears_everything(self):
        approx = LoadValueApproximator()
        warm(approx, [1.0, 2.0])
        approx.reset()
        assert approx.allocated_entries == 0
        assert approx.stats.lookups == 0
        assert not approx.on_miss(PC, True).approximated


class TestStats:
    def test_static_pcs_tracked(self):
        approx = LoadValueApproximator()
        for pc in (0x100, 0x104, 0x100):
            approx.on_miss(pc, True)
        assert approx.stats.static_pcs == {0x100, 0x104}

    def test_coverage_fraction(self):
        approx = LoadValueApproximator()
        # Round 1 is a cold tag miss; rounds 2 and 3 approximate.
        warm(approx, [1.0, 1.0])
        approx.on_miss(PC, True)
        assert approx.stats.coverage == pytest.approx(2 / 3)

    @given(st.lists(st.floats(0.1, 100, allow_nan=False), min_size=1, max_size=40))
    def test_lookup_count_matches_misses(self, values):
        approx = LoadValueApproximator()
        warm(approx, values)
        assert approx.stats.lookups == len(values)


class TestDelayQueue:
    def test_items_due_after_delay_ticks(self):
        queue = DelayQueue(2)
        queue.push("token", 1.0)
        assert list(queue.tick()) == []  # shared empty tuple: no allocation
        assert list(queue.tick()) == [("token", 1.0)]

    def test_zero_delay_due_next_tick(self):
        queue = DelayQueue(0)
        queue.push("t", 5)
        assert queue.tick() == [("t", 5)]

    def test_fifo_order_preserved(self):
        queue = DelayQueue(1)
        queue.push("a", 1)
        queue.push("b", 2)
        assert [t for t, _ in queue.tick()] == ["a", "b"]

    def test_drain_returns_everything(self):
        queue = DelayQueue(10)
        for i in range(5):
            queue.push(f"t{i}", i)
        assert len(queue.drain()) == 5
        assert len(queue) == 0

    @given(st.integers(0, 16), st.integers(1, 30))
    def test_every_item_eventually_due(self, delay, items):
        queue = DelayQueue(delay)
        for i in range(items):
            queue.push(i, i)
        received = []
        for _ in range(delay + items + 1):
            received.extend(queue.tick())
        assert len(received) == items
