"""Tests for saturating counters and the relaxed confidence window."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.confidence import SaturatingCounter, within_window
from repro.errors import ConfigurationError


class TestSaturatingCounter:
    def test_baseline_range_is_minus8_to_7(self):
        counter = SaturatingCounter(bits=4)
        assert counter.minimum == -8
        assert counter.maximum == 7

    def test_starts_confident_at_zero(self):
        assert SaturatingCounter().is_confident

    def test_increment_saturates_at_max(self):
        counter = SaturatingCounter(bits=4, initial=7)
        assert counter.increment() == 7

    def test_decrement_saturates_at_min(self):
        counter = SaturatingCounter(bits=4, initial=-8)
        assert counter.decrement() == -8

    def test_confidence_threshold_is_zero(self):
        counter = SaturatingCounter(initial=0)
        assert counter.is_confident
        counter.decrement()
        assert not counter.is_confident
        counter.increment()
        assert counter.is_confident

    def test_reset_clamps_into_range(self):
        counter = SaturatingCounter(bits=4)
        counter.reset(100)
        assert counter.value == 7
        counter.reset(-100)
        assert counter.value == -8

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            SaturatingCounter(bits=0)

    def test_initial_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            SaturatingCounter(bits=4, initial=8)

    @given(st.lists(st.booleans(), max_size=100), st.integers(2, 8))
    def test_value_always_in_range(self, moves, bits):
        counter = SaturatingCounter(bits=bits)
        for up in moves:
            counter.increment() if up else counter.decrement()
            assert counter.minimum <= counter.value <= counter.maximum


class TestWithinWindow:
    def test_zero_window_requires_exact_match(self):
        assert within_window(1.0, 1.0, 0.0)
        assert not within_window(1.0, 1.0000001, 0.0)

    def test_ten_percent_window(self):
        assert within_window(95.0, 100.0, 0.10)
        assert within_window(110.0, 100.0, 0.10)
        assert not within_window(111.0, 100.0, 0.10)

    def test_window_is_relative_to_actual(self):
        # 10 is within 10% of 9.5? |10-9.5| = 0.5 <= 0.95 yes.
        assert within_window(10.0, 9.5, 0.10)
        # but 10 vs 9.0: 1.0 > 0.9 -> no
        assert not within_window(10.0, 9.0, 0.10)

    def test_infinite_window_accepts_anything(self):
        assert within_window(1e30, -5.0, math.inf)
        assert within_window(float("nan"), 0.0, math.inf)

    def test_negative_actual(self):
        assert within_window(-95.0, -100.0, 0.10)
        assert not within_window(95.0, -100.0, 0.10)

    def test_zero_actual_falls_back_to_absolute(self):
        assert within_window(0.05, 0.0, 0.10)
        assert not within_window(0.2, 0.0, 0.10)

    def test_integers_work(self):
        assert within_window(99, 100, 0.10)
        assert not within_window(50, 100, 0.10)

    @given(st.floats(-1e9, 1e9), st.floats(0.001, 10))
    def test_actual_always_within_its_own_window(self, actual, window):
        assert within_window(actual, actual, window)

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_symmetric_in_sign_flip(self, approx, actual):
        assert within_window(approx, actual, 0.1) == within_window(
            -approx, -actual, 0.1
        )
