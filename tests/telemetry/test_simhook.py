"""SimTelemetry end-to-end: hooks, windows, env configuration."""

from __future__ import annotations

import os

from repro import telemetry
from repro.sim.tracesim import Mode, TraceSimulator
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.simhook import SimTelemetry
from repro.telemetry.tracing import TraceWriter, read_trace
from repro.workloads.registry import get_workload


def _run_canneal(mode: Mode = Mode.LVA) -> TraceSimulator:
    sim = TraceSimulator(mode)
    get_workload("canneal", small=True).execute(sim, 0)
    sim.finish()
    return sim


class TestDisabled:
    def test_sim_hook_is_none_by_default(self):
        assert not telemetry.enabled()
        assert telemetry.sim_hook() is None

    def test_simulator_hook_attribute_is_none(self):
        sim = TraceSimulator(Mode.LVA)
        assert sim._tel is None

    def test_disabled_run_touches_no_registry(self):
        _run_canneal()
        # The registry is only materialized on demand; a disabled run
        # must not have created any metric.
        assert telemetry.metrics().names() == []


class TestEnabled:
    def test_configure_enables_and_publishes_totals(self):
        telemetry.configure(on=True, snapshot_interval=1000)
        sim = _run_canneal()
        assert isinstance(sim._tel, SimTelemetry)
        snap = telemetry.metrics().snapshot()
        assert snap["sim.total.instructions"] == sim.stats.instructions
        assert snap["sim.total.raw_misses"] == sim.stats.raw_misses
        assert snap["sim.mpki"] == sim.stats.mpki
        assert snap["sim.coverage"] == sim.stats.coverage
        telemetry.configure(on=False)
        assert not telemetry.enabled()
        assert os.environ.get(telemetry.TELEMETRY_ENV) is None

    def test_interval_deltas_sum_to_run_totals(self):
        telemetry.configure(on=True, snapshot_interval=1000)
        sim = _run_canneal()
        registry = telemetry.metrics()
        assert len(registry.intervals) > 1
        for field, metric in (
            ("instructions", "sim.instructions"),
            ("raw_misses", "sim.l1.miss"),
            ("covered_misses", "sim.lva.covered"),
            ("fetches", "sim.l1.fetch"),
        ):
            total = sum(s.get(metric, 0) for s in registry.intervals)
            assert total == getattr(sim.stats, field), metric

    def test_trace_records_decisions_and_finish(self, tmp_path):
        trace = tmp_path / "sim.jsonl"
        telemetry.configure(on=True, trace=trace, sample=1)
        _run_canneal()
        telemetry.shutdown()
        records = read_trace(trace)
        events = {r["ev"] for r in records}
        assert "lva.decision" in events
        assert "sim.finish" in events
        decision = next(r for r in records if r["ev"] == "lva.decision")
        assert {"pc", "addr", "approximated", "fetched"} <= decision.keys()

    def test_sampling_thins_decision_records(self, tmp_path):
        dense_path = tmp_path / "dense.jsonl"
        telemetry.configure(on=True, trace=dense_path, sample=1)
        _run_canneal()
        telemetry.shutdown()
        dense = sum(
            1 for r in read_trace(dense_path) if r["ev"] == "lva.decision"
        )

        sparse_path = tmp_path / "sparse.jsonl"
        telemetry.configure(on=True, trace=sparse_path, sample=64)
        _run_canneal()
        telemetry.shutdown()
        sparse = sum(
            1 for r in read_trace(sparse_path) if r["ev"] == "lva.decision"
        )
        assert 0 < sparse < dense


class TestWindows:
    def test_mark_sets_window_gauges(self):
        registry = MetricsRegistry()
        hook = SimTelemetry(registry, interval=100)

        class FakeStats:
            instructions = 100
            loads = 40
            raw_misses = 10
            covered_misses = 5
            fetches = 8

        hook.on_load(FakeStats)
        snap = registry.snapshot()
        assert snap["sim.window.mpki"] == 50.0  # (10-5)/100 * 1000
        assert snap["sim.window.coverage"] == 0.5
        assert registry.intervals[0]["label"] == "window1"

    def test_next_mark_advances_past_current_window(self):
        hook = SimTelemetry(MetricsRegistry(), interval=100)

        class FakeStats:
            instructions = 250
            loads = 0
            raw_misses = 0
            covered_misses = 0
            fetches = 0

        hook.on_load(FakeStats)
        assert hook._next_mark == 300

    def test_fault_hook_emits_trace_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path)
        hook = SimTelemetry(MetricsRegistry(), tracer=writer)
        hook.on_fault("value_bit_flip", addr=4096)
        writer.close()
        (record,) = read_trace(path)
        assert record["ev"] == "fault.memory"
        assert record["kind"] == "value_bit_flip"
        assert record["addr"] == 4096
