"""The zero-overhead-when-disabled contract, pinned structurally.

Wall-clock microbenchmarks are too noisy for CI, so the contract is
enforced three ways: the hook resolves to ``None`` (one ``is None`` test
per load), the disabled path allocates no telemetry objects, and the
LVA006 lint rule statically proves every hook call in the hot methods is
guarded. A coarse sanity timing with a very generous margin rides along
to catch pathological regressions (e.g. env reads per load).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro import telemetry
from repro.analysis import run_paths
from repro.sim.tracesim import Mode, TraceSimulator
from repro.workloads.registry import get_workload

TRACESIM = str(
    Path(__file__).resolve().parent.parent.parent
    / "src"
    / "repro"
    / "sim"
    / "tracesim.py"
)


def _run_once() -> float:
    sim = TraceSimulator(Mode.LVA)
    workload = get_workload("canneal", small=True)
    start = time.perf_counter()
    workload.execute(sim, 0)
    sim.finish()
    return time.perf_counter() - start


class TestDisabledContract:
    def test_disabled_simulator_holds_no_telemetry_objects(self):
        sim = TraceSimulator(Mode.LVA)
        assert sim._tel is None
        assert telemetry.tracer() is None

    def test_hot_path_hook_calls_are_statically_guarded(self):
        # LVA006 over the simulator module: every self._tel call in a hot
        # method is behind an `is not None` guard, and no telemetry
        # module API is called per load.
        violations = run_paths([TRACESIM], select=frozenset({"LVA006"}))
        assert violations == []

    def test_disabled_run_is_not_pathologically_slower(self):
        # Coarse guard only: the disabled run does strictly less work
        # than an enabled run with per-1k-instruction snapshots, so it
        # must not come out slower by more than the noise margin.
        disabled = min(_run_once() for _ in range(2))
        telemetry.configure(on=True, snapshot_interval=1000)
        enabled = min(_run_once() for _ in range(2))
        telemetry.configure(on=False)
        assert disabled <= enabled * 1.5, (disabled, enabled)
