"""Profiler frames, speedscope export/validation, cProfile wrapper."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.profiling import (
    Profiler,
    maybe_profiler,
    profile_to_text,
    validate_speedscope,
)


class TestFrames:
    def test_nested_frames_accumulate_timings(self):
        profiler = Profiler("test")
        with profiler.frame("outer"):
            with profiler.frame("inner"):
                pass
            with profiler.frame("inner"):
                pass
        timings = profiler.timings()
        assert set(timings) == {"outer", "inner"}
        assert timings["outer"] >= timings["inner"] >= 0.0

    def test_end_returns_duration(self):
        profiler = Profiler()
        profiler.begin("work")
        assert profiler.end("work") >= 0

    def test_mismatched_end_raises(self):
        profiler = Profiler()
        profiler.begin("outer")
        profiler.begin("inner")
        with pytest.raises(ConfigurationError, match="frame mismatch"):
            profiler.end("outer")

    def test_end_without_begin_raises(self):
        with pytest.raises(ConfigurationError):
            Profiler().end("never-opened")

    def test_maybe_profiler_guard_idiom(self):
        assert maybe_profiler(False) is None
        assert isinstance(maybe_profiler(True, "x"), Profiler)


class TestSpeedscope:
    def test_export_validates(self):
        profiler = Profiler("run")
        with profiler.frame("sweep"):
            with profiler.frame("point"):
                pass
        doc = profiler.to_speedscope()
        validate_speedscope(doc)
        assert doc["name"] == "run"
        assert {f["name"] for f in doc["shared"]["frames"]} == {"sweep", "point"}
        (profile,) = doc["profiles"]
        assert profile["unit"] == "nanoseconds"
        assert len(profile["events"]) == 4

    def test_still_open_frames_are_closed_in_export(self):
        profiler = Profiler()
        profiler.begin("outer")
        profiler.begin("inner")
        validate_speedscope(profiler.to_speedscope())

    def test_write_speedscope_round_trips(self, tmp_path):
        profiler = Profiler()
        with profiler.frame("work"):
            pass
        path = profiler.write_speedscope(tmp_path / "out" / "profile.json")
        validate_speedscope(json.loads(path.read_text()))

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("shared"),
            lambda d: d.pop("profiles"),
            lambda d: d["profiles"][0].__setitem__("type", "sampled"),
            lambda d: d["profiles"][0]["events"][0].__setitem__("frame", 99),
            lambda d: d["profiles"][0]["events"].reverse(),
            lambda d: d["profiles"][0]["events"].pop(),
        ],
    )
    def test_validator_rejects_malformed_documents(self, mutate):
        profiler = Profiler()
        with profiler.frame("a"):
            with profiler.frame("b"):
                pass
        doc = profiler.to_speedscope()
        mutate(doc)
        with pytest.raises(ConfigurationError):
            validate_speedscope(doc)


class TestCProfileWrapper:
    def test_returns_result_and_stats_text(self):
        result, text = profile_to_text(lambda: sum(range(100)), limit=5)
        assert result == 4950
        assert "function calls" in text
