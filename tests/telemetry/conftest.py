"""Telemetry tests run with a clean env and per-process state."""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _telemetry_hermetic(monkeypatch):
    """No inherited telemetry env; cached state dropped before and after."""
    for env in (
        telemetry.TELEMETRY_ENV,
        telemetry.TRACE_ENV,
        telemetry.INTERVAL_ENV,
        telemetry.SAMPLE_ENV,
    ):
        monkeypatch.delenv(env, raising=False)
    telemetry.shutdown()
    yield
    telemetry.shutdown()
