"""Trace layer: JSONL round-trip, spans, sampling, strict parsing."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.tracing import (
    SampledEmitter,
    TraceError,
    TraceWriter,
    iter_spans,
    read_trace,
)


class TestRoundTrip:
    def test_emit_and_read_back(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as writer:
            writer.emit("sweep.point.queued", point="p0")
            writer.emit("fault.memory", kind="bit_flip", addr=64)
        records = read_trace(path)
        assert [r["ev"] for r in records] == ["sweep.point.queued", "fault.memory"]
        for record in records:
            assert isinstance(record["t"], int)
            assert isinstance(record["pid"], int)
        assert records[0]["point"] == "p0"
        assert records[1]["addr"] == 64

    def test_span_records_duration(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as writer:
            with writer.span("sweep.point", point="p0"):
                pass
        (record,) = read_trace(path)
        assert record["ev"] == "span"
        assert record["name"] == "sweep.point"
        assert record["point"] == "p0"
        assert record["dur_ns"] >= 0

    def test_span_marks_exceptions(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path)
        with pytest.raises(ValueError):
            with writer.span("sweep.point"):
                raise ValueError("boom")
        writer.close()
        (record,) = read_trace(path)
        assert record["error"] == "ValueError"

    def test_append_only_across_writers(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as first:
            first.emit("a")
        with TraceWriter(path) as second:
            second.emit("b")
        assert [r["ev"] for r in read_trace(path)] == ["a", "b"]

    def test_unwritable_path_degrades_with_warning(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")
        with pytest.warns(RuntimeWarning, match="tracing disabled"):
            writer = TraceWriter(target / "trace.jsonl")
        assert not writer.active
        writer.emit("dropped")  # must be a silent no-op
        writer.close()


class TestSampling:
    def test_rate_one_records_everything(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as writer:
            emitter = SampledEmitter(writer, "lva.decision", rate=1)
            for pc in range(5):
                emitter.emit(pc=pc)
        assert len(read_trace(path)) == 5

    def test_rate_n_records_every_nth_with_drop_count(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as writer:
            emitter = SampledEmitter(writer, "lva.decision", rate=4)
            for pc in range(12):
                emitter.emit(pc=pc)
        records = read_trace(path)
        assert len(records) == 3
        assert [r["pc"] for r in records] == [3, 7, 11]
        assert all(r["sampled"] == 4 and r["dropped"] == 3 for r in records)

    def test_rejects_zero_rate(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.jsonl")
        with pytest.raises(ValueError):
            SampledEmitter(writer, "x", rate=0)
        writer.close()


class TestStrictParsing:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            read_trace(tmp_path / "absent.jsonl")

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ev":"a","t":1,"pid":2}\n{broken\n')
        with pytest.raises(TraceError, match="invalid JSON"):
            read_trace(path)

    def test_missing_required_keys(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"ev": "a", "t": 1}) + "\n")
        with pytest.raises(TraceError, match="missing keys"):
            read_trace(path)

    def test_non_object_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(TraceError, match="not an object"):
            read_trace(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('\n{"ev":"a","t":1,"pid":2}\n\n')
        assert len(read_trace(path)) == 1


class TestIterSpans:
    def test_filters_by_name(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as writer:
            with writer.span("sweep.point"):
                pass
            with writer.span("experiment"):
                pass
            writer.emit("not.a.span")
        records = read_trace(path)
        assert len(list(iter_spans(records))) == 2
        (only,) = iter_spans(records, name="experiment")
        assert only["name"] == "experiment"
