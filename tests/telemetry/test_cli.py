"""``lva-trace`` CLI: summaries, wall check, speedscope check."""

from __future__ import annotations

import json

from repro.telemetry.cli import check_wall, main, summarize
from repro.telemetry.profiling import Profiler
from repro.telemetry.tracing import TraceWriter, read_trace


def _write_trace(path, spans_s=(0.5, 0.5), wall_s=1.0, pids=1):
    """Hand-build a trace with known span durations and engine wall."""
    with TraceWriter(path) as writer:
        writer.emit("sweep.point.queued", point="p0")
        writer.emit("sweep.point.running", point="p0")
        for dur in spans_s:
            writer.emit(
                "span", name="sweep.point", dur_ns=int(dur * 1e9), point="p0"
            )
        writer.emit("sweep.point.done", point="p0", wall_s=spans_s[0])
        writer.emit("fault.memory", kind="bit_flip", addr=64)
        writer.emit("sweep.summary", elapsed_s=wall_s, failed=0)
    if pids > 1:
        records = read_trace(path)
        record = dict(records[0])
        record["pid"] = record["pid"] + 1
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
    return path


class TestSummarize:
    def test_aggregates_spans_lifecycle_and_faults(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl")
        summary = summarize(read_trace(path))
        assert summary["records"] == 7
        assert summary["processes"] == 1
        assert summary["engine_wall_s"] == 1.0
        assert summary["point_lifecycle"] == {"queued": 1, "running": 1, "done": 1}
        assert summary["faults"] == {"fault.memory:bit_flip": 1}
        span = summary["spans"]["sweep.point"]
        assert span["count"] == 2
        assert abs(span["total_s"] - 1.0) < 1e-9
        assert abs(span["max_s"] - 0.5) < 1e-9
        assert summary["trace_window_s"] >= 0


class TestCheckWall:
    def test_spans_matching_wall_pass(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl", spans_s=(0.5, 0.48), wall_s=1.0)
        assert check_wall(summarize(read_trace(path)), tolerance_pct=5) is None

    def test_shortfall_fails(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl", spans_s=(0.2,), wall_s=1.0)
        error = check_wall(summarize(read_trace(path)), tolerance_pct=5)
        assert error is not None and "sum to" in error

    def test_serial_overshoot_fails(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl", spans_s=(0.8, 0.8), wall_s=1.0)
        error = check_wall(summarize(read_trace(path)), tolerance_pct=5)
        assert error is not None and "exceeding" in error

    def test_parallel_overshoot_is_legitimate(self, tmp_path):
        path = _write_trace(
            tmp_path / "t.jsonl", spans_s=(0.8, 0.8), wall_s=1.0, pids=2
        )
        assert check_wall(summarize(read_trace(path)), tolerance_pct=5) is None

    def test_missing_spans_fail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as writer:
            writer.emit("sweep.summary", elapsed_s=1.0)
        error = check_wall(summarize(read_trace(path)), tolerance_pct=5)
        assert error is not None and "no sweep.point spans" in error


class TestMain:
    def test_human_summary_exits_zero(self, tmp_path, capsys):
        path = _write_trace(tmp_path / "t.jsonl")
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "sweep.point" in out
        assert "engine" in out

    def test_json_output_parses(self, tmp_path, capsys):
        path = _write_trace(tmp_path / "t.jsonl")
        assert main([str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["records"] == 7

    def test_check_wall_flag(self, tmp_path, capsys):
        good = _write_trace(tmp_path / "good.jsonl")
        assert main([str(good), "--check-wall", "5"]) == 0
        bad = _write_trace(tmp_path / "bad.jsonl", spans_s=(0.1,), wall_s=1.0)
        assert main([str(bad), "--check-wall", "5"]) == 1

    def test_check_speedscope_flag(self, tmp_path, capsys):
        trace = _write_trace(tmp_path / "t.jsonl")
        profiler = Profiler()
        with profiler.frame("sweep"):
            pass
        profile = profiler.write_speedscope(tmp_path / "profile.json")
        assert main([str(trace), "--check-speedscope", str(profile)]) == 0
        (tmp_path / "broken.json").write_text('{"shared": {}}')
        assert (
            main([str(trace), "--check-speedscope", str(tmp_path / "broken.json")])
            == 1
        )

    def test_unparseable_trace_exits_one(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text("{nope\n")
        assert main([str(path)]) == 1
        assert "lva-trace" in capsys.readouterr().err
