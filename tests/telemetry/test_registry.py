"""Metrics registry semantics: types, names, intervals, publishing."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.registry import (
    MetricsRegistry,
    publish_stats,
    safe_ratio,
)


class TestSafeRatio:
    def test_plain_ratio(self):
        assert safe_ratio(3, 4) == 0.75

    def test_scale(self):
        assert safe_ratio(5, 1000, scale=1000.0) == 5.0

    def test_zero_denominator_returns_default(self):
        assert safe_ratio(3, 0) == 0.0
        assert safe_ratio(3, 0, default=1.0) == 1.0

    def test_nan_propagates_over_default(self):
        assert math.isnan(safe_ratio(float("nan"), 5))
        assert math.isnan(safe_ratio(5, float("nan"), default=1.0))


class TestCounters:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("sim.loads") is registry.counter("sim.loads")

    def test_add_accumulates(self):
        counter = MetricsRegistry().counter("sim.loads")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_counters_cannot_decrease(self):
        counter = MetricsRegistry().counter("sim.loads")
        with pytest.raises(ConfigurationError):
            counter.add(-1)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("sim.loads")
        with pytest.raises(ConfigurationError):
            registry.gauge("sim.loads")

    def test_invalid_name_raises(self):
        registry = MetricsRegistry()
        for bad in ("Sim.Loads", "sim..loads", "", "sim/loads", ".sim"):
            with pytest.raises(ConfigurationError):
                registry.counter(bad)


class TestGaugesAndHistograms:
    def test_gauge_last_value_wins(self):
        gauge = MetricsRegistry().gauge("sim.mpki")
        gauge.set(3.5)
        gauge.set(1.25)
        assert gauge.value == 1.25

    def test_histogram_summary(self):
        hist = MetricsRegistry().histogram("sweep.point.wall_s")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0
        assert hist.mean == 2.0

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("x").mean == 0.0

    def test_snapshot_expands_histograms(self):
        registry = MetricsRegistry()
        registry.counter("sim.loads").add(7)
        registry.gauge("sim.mpki").set(2.5)
        registry.histogram("wall").observe(4.0)
        snap = registry.snapshot()
        assert snap["sim.loads"] == 7.0
        assert snap["sim.mpki"] == 2.5
        assert snap["wall.count"] == 1.0
        assert snap["wall.total"] == 4.0
        assert snap["wall.mean"] == 4.0
        assert snap["wall.min"] == 4.0
        assert snap["wall.max"] == 4.0


class TestIntervals:
    def test_deltas_sum_to_counter_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim.l1.miss")
        for chunk in (3, 0, 5, 2):
            counter.add(chunk)
            registry.mark_interval()
        assert sum(s["sim.l1.miss"] for s in registry.intervals) == counter.value

    def test_mark_records_label_and_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("sim.window.mpki").set(1.5)
        snap = registry.mark_interval(label="window0")
        assert snap["label"] == "window0"
        assert snap["sim.window.mpki"] == 1.5
        assert registry.intervals == [snap]

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("sim.loads").add(2)
        registry.mark_interval()
        registry.reset()
        assert registry.names() == []
        assert registry.intervals == []
        assert registry.counter("sim.loads").value == 0


class TestPublishStats:
    def test_numeric_bool_and_set_fields(self):
        @dataclass
        class FakeStats:
            instructions: int = 42
            mpki: float = 1.5
            warmed: bool = True
            pcs: set = field(default_factory=lambda: {1, 2, 3})
            note: str = "skipped"

        registry = MetricsRegistry()
        written = publish_stats(registry, FakeStats(), "sim.total")
        snap = registry.snapshot()
        assert snap["sim.total.instructions"] == 42.0
        assert snap["sim.total.mpki"] == 1.5
        assert snap["sim.total.warmed"] == 1.0
        assert snap["sim.total.pcs"] == 3.0
        assert "sim.total.note" not in snap
        assert set(written) == {
            "sim.total.instructions",
            "sim.total.mpki",
            "sim.total.warmed",
            "sim.total.pcs",
        }

    def test_rejects_non_dataclass(self):
        with pytest.raises(ConfigurationError):
            publish_stats(MetricsRegistry(), {"x": 1}, "sim")
