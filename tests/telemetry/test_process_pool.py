"""Multi-process telemetry: env inheritance and atomic trace merging."""

from __future__ import annotations

import json
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro import telemetry
from repro.telemetry.tracing import read_trace


def _emit_from_worker(index: int) -> int:
    """Pool worker: resolve the tracer from the inherited env and emit."""
    writer = telemetry.tracer()
    assert writer is not None and writer.active
    for i in range(50):
        writer.emit("worker.tick", worker=index, i=i)
    # Deliberately no close(): the writer is cached per process and a
    # reused pool worker must get the same still-active instance back.
    import os

    return os.getpid()


class TestPoolWorkers:
    def test_workers_inherit_env_and_interleave_whole_lines(self, tmp_path):
        trace = tmp_path / "pool.jsonl"
        telemetry.configure(on=True, trace=trace)
        with ProcessPoolExecutor(max_workers=2) as pool:
            pids = set(pool.map(_emit_from_worker, range(4)))
        telemetry.shutdown()
        records = read_trace(trace)  # strict parse: corruption would raise
        assert len(records) == 200
        assert {r["pid"] for r in records} <= pids
        per_worker = {}
        for record in records:
            per_worker.setdefault(record["worker"], []).append(record["i"])
        # Each worker's own records stay in program order (O_APPEND).
        for indices in per_worker.values():
            assert indices == sorted(indices)


@pytest.mark.slow
class TestSweepEndToEnd:
    def test_traced_sweep_spans_cover_engine_wall(self, tmp_path):
        """The acceptance property: point spans sum to ~the engine wall."""
        trace = tmp_path / "trace.jsonl"
        profile = tmp_path / "profile.json"
        repo = Path(__file__).resolve().parent.parent.parent
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "fig13",
                "--small",
                "--no-cache",
                "--jobs",
                "1",
                "--retries",  # opts into the sweep engine at jobs=1
                "1",
                "--trace",
                str(trace),
                "--profile-out",
                str(profile),
            ],
            capture_output=True,
            text=True,
            timeout=600,
            cwd=repo,
        )
        assert result.returncode == 0, result.stderr

        from repro.telemetry.cli import check_wall, main, summarize
        from repro.telemetry.profiling import validate_speedscope

        records = read_trace(trace)
        summary = summarize(records)
        lifecycle = summary["point_lifecycle"]
        assert lifecycle["queued"] == lifecycle["done"] > 0
        assert summary["engine_wall_s"] > 0
        assert check_wall(summary, tolerance_pct=5) is None
        validate_speedscope(json.loads(profile.read_text()))
        assert main([str(trace), "--check-wall", "5"]) == 0
