"""Engine-fault injection and the sweep engine's supervision machinery."""

from __future__ import annotations

import math

import pytest

from repro import faults
from repro.errors import FaultInjectionError, WorkerCrashError
from repro.experiments import fig13
from repro.experiments.sweep import SweepEngine

#: Selects exactly one of the five fig13 points (drop-11).
CRASH_ONE = "crash:mantissa_drop_bits=11"


def _fig13_table(small=True):
    return fig13.run(small=small)


class TestSerialSupervision:
    def test_injected_raise_becomes_failed_cell(self, fresh_memory_caches):
        faults.activate("raise:mantissa_drop_bits=11")
        report = SweepEngine(jobs=1).execute(fig13.points(small=True))

        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.error_type == "FaultInjectionError"
        assert failure.point.config.mantissa_drop_bits == 11

        table = _fig13_table()
        assert math.isnan(table.series["normalized_mpki"]["drop-11"])
        assert not math.isnan(table.series["normalized_mpki"]["drop-0"])
        assert "FAILED" in table.format_table()

    def test_crash_in_parent_is_caught_not_fatal(self, fresh_memory_caches):
        """A crash clause must not take down the parent process: in the
        serial engine it degrades to WorkerCrashError."""
        faults.activate(CRASH_ONE)
        report = SweepEngine(jobs=1).execute(fig13.points(small=True))
        assert [f.error_type for f in report.failures] == ["WorkerCrashError"]
        assert report.unique_points - len(report.failures) == 4

    def test_retries_exhausted_counts_attempts(self, fresh_memory_caches):
        faults.activate("raise:mantissa_drop_bits=11")
        engine = SweepEngine(jobs=1, retries=2, backoff_base=0.01)
        report = engine.execute(fig13.points(small=True))
        assert report.retried_attempts == 2
        assert report.failures[0].attempts == 3

    def test_flaky_point_recovers_with_retries(self, fresh_memory_caches):
        faults.activate("flaky:mantissa_drop_bits=11,fails=1")
        engine = SweepEngine(jobs=1, retries=1, backoff_base=0.01)
        report = engine.execute(fig13.points(small=True))
        assert not report.failures
        assert report.retried_attempts == 1
        table = _fig13_table()
        assert not any(math.isnan(v) for v in table.series["normalized_mpki"].values())

    def test_flaky_without_retries_fails(self, fresh_memory_caches):
        faults.activate("flaky:mantissa_drop_bits=11,fails=1")
        report = SweepEngine(jobs=1, retries=0).execute(fig13.points(small=True))
        assert len(report.failures) == 1


class TestParallelSupervision:
    def test_worker_crash_spares_every_other_point(self, fresh_memory_caches):
        """The acceptance scenario: an injected worker crash at one point
        leaves all other points intact; the crasher ends as a FAILED cell
        after the engine degrades to serial execution."""
        faults.activate(CRASH_ONE)
        report = SweepEngine(jobs=2).execute(fig13.points(small=True))

        assert len(report.failures) == 1
        assert report.failures[0].point.config.mantissa_drop_bits == 11
        assert report.pool_rebuilds >= 1

        table = _fig13_table()
        mpki = table.series["normalized_mpki"]
        assert math.isnan(mpki["drop-11"])
        for label in ("drop-0", "drop-5", "drop-17", "drop-23"):
            assert not math.isnan(mpki[label]), label

    def test_hang_reaped_by_point_timeout(self, fresh_memory_caches):
        faults.activate("hang:mantissa_drop_bits=11,seconds=60")
        engine = SweepEngine(jobs=2, point_timeout=1.5)
        report = engine.execute(fig13.points(small=True))

        assert report.timeouts >= 1
        assert any(f.error_type == "PointTimeoutError" for f in report.failures)
        table = _fig13_table()
        assert math.isnan(table.series["normalized_mpki"]["drop-11"])
        assert not math.isnan(table.series["normalized_mpki"]["drop-0"])

    def test_failed_baseline_prefails_dependent_points(self, fresh_memory_caches):
        faults.activate("raise:kind=precise,workload=fluidanimate")
        report = SweepEngine(jobs=1).execute(fig13.points(small=True))

        # 1 baseline failure + 5 dependent technique points.
        kinds = sorted(f.kind for f in report.failures)
        assert kinds == ["precise"] + ["technique"] * 5
        assert {f.error_type for f in report.failures} == {
            "FaultInjectionError",
            "BaselineFailed",
        }
        table = _fig13_table()
        assert all(math.isnan(v) for v in table.series["normalized_mpki"].values())


class TestInjectorPrimitives:
    def test_before_point_raise(self):
        faults.activate("raise:workload=canneal")
        with pytest.raises(FaultInjectionError):
            faults.before_point("technique", "canneal", "lva", 0, True)
        # Non-matching points sail through.
        faults.before_point("technique", "ferret", "lva", 0, True)

    def test_flaky_respects_attempt_number(self):
        faults.activate("flaky:workload=canneal,fails=2")
        for attempt in (0, 1):
            with pytest.raises(WorkerCrashError):
                faults.before_point(
                    "technique", "canneal", "lva", 0, True, attempt=attempt
                )
        faults.before_point("technique", "canneal", "lva", 0, True, attempt=2)

    def test_inactive_spec_is_silent(self):
        faults.deactivate()
        faults.before_point("technique", "canneal", "lva", 0, True)
