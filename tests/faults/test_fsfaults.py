"""The filesystem fault injector (repro.faults.fsfaults)."""

from __future__ import annotations

import errno

import pytest

from repro import faults
from repro.experiments.common import technique_disk_key
from repro.faults import fsfaults
from repro.faults.memory import INJECT_ENV, active_memory_spec
from repro.faults.spec import STORAGE_KINDS, parse_spec, storage_clauses
from repro.sim.tracesim import Mode


@pytest.fixture(autouse=True)
def _fresh_counters():
    fsfaults.reset_counters()
    yield
    fsfaults.reset_counters()


def _activate(monkeypatch, spec: str) -> None:
    monkeypatch.setenv(INJECT_ENV, spec)
    fsfaults.reset_counters()


class TestSpecGrammar:
    def test_every_storage_kind_parses(self):
        spec = ";".join(sorted(STORAGE_KINDS))
        clauses = parse_spec(spec)
        assert {c.kind for c in clauses} == STORAGE_KINDS
        assert all(c.is_storage for c in clauses)

    def test_storage_clauses_filter(self):
        clauses = parse_spec("flip:prob=0.1;torn:target=cache;crash")
        storage = storage_clauses(clauses)
        assert [c.kind for c in storage] == ["torn"]

    def test_unknown_kind_still_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            parse_spec("shred:target=cache")

    def test_mixed_families_coexist(self):
        clauses = parse_spec("torn;flip:prob=0.5;flaky:fails=1")
        assert len(clauses) == 3
        assert len(storage_clauses(clauses)) == 1


class TestFoldIntoNothing:
    """Storage clauses must never reach any result-cache key."""

    def test_memory_spec_ignores_storage_clauses(self, monkeypatch):
        _activate(monkeypatch, "torn:target=cache;eio:target=trace;kill:site=journal")
        assert active_memory_spec() == ""

    def test_memory_spec_keeps_memory_clauses_only(self, monkeypatch):
        _activate(monkeypatch, "torn:target=cache;flip:prob=0.001,seed=7")
        assert active_memory_spec() == "flip:prob=0.001,seed=7"

    def test_technique_disk_key_unchanged_by_storage_faults(self, monkeypatch):
        def key():
            return technique_disk_key(
                "fluidanimate", Mode.LVA, None, 0, 0, True, (),
                fault_spec=active_memory_spec(),
            )

        monkeypatch.delenv(INJECT_ENV, raising=False)
        clean = key()
        _activate(monkeypatch, "torn;enospc;rename;corrupt;trunc;fsync;eio;kill")
        assert key() == clean
        assert fsfaults.storage_spec_is_foldable([clean])


class TestSelectors:
    def test_target_selects_subsystem(self, monkeypatch):
        _activate(monkeypatch, "enospc:target=trace")
        # cache site untouched, trace site raises
        assert fsfaults.on_write("cache.entry.write", "x", b"abc") == b"abc"
        with pytest.raises(OSError) as excinfo:
            fsfaults.on_write("trace.column.write", "x", b"abc")
        assert excinfo.value.errno == errno.ENOSPC

    def test_site_substring_match(self, monkeypatch):
        _activate(monkeypatch, "eio:site=meta.read")
        fsfaults.on_read("trace.column.read", "x")  # no match
        with pytest.raises(OSError):
            fsfaults.on_read("trace.meta.read", "x")

    def test_path_substring_match(self, monkeypatch):
        _activate(monkeypatch, "torn:path=addr.npy")
        assert fsfaults.on_write("trace.column.write", "/t/value.npy", b"abcd") == b"abcd"
        assert fsfaults.on_write("trace.column.write", "/t/addr.npy", b"abcd") == b"ab"

    def test_at_count_window_is_deterministic(self, monkeypatch):
        _activate(monkeypatch, "eio:at=2,count=1")
        fsfaults.on_read("cache.entry.read", "p")  # occurrence 1: no fire
        with pytest.raises(OSError):
            fsfaults.on_read("cache.entry.read", "p")  # occurrence 2: fires
        fsfaults.on_read("cache.entry.read", "p")  # occurrence 3: window over
        # identical schedule after a counter reset
        fsfaults.reset_counters()
        fsfaults.on_read("cache.entry.read", "p")
        with pytest.raises(OSError):
            fsfaults.on_read("cache.entry.read", "p")


class TestWriteMangling:
    def test_torn_keeps_prefix(self, monkeypatch):
        _activate(monkeypatch, "torn:frac=0.25")
        assert fsfaults.on_write("cache.entry.write", "x", b"12345678") == b"12"

    def test_fsync_zeroes_tail_keeping_length(self, monkeypatch):
        _activate(monkeypatch, "fsync:frac=0.5")
        out = fsfaults.on_write("cache.entry.write", "x", b"12345678")
        assert out == b"1234\x00\x00\x00\x00"

    def test_corrupt_flips_exactly_one_byte(self, monkeypatch):
        _activate(monkeypatch, "corrupt:offset=3,xor=1")
        out = fsfaults.on_write("cache.entry.write", "x", b"\x00" * 8)
        assert out.count(b"\x01") == 1 and out[3] == 1

    def test_rename_hook_raises(self, monkeypatch):
        _activate(monkeypatch, "rename:target=cache")
        with pytest.raises(OSError):
            fsfaults.on_rename("cache.entry.rename", "x")
        fsfaults.on_rename("trace.entry.rename", "x")  # other subsystem clean

    def test_no_spec_is_identity(self, monkeypatch):
        monkeypatch.delenv(INJECT_ENV, raising=False)
        data = b"payload"
        assert fsfaults.on_write("cache.entry.write", "x", data) is data
        fsfaults.on_read("cache.entry.read", "x")
        fsfaults.on_rename("cache.entry.rename", "x")
        fsfaults.crash_point("cache.publish.pre_rename")


class TestDamagePublished:
    def test_trunc_shortens_published_file(self, monkeypatch, tmp_path):
        target = tmp_path / "entry.pkl"
        target.write_bytes(b"A" * 100)
        _activate(monkeypatch, "trunc:frac=0.3")
        fsfaults.damage_published("cache.entry.published", target)
        assert target.read_bytes() == b"A" * 30

    def test_corrupt_hits_selected_file_in_directory(self, monkeypatch, tmp_path):
        entry = tmp_path / "entry"
        entry.mkdir()
        (entry / "addr.npy").write_bytes(b"B" * 10)
        (entry / "value.npy").write_bytes(b"B" * 10)
        _activate(monkeypatch, "corrupt:site=published,path=addr.npy")
        fsfaults.damage_published("trace.entry.published", entry)
        assert (entry / "addr.npy").read_bytes() != b"B" * 10
        assert (entry / "value.npy").read_bytes() == b"B" * 10


class TestCrashPoint:
    def test_kill_fires_at_matching_site_only(self, monkeypatch):
        exits = []
        monkeypatch.setattr(fsfaults.os, "_exit", lambda status: exits.append(status))
        _activate(monkeypatch, "kill:site=cache.publish.pre_rename")
        fsfaults.crash_point("cache.publish.pre_write")
        fsfaults.crash_point("trace.publish.pre_rename")
        assert exits == []
        fsfaults.crash_point("cache.publish.pre_rename")
        assert exits == [fsfaults.KILL_EXIT_STATUS]

    def test_exit_statuses_are_distinct(self):
        assert fsfaults.KILL_EXIT_STATUS != faults.CRASH_EXIT_STATUS

    def test_all_crash_points_reachable_by_site_selector(self):
        for site in fsfaults.CRASH_POINTS:
            clauses = parse_spec(f"kill:site={site}")
            assert storage_clauses(clauses)[0].get("site") == site
