"""Bit-equality pin: fault-injected replays across interpreter paths.

PR 6's contract is that the packed interpreter is bit-identical to the
object reference, and that the vector kernel downgrades (with a warning)
whenever control flow would diverge — which includes active memory
faults. This suite locks both halves of that contract *under* injected
``flip``/``drop`` faults: the deterministic fault stream must perturb
the object path and the packed path identically, and a vector request
must downgrade to the same bits, never silently diverge.
"""

from __future__ import annotations

import warnings

import pytest

from repro import Mode, TraceRecorder, TraceSimulator, get_workload
from repro.faults.memory import INJECT_ENV
from repro.sim import kernels

WORKLOADS = ["fluidanimate", "swaptions"]
FAULT_SPECS = [
    "flip:prob=0.05,seed=7",
    "drop:prob=0.1,seed=3",
    "flip:prob=0.02,seed=1;drop:prob=0.05,seed=2",
]
MODES = [Mode.LVA, Mode.LVP, Mode.PRECISE]


@pytest.fixture(autouse=True)
def _fresh_warn_state():
    kernels.reset_downgrade_warnings()
    yield
    kernels.reset_downgrade_warnings()


@pytest.fixture(scope="module")
def traces():
    """Clean captures (fault injection never applies to capture)."""
    captured = {}
    for name in WORKLOADS:
        recorder = TraceRecorder(record_stores=True)
        sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
        get_workload(name, small=True).execute(sim, 3)
        sim.finish()
        captured[name] = recorder.trace
    return captured


def _replay(trace, mode, kernel, monkeypatch):
    monkeypatch.setenv(kernels.ENV_KERNEL, kernel)
    sim = TraceSimulator(mode)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", kernels.ReplayDowngradeWarning)
        stats = sim.replay(trace.pack() if kernel != "object" else trace)
    monkeypatch.delenv(kernels.ENV_KERNEL)
    return stats, sim


def _assert_same_state(a_sim, b_sim):
    assert a_sim.l1.stats == b_sim.l1.stats
    assert a_sim.instructions == b_sim.instructions
    for attr in ("approximator", "predictor"):
        a_tech, b_tech = getattr(a_sim, attr), getattr(b_sim, attr)
        assert (a_tech is None) == (b_tech is None)
        if a_tech is not None:
            assert a_tech.stats == b_tech.stats


class TestFaultedPackedPin:
    """flip/drop replays: packed interpreter == object reference, bit for bit."""

    @pytest.mark.parametrize("spec", FAULT_SPECS)
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("mode", MODES)
    def test_packed_matches_object_under_faults(
        self, workload, mode, spec, traces, monkeypatch
    ):
        monkeypatch.setenv(INJECT_ENV, spec)
        trace = traces[workload]
        ref_stats, ref_sim = _replay(trace, mode, "object", monkeypatch)
        packed_stats, packed_sim = _replay(trace, mode, "packed", monkeypatch)
        assert packed_stats == ref_stats
        _assert_same_state(packed_sim, ref_sim)

    def test_faults_actually_perturb_the_replay(self, traces, monkeypatch):
        """Guard against vacuous pins: the spec must change the outcome."""
        trace = traces["fluidanimate"]
        clean_stats, _ = _replay(trace, Mode.LVA, "object", monkeypatch)
        monkeypatch.setenv(INJECT_ENV, "flip:prob=0.5,seed=7")
        faulted_stats, _ = _replay(trace, Mode.LVA, "object", monkeypatch)
        assert faulted_stats != clean_stats


class TestFaultedVectorDowngrade:
    """A vector request under faults downgrades loudly to identical bits."""

    @pytest.mark.parametrize("spec", FAULT_SPECS)
    def test_vector_warns_and_matches_reference(self, spec, traces, monkeypatch):
        trace = traces["fluidanimate"]
        monkeypatch.setenv(INJECT_ENV, spec)
        ref_stats, ref_sim = _replay(trace, Mode.LVA, "object", monkeypatch)

        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        sim = TraceSimulator(Mode.LVA)
        with pytest.warns(kernels.ReplayDowngradeWarning, match="fault injection"):
            vec_stats = sim.replay(trace.pack())
        monkeypatch.delenv(kernels.ENV_KERNEL)

        assert vec_stats == ref_stats
        _assert_same_state(sim, ref_sim)

    def test_storage_faults_do_not_downgrade_the_kernel(self, traces, monkeypatch):
        """Storage clauses fold into nothing for replay too: a pure
        storage spec must leave the vector kernel eligible and clean."""
        trace = traces["fluidanimate"]
        ref_stats, _ = _replay(trace, Mode.LVA, "object", monkeypatch)
        monkeypatch.setenv(INJECT_ENV, "torn:target=cache;kill:site=journal")
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        sim = TraceSimulator(Mode.LVA)
        with warnings.catch_warnings():
            warnings.simplefilter("error", kernels.ReplayDowngradeWarning)
            vec_stats = sim.replay(trace.pack())
        monkeypatch.delenv(kernels.ENV_KERNEL)
        assert vec_stats == ref_stats
