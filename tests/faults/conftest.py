"""Shared fixtures for the fault-injection tests."""

from __future__ import annotations

import pytest

from repro import faults
from repro.experiments import common, diskcache


@pytest.fixture(autouse=True)
def _no_stray_injection():
    """No spec leaks into or out of any test in this package."""
    faults.deactivate()
    yield
    faults.deactivate()


@pytest.fixture
def clean_caches(monkeypatch, tmp_path):
    """Disk cache in tmp_path, empty in-memory caches, fresh counters."""
    monkeypatch.delenv(diskcache.NO_CACHE_ENV, raising=False)
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.setattr(diskcache, "_DISABLED_OVERRIDE", False)
    monkeypatch.setattr(diskcache, "_ACTIVE", None)
    monkeypatch.setattr(diskcache, "_ACTIVE_DIR", None)
    monkeypatch.setattr(common, "COMPUTE_COUNTERS", common.ComputeCounters())
    saved_precise = dict(common._PRECISE_CACHE)
    saved_technique = dict(common._TECHNIQUE_CACHE)
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    yield
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    common._PRECISE_CACHE.update(saved_precise)
    common._TECHNIQUE_CACHE.update(saved_technique)


@pytest.fixture
def fresh_memory_caches():
    """Empty in-memory caches only (disk stays disabled by the root conftest)."""
    saved_precise = dict(common._PRECISE_CACHE)
    saved_technique = dict(common._TECHNIQUE_CACHE)
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    yield
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    common._PRECISE_CACHE.update(saved_precise)
    common._TECHNIQUE_CACHE.update(saved_technique)
