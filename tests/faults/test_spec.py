"""The fault-spec grammar (repro.faults.spec)."""

from __future__ import annotations

import pytest

from repro.core.config import ApproximatorConfig
from repro.errors import ConfigurationError
from repro.faults import (
    canonical_spec,
    engine_clauses,
    memory_clauses,
    parse_spec,
)


class TestParsing:
    def test_single_clause_with_typed_params(self):
        (clause,) = parse_spec("flip:prob=0.001,bits=2,region=exponent")
        assert clause.kind == "flip"
        assert clause.get("prob") == 0.001
        assert clause.get("bits") == 2
        assert clause.get("region") == "exponent"

    def test_bare_kind_and_multiple_clauses(self):
        clauses = parse_spec("crash; drop:prob=0.01")
        assert [c.kind for c in clauses] == ["crash", "drop"]
        assert clauses[0].params == ()

    def test_bool_values(self):
        (clause,) = parse_spec("crash:small=true")
        assert clause.get("small") is True

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            parse_spec("explode:prob=1")

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            parse_spec("crash:workload")

    def test_empty_spec_is_empty(self):
        assert parse_spec("") == ()
        assert parse_spec(" ; ") == ()


class TestCanonical:
    def test_param_order_is_irrelevant(self):
        a = canonical_spec(parse_spec("flip:seed=3,prob=0.05"))
        b = canonical_spec(parse_spec("flip:prob=0.05,seed=3"))
        assert a == b == "flip:prob=0.05,seed=3"

    def test_clause_order_is_irrelevant(self):
        a = canonical_spec(parse_spec("drop:prob=0.01;flip:prob=0.001"))
        b = canonical_spec(parse_spec("flip:prob=0.001;drop:prob=0.01"))
        assert a == b

    def test_family_split(self):
        clauses = parse_spec("crash:workload=canneal;flip:prob=0.001")
        assert [c.kind for c in engine_clauses(clauses)] == ["crash"]
        assert [c.kind for c in memory_clauses(clauses)] == ["flip"]


class TestMatching:
    def test_defaults_to_technique_points_only(self):
        (clause,) = parse_spec("crash")
        assert clause.matches("technique", "canneal", "lva", 0, True)
        assert not clause.matches("precise", "canneal", None, 0, True)

    def test_kind_any_matches_both(self):
        (clause,) = parse_spec("crash:kind=any")
        assert clause.matches("technique", "canneal", "lva", 0, True)
        assert clause.matches("precise", "canneal", None, 0, True)

    def test_workload_and_seed_selectors(self):
        (clause,) = parse_spec("crash:workload=canneal,seed=2")
        assert clause.matches("technique", "canneal", "lva", 2, False)
        assert not clause.matches("technique", "canneal", "lva", 0, False)
        assert not clause.matches("technique", "ferret", "lva", 2, False)

    def test_mode_selector_is_case_insensitive(self):
        (clause,) = parse_spec("crash:mode=LVA")
        assert clause.matches("technique", "canneal", "lva", 0, False)
        assert not clause.matches("technique", "canneal", "lvp", 0, False)

    def test_config_field_selector(self):
        (clause,) = parse_spec("crash:mantissa_drop_bits=11")
        hit = ApproximatorConfig(mantissa_drop_bits=11)
        miss = ApproximatorConfig(mantissa_drop_bits=5)
        assert clause.matches("technique", "fluidanimate", "lva", 0, True, hit)
        assert not clause.matches("technique", "fluidanimate", "lva", 0, True, miss)
        assert not clause.matches("technique", "fluidanimate", "lva", 0, True, None)

    def test_behavioural_params_do_not_select(self):
        """fails=/seconds= configure the fault, not which points it hits."""
        (clause,) = parse_spec("flaky:fails=2")
        assert clause.matches("technique", "canneal", "lva", 0, False)
