"""Memory-fault models and their wiring into the simulated hierarchy."""

from __future__ import annotations

import math

from repro import faults
from repro.experiments import common, fault_ablation
from repro.faults import MemoryFaultModel, parse_spec
from repro.faults.memory import build_memory_model
from repro.mem.hierarchy import TwoLevelHierarchy
from repro.mem.memory import MainMemory
from repro.sim.tracesim import Mode


class TestMemoryFaultModel:
    def test_same_seed_same_fault_pattern(self):
        a = MemoryFaultModel(flip_prob=0.3, seed=7)
        b = MemoryFaultModel(flip_prob=0.3, seed=7)
        outcomes_a = [a.corrupt_value(1.5, True) for _ in range(200)]
        outcomes_b = [b.corrupt_value(1.5, True) for _ in range(200)]
        assert outcomes_a == outcomes_b
        assert a.flips == b.flips > 0

    def test_different_seeds_differ(self):
        a = MemoryFaultModel(flip_prob=0.3, seed=7)
        b = MemoryFaultModel(flip_prob=0.3, seed=8)
        assert [a.corrupt_value(1.5, True)[1] for _ in range(200)] != [
            b.corrupt_value(1.5, True)[1] for _ in range(200)
        ]

    def test_mantissa_flips_keep_floats_finite(self):
        model = MemoryFaultModel(flip_prob=1.0, seed=1)
        for _ in range(100):
            value, flipped = model.corrupt_value(3.14159, True)
            assert flipped
            assert math.isfinite(value)
            assert value != 3.14159

    def test_int_flips_stay_within_width(self):
        model = MemoryFaultModel(flip_prob=1.0, width=8, seed=2)
        for _ in range(100):
            value, flipped = model.corrupt_value(0, False)
            assert flipped
            assert 0 <= value < 256

    def test_zero_probability_never_fires(self):
        model = MemoryFaultModel(flip_prob=0.0, drop_prob=0.0, seed=3)
        assert model.corrupt_value(42, False) == (42, False)
        assert not model.drop_fetch()
        assert model.flips == model.drops == 0

    def test_drop_fetch_probability_one(self):
        model = MemoryFaultModel(drop_prob=1.0, seed=4)
        assert all(model.drop_fetch() for _ in range(20))
        assert model.drops == 20

    def test_from_clauses_reads_parameters(self):
        model = MemoryFaultModel.from_clauses(
            parse_spec("flip:prob=0.25,bits=2,region=exponent;drop:prob=0.5")
        )
        assert model.flip_prob == 0.25
        assert model.bits == 2
        assert model.region == "exponent"
        assert model.drop_prob == 0.5

    def test_engine_only_spec_builds_no_model(self):
        assert MemoryFaultModel.from_clauses(parse_spec("crash:workload=x")) is None


class TestHierarchyWiring:
    def test_main_memory_dropped_fetch_pays_latency(self):
        memory = MainMemory(fault_model=MemoryFaultModel(drop_prob=1.0, seed=0))
        latency, delivered = memory.fetch_block(0x1000)
        assert latency == memory.latency
        assert not delivered
        assert memory.stats.dropped_reads == 1
        assert memory.stats.reads == 0

    def test_hierarchy_dropped_fetch_fills_nothing(self):
        hierarchy = TwoLevelHierarchy(
            memory=MainMemory(fault_model=MemoryFaultModel(drop_prob=1.0, seed=0))
        )
        first = hierarchy.load(0x2000)
        assert first.served_by == "dropped"
        assert not first.l1_filled
        # The block never arrived, so the next access misses again.
        second = hierarchy.load(0x2000)
        assert second.served_by == "dropped"

    def test_clean_hierarchy_unchanged(self):
        hierarchy = TwoLevelHierarchy()
        assert hierarchy.load(0x3000).served_by == "memory"
        assert hierarchy.load(0x3000).served_by == "l1"


class TestActivationContext:
    def test_context_spec_canonicalised(self):
        with faults.memory_faults("flip:seed=3,prob=0.05"):
            assert faults.active_memory_spec() == "flip:prob=0.05,seed=3"
        assert faults.active_memory_spec() == ""

    def test_engine_clauses_do_not_leak_into_memory_spec(self):
        with faults.memory_faults("crash:workload=x;flip:prob=0.5"):
            assert faults.active_memory_spec() == "flip:prob=0.5"

    def test_suppression_wins(self):
        with faults.memory_faults("flip:prob=0.5"):
            with faults.no_memory_faults():
                assert faults.active_memory_spec() == ""
                assert build_memory_model() is None
            assert faults.active_memory_spec() == "flip:prob=0.5"

    def test_environment_spec_applies(self, monkeypatch):
        monkeypatch.setenv(faults.INJECT_ENV, "drop:prob=0.125")
        assert faults.active_memory_spec() == "drop:prob=0.125"

    def test_context_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(faults.INJECT_ENV, "drop:prob=0.125")
        with faults.memory_faults("flip:prob=0.5"):
            assert faults.active_memory_spec() == "flip:prob=0.5"


class TestResultIsolation:
    def test_faulty_and_clean_results_get_distinct_keys(self, fresh_memory_caches):
        clean = common.run_technique("blackscholes", Mode.LVA, small=True)
        with faults.memory_faults("flip:prob=0.2"):
            faulty = common.run_technique("blackscholes", Mode.LVA, small=True)
        assert len(common._TECHNIQUE_CACHE) == 2
        assert faulty.raw["value_bit_flips"] > 0
        assert clean.raw["value_bit_flips"] == 0
        # Flipped memory values must actually change the measurement.
        assert faulty.output_error != clean.output_error or (
            faulty.normalized_mpki != clean.normalized_mpki
        )

    def test_disk_key_embeds_fault_spec(self):
        clean_key = common.technique_disk_key(
            "blackscholes", Mode.LVA, None, 4, 0, True, (), ""
        )
        faulty_key = common.technique_disk_key(
            "blackscholes", Mode.LVA, None, 4, 0, True, (), "flip:prob=0.2"
        )
        assert clean_key != faulty_key

    def test_precise_reference_is_immune(self, fresh_memory_caches):
        clean = common.run_precise_reference("blackscholes", small=True)
        common._PRECISE_CACHE.clear()
        with faults.memory_faults("flip:prob=1.0;drop:prob=0.5"):
            under_faults = common.run_precise_reference("blackscholes", small=True)
        assert clean.output == under_faults.output
        assert clean.mpki == under_faults.mpki


class TestFaultAblationDriver:
    def test_points_cover_every_level_and_workload(self):
        pts = fault_ablation.points(small=True)
        assert len(pts) == len(fault_ablation.WORKLOADS) * len(
            fault_ablation.FAULT_LEVELS
        )
        specs = {p.faults for p in pts}
        assert "" in specs and len(specs) == len(fault_ablation.FAULT_LEVELS)

    def test_run_reports_error_and_coverage_per_level(self, fresh_memory_caches):
        result = fault_ablation.run(small=True)
        for tag, _ in fault_ablation.FAULT_LEVELS:
            assert f"error@{tag}" in result.series
            assert f"coverage@{tag}" in result.series
        # The injected dose must be visible in the fault counters, and
        # the clean column must really be clean. (The error metrics are
        # threshold-counting, so on the small inputs a handful of flips
        # may legitimately not move them — the counters always do.)
        for workload in fault_ablation.WORKLOADS:
            assert result.series["bitflips@clean"][workload] == 0
            assert result.series["drops@clean"][workload] == 0
            assert result.series["bitflips@flip-1e-1"][workload] > 0
            assert result.series["drops@drop-1e-2"][workload] > 0
        # Dropped fetches starve training, so coverage must respond.
        clean_cov = result.series["coverage@clean"]
        dropped_cov = result.series["coverage@drop-1e-2"]
        assert any(dropped_cov[w] != clean_cov[w] for w in fault_ablation.WORKLOADS)
