"""Tests for the next-line and GHB prefetcher baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.prefetch.ghb import GHBPrefetcher
from repro.prefetch.nextline import NextLinePrefetcher


class TestNextLine:
    def test_prefetches_sequential_blocks(self):
        prefetcher = NextLinePrefetcher(degree=3)
        assert prefetcher.on_miss(0x400, 0x1000) == [0x1040, 0x1080, 0x10C0]

    def test_block_aligns_address(self):
        prefetcher = NextLinePrefetcher(degree=1)
        assert prefetcher.on_miss(0x400, 0x1239) == [0x1240]

    def test_degree_zero_issues_nothing(self):
        prefetcher = NextLinePrefetcher(degree=0)
        assert prefetcher.on_miss(0x400, 0x1000) == []

    def test_stats(self):
        prefetcher = NextLinePrefetcher(degree=2)
        prefetcher.on_miss(0x400, 0x0)
        prefetcher.on_miss(0x400, 0x40)
        assert prefetcher.stats.triggers == 2
        assert prefetcher.stats.issued == 4


class TestGHBStride:
    def test_constant_stride_detected(self):
        prefetcher = GHBPrefetcher(degree=2)
        pc = 0x400
        for addr in (0x0, 0x100, 0x200):
            last = prefetcher.on_miss(pc, addr)
        # After three misses with stride 0x100, predict 0x300 and 0x400.
        assert last == [0x300, 0x400]

    def test_different_pcs_do_not_interfere(self):
        prefetcher = GHBPrefetcher(degree=1)
        prefetcher.on_miss(0x400, 0x0)
        prefetcher.on_miss(0x500, 0x5000)
        prefetcher.on_miss(0x400, 0x100)
        candidates = prefetcher.on_miss(0x400, 0x200)
        assert candidates == [0x300]

    def test_irregular_stream_falls_back_to_next_line(self):
        prefetcher = GHBPrefetcher(degree=2)
        prefetcher.on_miss(0x400, 0x0)
        prefetcher.on_miss(0x400, 0x1000)
        candidates = prefetcher.on_miss(0x400, 0x240)
        assert candidates == [0x280, 0x2C0]

    def test_cold_pc_falls_back_to_next_line(self):
        prefetcher = GHBPrefetcher(degree=2)
        assert prefetcher.on_miss(0x400, 0x1000) == [0x1040, 0x1080]

    def test_delta_correlation_replays_pattern(self):
        # Pattern of deltas: +1,+2 blocks repeating -> 0, 0x40, 0xC0, 0x100, 0x180...
        prefetcher = GHBPrefetcher(degree=2)
        addrs = [0x0, 0x40, 0xC0, 0x100, 0x180, 0x1C0]
        for addr in addrs:
            last = prefetcher.on_miss(0x400, addr)
        # Trailing deltas (+0x40, ...) matched earlier in history; the replay
        # continues the alternating pattern.
        assert last[0] == 0x1C0 + 0x80

    def test_degree_caps_candidates(self):
        prefetcher = GHBPrefetcher(degree=4)
        for addr in (0x0, 0x40, 0x80):
            last = prefetcher.on_miss(0x400, addr)
        assert len(last) == 4

    def test_fifo_eviction_forgets_stale_history(self):
        prefetcher = GHBPrefetcher(degree=1, ghb_entries=4, index_entries=4)
        prefetcher.on_miss(0x400, 0x0)
        # Flood the GHB with other PCs to evict PC 0x400's entry.
        for i in range(8):
            prefetcher.on_miss(0x500 + 4 * i, 0x9000 + 0x40 * i)
        # PC 0x400 chain is gone: next-line fallback.
        assert prefetcher.on_miss(0x400, 0x2000) == [0x2040]

    def test_reset(self):
        prefetcher = GHBPrefetcher(degree=1)
        prefetcher.on_miss(0x400, 0x0)
        prefetcher.reset()
        assert prefetcher.stats.triggers == 0
        assert prefetcher.on_miss(0x400, 0x100) == [0x140]

    def test_tiny_ghb_rejected(self):
        with pytest.raises(ConfigurationError):
            GHBPrefetcher(degree=1, ghb_entries=2)

    @settings(max_examples=30)
    @given(
        st.lists(st.integers(0, 0xFFFFF), min_size=1, max_size=60),
        st.integers(1, 8),
    )
    def test_never_exceeds_degree(self, addrs, degree):
        prefetcher = GHBPrefetcher(degree=degree)
        for addr in addrs:
            assert len(prefetcher.on_miss(0x400, addr)) <= degree

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 0xFFFFF), min_size=1, max_size=60))
    def test_candidates_are_block_aligned(self, addrs):
        prefetcher = GHBPrefetcher(degree=4)
        for addr in addrs:
            for candidate in prefetcher.on_miss(0x400, addr):
                assert candidate % 64 == 0


class TestDegeneratePatterns:
    def test_zero_delta_pattern_terminates_and_falls_back(self):
        """Regression: repeated misses to one block (e.g. after coherence
        or streaming-store invalidations) produce all-zero delta chains;
        pattern replay must terminate and fall back to next-line."""
        prefetcher = GHBPrefetcher(degree=8)
        for _ in range(10):
            candidates = prefetcher.on_miss(0x400, 0x1000)
        assert candidates == [0x1000 + (i + 1) * 64 for i in range(8)]

    def test_mixed_zero_and_nonzero_deltas_terminate(self):
        prefetcher = GHBPrefetcher(degree=8)
        addrs = [0x0, 0x0, 0x40, 0x40, 0x0, 0x0, 0x40, 0x40, 0x0, 0x0]
        for addr in addrs:
            candidates = prefetcher.on_miss(0x400, addr)
        assert len(candidates) <= 8  # terminated, possibly via fallback

    def test_degree_zero_with_pattern_returns_nothing(self):
        prefetcher = GHBPrefetcher(degree=0)
        for addr in (0x0, 0x100, 0x200, 0x300):
            candidates = prefetcher.on_miss(0x400, addr)
        assert candidates == []
