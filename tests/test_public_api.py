"""Public API surface tests: imports, exceptions, docstrings."""

import importlib
import inspect

import pytest

import repro
from repro.errors import (
    AddressError,
    ConfigurationError,
    ReproError,
    SimulationError,
    WorkloadError,
)

SUBPACKAGES = [
    "repro.telemetry",
    "repro.core",
    "repro.mem",
    "repro.prefetch",
    "repro.noc",
    "repro.cpu",
    "repro.energy",
    "repro.sim",
    "repro.fullsystem",
    "repro.workloads",
    "repro.experiments",
]


class TestImports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_imports_and_exports(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} missing docstring"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        assert repro.__version__


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigurationError, SimulationError, WorkloadError, AddressError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        from repro.core.config import ApproximatorConfig

        with pytest.raises(ReproError):
            ApproximatorConfig(table_entries=7)


class TestFacade:
    """Pin the repro.api surface: names, builder chain, RunResult shape."""

    FACADE_NAMES = [
        "RunResult",
        "Simulation",
        "SimulationBuilder",
        "audit",
        "build_approximator",
        "lva",
        "replay",
        "run_experiment",
    ]

    @pytest.mark.parametrize("name", FACADE_NAMES)
    def test_reexported_from_repro(self, name):
        import repro.api

        assert hasattr(repro.api, name)
        assert hasattr(repro, name)
        assert name in repro.__all__

    def test_lva_maps_short_names(self):
        from repro.api import lva

        config = lva(window=0.2, degree=4, ghb=2, lhb=8, table_entries=512)
        assert config.confidence_window == 0.2
        assert config.approximation_degree == 4
        assert config.ghb_size == 2
        assert config.lhb_size == 8
        assert config.table_entries == 512

    def test_lva_rejects_unknown_field(self):
        from repro.api import lva

        with pytest.raises(ConfigurationError):
            lva(not_a_field=1)

    def test_builder_requires_workload(self):
        from repro.api import Simulation

        with pytest.raises(ConfigurationError):
            Simulation.builder().run()

    def test_builder_methods_chain(self):
        from repro.api import Simulation, SimulationBuilder

        builder = Simulation.builder()
        assert isinstance(builder, SimulationBuilder)
        for call in (
            lambda: builder.workload("canneal", small=True),
            lambda: builder.seed(1),
            lambda: builder.approximator(),
            lambda: builder.precise(),
            lambda: builder.compare_precise(),
            lambda: builder.record_trace(),
        ):
            assert call() is builder

    def test_run_returns_frozen_result(self):
        import dataclasses

        from repro.api import RunResult, Simulation, lva

        result = (
            Simulation.builder()
            .workload("canneal", small=True)
            .approximator(lva(degree=4))
            .compare_precise()
            .run()
        )
        assert isinstance(result, RunResult)
        assert result.workload == "canneal"
        assert result.mode == "lva"
        assert result.instructions > 0
        assert 0.0 <= result.coverage <= 1.0
        assert result.output_error is not None
        assert result.stats["raw_misses"] >= result.stats["covered_misses"]
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.mpki = 0.0
        assert result.workload in result.summary()

    def test_precise_mode_records_trace(self):
        from repro.api import Simulation

        result = (
            Simulation.builder()
            .workload("canneal", small=True)
            .record_trace()
            .run()
        )
        assert result.mode == "precise"
        assert result.output_error is None
        assert result.trace is not None and len(result.trace) > 0

    def test_run_experiment_matches_driver(self):
        import warnings

        from repro.api import run_experiment

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = run_experiment("fig13", small=True)
        assert result.series

    def test_run_experiment_unknown_name(self):
        from repro.api import run_experiment

        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_audit_accepts_name(self):
        from repro.annotations import AuditReport
        from repro.api import audit

        report = audit("canneal", small=True)
        assert isinstance(report, AuditReport)


class TestDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_classes_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} missing docstring"

    def test_core_public_methods_documented(self):
        from repro.core.approximator import LoadValueApproximator

        for name, member in inspect.getmembers(LoadValueApproximator):
            if name.startswith("_") or not callable(member):
                continue
            assert member.__doc__, f"LoadValueApproximator.{name}"
