"""Public API surface tests: imports, exceptions, docstrings."""

import importlib
import inspect

import pytest

import repro
from repro.errors import (
    AddressError,
    ConfigurationError,
    ReproError,
    SimulationError,
    WorkloadError,
)

SUBPACKAGES = [
    "repro.core",
    "repro.mem",
    "repro.prefetch",
    "repro.noc",
    "repro.cpu",
    "repro.energy",
    "repro.sim",
    "repro.fullsystem",
    "repro.workloads",
    "repro.experiments",
]


class TestImports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_imports_and_exports(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} missing docstring"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        assert repro.__version__


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigurationError, SimulationError, WorkloadError, AddressError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        from repro.core.config import ApproximatorConfig

        with pytest.raises(ReproError):
            ApproximatorConfig(table_entries=7)


class TestDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_classes_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} missing docstring"

    def test_core_public_methods_documented(self):
        from repro.core.approximator import LoadValueApproximator

        for name, member in inspect.getmembers(LoadValueApproximator):
            if name.startswith("_") or not callable(member):
                continue
            assert member.__doc__, f"LoadValueApproximator.{name}"
