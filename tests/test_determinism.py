"""Determinism guarantees: identical seeds must reproduce identical results.

Everything in the library draws randomness through seeded generators, so
simulations are bit-reproducible — the property the whole evaluation's
credibility rests on.
"""

import pytest

from repro import (
    ApproximatorConfig,
    FullSystemConfig,
    FullSystemSimulator,
    Mode,
    TraceRecorder,
    TraceSimulator,
    get_workload,
)
from repro.experiments import common, fig12


@pytest.fixture(autouse=True)
def _fresh_caches():
    common.reset_caches()
    yield
    common.reset_caches()


class TestPhase1Determinism:
    @pytest.mark.parametrize("name", ["canneal", "fluidanimate"])
    def test_identical_stats_across_runs(self, name):
        def run():
            sim = TraceSimulator(Mode.LVA)
            get_workload(name, small=True).execute(sim, 5)
            return sim.finish().as_dict()

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            sim = TraceSimulator(Mode.LVA)
            get_workload("canneal", small=True).execute(sim, seed)
            return sim.finish().raw_misses

        assert run(1) != run(2)


class TestPhase2Determinism:
    def test_identical_replays(self):
        recorder = TraceRecorder()
        sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
        get_workload("blackscholes", small=True).execute(sim, 5)
        sim.finish()
        config = FullSystemConfig(
            approximate=True, approximator=ApproximatorConfig()
        )
        a = FullSystemSimulator(config).run(recorder.trace)
        b = FullSystemSimulator(config).run(recorder.trace)
        assert a.cycles == b.cycles
        assert a.covered_misses == b.covered_misses
        assert a.energy.total_nj == b.energy.total_nj


class TestExperimentDeterminism:
    def test_driver_reproducible(self):
        first = fig12.run(small=True, seed=3)
        common.reset_caches()
        second = fig12.run(small=True, seed=3)
        assert first.series == second.series
