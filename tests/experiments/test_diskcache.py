"""The persistent on-disk result cache (repro.experiments.diskcache)."""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import ApproximatorConfig
from repro.experiments import common, diskcache
from repro.experiments.common import (
    TechniqueResult,
    run_precise_reference,
    run_technique,
)
from repro.sim.tracesim import Mode

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def disk(monkeypatch, tmp_path):
    """A live, empty disk cache in tmp_path with clean in-memory layers.

    The suite-wide autouse fixture disables the disk layer; this one
    re-enables it against a throwaway directory and isolates the
    in-process caches so the disk layer is actually exercised.
    """
    monkeypatch.delenv(diskcache.NO_CACHE_ENV, raising=False)
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.setattr(diskcache, "_DISABLED_OVERRIDE", False)
    monkeypatch.setattr(diskcache, "_ACTIVE", None)
    monkeypatch.setattr(diskcache, "_ACTIVE_DIR", None)
    monkeypatch.setattr(common, "COMPUTE_COUNTERS", common.ComputeCounters())
    saved_precise = dict(common._PRECISE_CACHE)
    saved_technique = dict(common._TECHNIQUE_CACHE)
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    cache = diskcache.active_cache()
    assert cache is not None
    yield cache
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    common._PRECISE_CACHE.update(saved_precise)
    common._TECHNIQUE_CACHE.update(saved_technique)


def _fig4_key() -> str:
    """The disk key of one real Figure 4 sweep point."""
    return diskcache.point_key(
        "technique",
        workload="blackscholes",
        mode=Mode.LVA,
        config=ApproximatorConfig(ghb_size=2),
        prefetch_degree=4,
        seed=0,
        small=True,
        params=(),
    )


class TestKeys:
    def test_key_is_stable_across_processes(self):
        """Same point ⇒ same key from a fresh interpreter (no PYTHONHASHSEED
        dependence, no id()/repr-address leakage through the hash)."""
        script = (
            "from repro.experiments import diskcache\n"
            "from repro.core.config import ApproximatorConfig\n"
            "from repro.sim.tracesim import Mode\n"
            "print(diskcache.point_key('technique', workload='blackscholes',"
            " mode=Mode.LVA, config=ApproximatorConfig(ghb_size=2),"
            " prefetch_degree=4, seed=0, small=True, params=()))\n"
        )
        env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONHASHSEED="12345")
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert completed.stdout.strip() == _fig4_key()

    def test_key_distinguishes_every_component(self):
        base = _fig4_key()
        variants = [
            diskcache.point_key(
                "precise",
                workload="blackscholes",
                mode=Mode.LVA,
                config=ApproximatorConfig(ghb_size=2),
                prefetch_degree=4,
                seed=0,
                small=True,
                params=(),
            ),
            diskcache.point_key(
                "technique",
                workload="canneal",
                mode=Mode.LVA,
                config=ApproximatorConfig(ghb_size=2),
                prefetch_degree=4,
                seed=0,
                small=True,
                params=(),
            ),
            diskcache.point_key(
                "technique",
                workload="blackscholes",
                mode=Mode.LVP,
                config=ApproximatorConfig(ghb_size=2),
                prefetch_degree=4,
                seed=0,
                small=True,
                params=(),
            ),
            diskcache.point_key(
                "technique",
                workload="blackscholes",
                mode=Mode.LVA,
                config=ApproximatorConfig(ghb_size=4),
                prefetch_degree=4,
                seed=0,
                small=True,
                params=(),
            ),
            diskcache.point_key(
                "technique",
                workload="blackscholes",
                mode=Mode.LVA,
                config=ApproximatorConfig(ghb_size=2),
                prefetch_degree=4,
                seed=1,
                small=True,
                params=(),
            ),
            diskcache.point_key(
                "technique",
                workload="blackscholes",
                mode=Mode.LVA,
                config=ApproximatorConfig(ghb_size=2),
                prefetch_degree=4,
                seed=0,
                small=False,
                params=(),
            ),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_schema_version_invalidates_keys(self, monkeypatch):
        """Bumping SCHEMA_VERSION must orphan every existing entry."""
        old = _fig4_key()
        monkeypatch.setattr(diskcache, "SCHEMA_VERSION", diskcache.SCHEMA_VERSION + 1)
        assert _fig4_key() != old


class TestDiskCache:
    def test_round_trip(self, disk):
        disk.put("ab" * 32, {"payload": [1.5, float("inf")]})
        assert disk.get("ab" * 32) == {"payload": [1.5, float("inf")]}
        assert len(disk) == 1

    def test_miss_returns_none(self, disk):
        assert disk.get("cd" * 32) is None
        assert disk.stats.misses == 1

    def test_corrupt_entry_heals(self, disk):
        key = "ef" * 32
        disk.put(key, {"ok": True})
        path = disk._path(key)
        path.write_bytes(b"\x80\x05 definitely not a pickle")
        assert disk.get(key) is None
        assert not path.exists()
        disk.put(key, {"ok": True})
        assert disk.get(key) == {"ok": True}

    def test_no_cache_env_disables_layer(self, disk, monkeypatch):
        monkeypatch.setenv(diskcache.NO_CACHE_ENV, "1")
        assert diskcache.active_cache() is None

    def test_reset_caches_clears_disk_layer(self, disk):
        run_precise_reference("blackscholes", small=True)
        assert len(disk) == 1
        assert common._PRECISE_CACHE
        common.reset_caches()
        assert len(disk) == 0
        assert not common._PRECISE_CACHE
        assert common.COMPUTE_COUNTERS.precise_computed == 0


class TestResultCaching:
    def test_cached_technique_result_matches_fresh(self, disk):
        """A fig4 point served from disk is bitwise-equal to recomputing.

        Clearing the in-memory caches between the two calls simulates a
        brand-new process finding only the disk layer warm.
        """
        config = ApproximatorConfig(ghb_size=2)
        fresh = run_technique("blackscholes", Mode.LVA, config=config, small=True)
        assert common.COMPUTE_COUNTERS.technique_computed == 1

        common._PRECISE_CACHE.clear()
        common._TECHNIQUE_CACHE.clear()
        cached = run_technique("blackscholes", Mode.LVA, config=config, small=True)

        assert common.COMPUTE_COUNTERS.technique_computed == 1  # not recomputed
        assert common.COMPUTE_COUNTERS.technique_disk_hits == 1
        assert isinstance(cached, TechniqueResult)
        assert cached is not fresh
        assert dataclasses.asdict(cached) == dataclasses.asdict(fresh)

    def test_precise_reference_served_from_disk(self, disk):
        first = run_precise_reference("blackscholes", small=True)
        common._PRECISE_CACHE.clear()
        second = run_precise_reference("blackscholes", small=True)
        assert common.COMPUTE_COUNTERS.precise_computed == 1
        assert common.COMPUTE_COUNTERS.precise_disk_hits == 1
        assert second.mpki == first.mpki
        assert second.instructions == first.instructions
        assert second.output == first.output

    def test_wrong_record_type_is_ignored(self, disk, monkeypatch):
        """A technique key holding junk must fall through to computing."""
        config = ApproximatorConfig(ghb_size=2)
        key = _fig4_key()
        disk.put(key, {"not": "a TechniqueResult"})
        result = run_technique("blackscholes", Mode.LVA, config=config, small=True)
        assert isinstance(result, TechniqueResult)
        assert common.COMPUTE_COUNTERS.technique_computed == 1
