"""Crash-recovery property suite: SIGKILL at every publish crash point.

The acceptance invariant for the storage layer: a process hard-killed at
*any* step of an atomic publish (cache entry, trace entry, journal
append) leaves a store from which a resumed sweep converges to results
bit-identical to an uninterrupted run — and ``lva-fsck`` accounts for
every scrap of debris the kill left behind.

The kill is ``os._exit(24)`` fired by the ``kill:site=...`` storage
fault, which is indistinguishable from SIGKILL as far as the filesystem
is concerned (no flush, no atexit, no cleanup).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults.fsfaults import CRASH_POINTS, KILL_EXIT_STATUS

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Crash points a small fig13 sweep actually traverses. Trace-store
#: publishes only happen for fullsystem captures (fig10/fig11), so the
#: trace.* points are exercised by the dedicated in-process test below.
SWEEP_CRASH_POINTS = [p for p in CRASH_POINTS if not p.startswith("trace.")]


def _runner_env(cache_dir: Path, inject: str = "") -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_NO_CACHE", None)
    if inject:
        env["REPRO_INJECT"] = inject
    else:
        env.pop("REPRO_INJECT", None)
    return env


def _run_cli(args, env, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
        **kwargs,
    )


def _run_until_killed(args, env) -> int:
    """Run the CLI expecting a hard kill; returns the exit status.

    ``os._exit`` in the parent orphans any pool workers, which would
    hold captured pipes open forever — so output goes to /dev/null and
    the whole process group is reaped afterwards.
    """
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", *args],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    try:
        returncode = process.wait(timeout=120)
    finally:
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
    return returncode


def _fsck(cache_dir: Path, *extra) -> subprocess.CompletedProcess:
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.experiments.fsck",
            "--cache-dir",
            str(cache_dir),
            "--json",
            *extra,
        ],
        env=_runner_env(cache_dir),
        capture_output=True,
        text=True,
        timeout=60,
    )


def _table(text: str) -> str:
    start = text.index("== Figure 13")
    end = text.index("[fig13 completed")  # wall-clock suffix varies
    return text[start:end]


@pytest.mark.slow
class TestKillAtEveryCrashPoint:
    @pytest.mark.parametrize("site", SWEEP_CRASH_POINTS)
    def test_kill_fsck_resume_bit_identical(self, tmp_path, site):
        """Property: for every publish step S — kill at S, fsck --repair,
        resume — the final table equals an uninterrupted run's."""
        cache_dir = tmp_path / "cache"

        # Journal appends only happen when the sweep engine drives the
        # run (the plain CLI path computes without journaling), so those
        # sites need --jobs 2; the kill still lands in the parent, which
        # owns the journal.
        engine_args = ["--jobs", "2"] if site.startswith("journal.") else []
        returncode = _run_until_killed(
            ["fig13", "--small", *engine_args],
            _runner_env(cache_dir, inject=f"kill:site={site},at=1,count=1"),
        )
        assert returncode == KILL_EXIT_STATUS, (site, returncode)

        # fsck accounts for (and clears) any debris the kill left.
        scan = _fsck(cache_dir, "--repair")
        assert scan.returncode == 0, scan.stdout + scan.stderr
        rescan = json.loads(_fsck(cache_dir).stdout)
        assert rescan["clean"], rescan["findings"]

        # The resumed sweep completes and matches a pristine run bit-for-bit.
        resumed = _run_cli(["fig13", "--small", "--resume"], _runner_env(cache_dir))
        assert resumed.returncode == 0, resumed.stderr
        assert "FAILED" not in resumed.stdout
        pristine = _run_cli(["fig13", "--small"], _runner_env(tmp_path / "pristine"))
        assert pristine.returncode == 0, pristine.stderr
        assert _table(resumed.stdout) == _table(pristine.stdout)


@pytest.mark.slow
class TestKillDuringTracePublish:
    """The trace-store publish sequence, exercised in a child process
    that captures-and-stores directly (no fullsystem sweep needed)."""

    CHILD = r"""
import os, sys
from pathlib import Path
sys.path.insert(0, os.environ["CHILD_SRC"])
from repro.experiments import tracestore
from repro.sim.trace import LoadEvent, Trace

trace = Trace([
    LoadEvent(tid=i % 2, pc=0x400 + 4 * i, addr=0x1000 + 64 * i, value=i,
              is_float=False, approximable=bool(i % 2), gap=i, is_store=False)
    for i in range(8)
])
store = tracestore.TraceStore(directory=Path(os.environ["REPRO_CACHE_DIR"]) / "traces")
store.put("ab" + "0" * 62, trace.pack())
print("PUBLISHED", store.has("ab" + "0" * 62))
"""

    @pytest.mark.parametrize(
        "site", [p for p in CRASH_POINTS if p.startswith("trace.")]
    )
    def test_kill_leaves_recoverable_store(self, tmp_path, site):
        env = _runner_env(tmp_path, inject=f"kill:site={site},at=1,count=1")
        env["CHILD_SRC"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-c", self.CHILD],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == KILL_EXIT_STATUS, (site, proc.returncode, proc.stderr)

        # Whatever the kill left behind, fsck repairs it to a clean store…
        assert _fsck(tmp_path, "--repair").returncode == 0
        assert json.loads(_fsck(tmp_path).stdout)["clean"]

        # …and a clean rerun publishes a complete, verifiable entry.
        env.pop("REPRO_INJECT")
        rerun = subprocess.run(
            [sys.executable, "-c", self.CHILD],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert rerun.returncode == 0 and "PUBLISHED True" in rerun.stdout
        assert json.loads(_fsck(tmp_path).stdout)["clean"]

    def test_post_rename_kill_leaves_complete_entry(self, tmp_path):
        """A kill *after* the rename is indistinguishable from success:
        the published entry must already be complete and verifiable."""
        env = _runner_env(
            tmp_path, inject="kill:site=trace.publish.post_rename,at=1,count=1"
        )
        env["CHILD_SRC"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-c", self.CHILD],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == KILL_EXIT_STATUS
        scan = json.loads(_fsck(tmp_path).stdout)
        verdicts = [f["verdict"] for f in scan["findings"]]
        assert "ok" in verdicts  # the entry survived whole
        assert "corrupt" not in verdicts
