"""Disk-cache behaviour under hostile filesystems and concurrent writers."""

from __future__ import annotations

import multiprocessing
import warnings

import pytest

from repro import faults
from repro.experiments.diskcache import DiskCache


class TestUnwritableCache:
    def test_put_warns_once_then_noops(self, tmp_path, monkeypatch):
        # chmod tricks don't bind root (CI containers), so break the
        # write syscall itself — the read-only-filesystem shape.
        import repro.experiments.diskcache as diskcache_mod

        def refuse(*args, **kwargs):
            raise PermissionError(30, "Read-only file system")

        monkeypatch.setattr(diskcache_mod.tempfile, "mkstemp", refuse)
        cache = DiskCache(directory=tmp_path / "cache")
        with pytest.warns(RuntimeWarning, match="not writable"):
            cache.put("a" * 64, {"x": 1})
        assert cache._broken
        # Subsequent stores are silent no-ops, not repeated warnings.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.put("b" * 64, {"x": 2})
        assert cache.stats.stores == 0

    def test_get_keeps_working_after_put_breaks(self, tmp_path, monkeypatch):
        import repro.experiments.diskcache as diskcache_mod

        directory = tmp_path / "cache"
        cache = DiskCache(directory=directory)
        cache.put("c" * 64, {"x": 3})  # healthy store first

        def refuse(*args, **kwargs):
            raise PermissionError(30, "Read-only file system")

        monkeypatch.setattr(diskcache_mod.tempfile, "mkstemp", refuse)
        with pytest.warns(RuntimeWarning):
            cache.put("d" * 64, {"x": 4})
        assert cache.get("c" * 64) == {"x": 3}

    def test_unwritable_parent_never_raises(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("file, not a directory")
        cache = DiskCache(directory=blocker / "cache")
        with pytest.warns(RuntimeWarning):
            cache.put("e" * 64, {"x": 5})
        assert cache.get("e" * 64) is None


class TestCorruptEntries:
    def test_injected_corruption_heals_on_read(self, tmp_path):
        cache = DiskCache(directory=tmp_path / "cache")
        key = "f" * 64
        cache.put(key, {"x": 6})
        faults.corrupt_entry(cache._path(key))

        assert cache.get(key) is None  # treated as a miss
        assert not cache._path(key).exists()  # and deleted
        cache.put(key, {"x": 6})  # the slot heals
        assert cache.get(key) == {"x": 6}


def _hammer_writer(directory: str, key: str, payload_size: int, rounds: int) -> None:
    from pathlib import Path

    cache = DiskCache(directory=Path(directory))
    record = {"blob": b"\xab" * payload_size}
    for _ in range(rounds):
        cache.put(key, record)


class TestConcurrentWriters:
    def test_same_key_racing_processes_never_produce_torn_entry(self, tmp_path):
        """Two processes hammering the same key (the scenario of two
        --jobs workers finishing the same deduped point) must always
        leave a fully readable entry: atomic rename, never truncation."""
        directory = tmp_path / "cache"
        key = "0" * 64
        # A payload large enough that a non-atomic write would be torn.
        payload_size, rounds = 1 << 20, 30

        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(
                target=_hammer_writer, args=(str(directory), key, payload_size, rounds)
            )
            for _ in range(2)
        ]
        cache = DiskCache(directory=directory)
        for writer in writers:
            writer.start()
        torn = 0
        observations = 0
        while any(w.is_alive() for w in writers):
            record = cache.get(key)
            if record is not None:
                observations += 1
                if len(record["blob"]) != payload_size:
                    torn += 1
        for writer in writers:
            writer.join()
            assert writer.exitcode == 0

        assert torn == 0
        final = cache.get(key)
        assert final is not None and len(final["blob"]) == payload_size
        # No stray temp files left behind by the racing writers.
        assert not list(directory.glob("*/*.tmp"))
