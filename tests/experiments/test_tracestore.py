"""Tests for the memory-mapped cross-process trace store."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import common, diskcache, tracestore
from repro.sim.trace import LoadEvent, Trace


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Enable the persistent layers, rooted in a throwaway directory."""
    monkeypatch.delenv(diskcache.NO_CACHE_ENV, raising=False)
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
    return tmp_path


def sample_trace(n: int = 6) -> Trace:
    return Trace(
        [
            LoadEvent(
                tid=i % 4,
                pc=0x400 + 4 * i,
                addr=0x1000 + 64 * i,
                value=float(i) * 0.5 if i % 2 else i,
                is_float=bool(i % 2),
                approximable=bool(i % 3),
                gap=i,
                is_store=(i == 4),
            )
            for i in range(n)
        ]
    )


class TestPutGet:
    def test_round_trip(self, cache_dir):
        store = tracestore.TraceStore(directory=cache_dir / "traces")
        packed = sample_trace().pack()
        store.put("ab" + "0" * 62, packed)
        loaded = store.get("ab" + "0" * 62)
        assert loaded is not None
        assert loaded.to_trace().events == packed.to_trace().events
        assert store.stats.stores == 1 and store.stats.hits == 1

    def test_get_returns_memory_maps(self, cache_dir):
        store = tracestore.TraceStore(directory=cache_dir / "traces")
        store.put("cd" + "0" * 62, sample_trace().pack())
        loaded = store.get("cd" + "0" * 62)
        assert isinstance(loaded.pc, np.memmap)
        assert store.stats.bytes_mapped == loaded.nbytes

    def test_empty_trace_round_trips(self, cache_dir):
        store = tracestore.TraceStore(directory=cache_dir / "traces")
        store.put("ee" + "0" * 62, Trace().pack())
        loaded = store.get("ee" + "0" * 62)
        assert loaded is not None and len(loaded) == 0

    def test_absent_key_is_miss(self, cache_dir):
        store = tracestore.TraceStore(directory=cache_dir / "traces")
        assert store.get("ff" + "0" * 62) is None
        assert store.stats.misses == 1
        assert not store.has("ff" + "0" * 62)

    def test_put_is_idempotent(self, cache_dir):
        store = tracestore.TraceStore(directory=cache_dir / "traces")
        packed = sample_trace().pack()
        store.put("aa" + "0" * 62, packed)
        store.put("aa" + "0" * 62, packed)
        assert store.stats.stores == 1
        assert len(store) == 1

    def test_unwritable_directory_degrades_with_one_warning(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        store = tracestore.TraceStore(directory=blocker / "traces")
        with pytest.warns(RuntimeWarning):
            store.put("aa" + "0" * 62, sample_trace().pack())
        # Broken flag set: further puts are silent no-ops.
        store.put("bb" + "0" * 62, sample_trace().pack())
        assert store.stats.stores == 0


class TestHealing:
    def put_one(self, cache_dir, key="ab" + "1" * 62):
        store = tracestore.TraceStore(directory=cache_dir / "traces")
        store.put(key, sample_trace().pack())
        entry = store._entry_dir(key)
        assert entry.is_dir()
        return store, key, entry

    def test_truncated_column_heals_as_miss(self, cache_dir):
        store, key, entry = self.put_one(cache_dir)
        (entry / "pc.npy").write_bytes(b"\x93NUMPY garbage")
        assert store.get(key) is None
        assert not entry.exists(), "corrupt entry should be deleted"
        # The slot accepts a fresh capture afterwards.
        store.put(key, sample_trace().pack())
        assert store.get(key) is not None

    def test_missing_column_heals_as_miss(self, cache_dir):
        store, key, entry = self.put_one(cache_dir)
        (entry / "addr.npy").unlink()
        assert store.get(key) is None
        assert not entry.exists()

    def test_schema_mismatch_heals_as_miss(self, cache_dir):
        store, key, entry = self.put_one(cache_dir)
        meta = json.loads((entry / tracestore.META_NAME).read_text())
        meta["trace_schema"] = tracestore.TRACE_SCHEMA_VERSION + 1
        (entry / tracestore.META_NAME).write_text(json.dumps(meta))
        assert not store.has(key)
        assert store.get(key) is None
        assert not entry.exists()

    def test_wrong_length_meta_heals_as_miss(self, cache_dir):
        store, key, entry = self.put_one(cache_dir)
        meta = json.loads((entry / tracestore.META_NAME).read_text())
        meta["events"] = 999
        (entry / tracestore.META_NAME).write_text(json.dumps(meta))
        assert store.get(key) is None
        assert not entry.exists()


class TestKeys:
    def test_key_components_distinguish(self):
        base = tracestore.trace_key("canneal", 0, False, None)
        assert tracestore.trace_key("canneal", 1, False, None) != base
        assert tracestore.trace_key("canneal", 0, True, None) != base
        assert tracestore.trace_key("ferret", 0, False, None) != base
        assert tracestore.trace_key("canneal", 0, False, {"n": 2}) != base

    def test_schema_version_participates(self, monkeypatch):
        base = tracestore.trace_key("canneal", 0, False, None)
        monkeypatch.setattr(tracestore, "TRACE_SCHEMA_VERSION", 999)
        assert tracestore.trace_key("canneal", 0, False, None) != base


class TestActiveStore:
    def test_disabled_with_no_cache_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(diskcache.NO_CACHE_ENV, "1")
        assert tracestore.active_store() is None

    def test_enabled_beside_result_cache(self, cache_dir):
        store = tracestore.active_store()
        assert store is not None
        assert store.directory == cache_dir / "traces"

    def test_redirects_when_cache_dir_changes(self, cache_dir, monkeypatch):
        first = tracestore.active_store()
        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(cache_dir / "other"))
        second = tracestore.active_store()
        assert second is not None and second is not first
        assert second.directory == cache_dir / "other" / "traces"


class TestConcurrentReaders:
    READER = """
import os, sys
sys.path.insert(0, os.environ["REPRO_SRC"])
from repro.experiments import tracestore
store = tracestore.TraceStore(directory=__import__("pathlib").Path(sys.argv[1]))
packed = store.get(sys.argv[2])
assert packed is not None, "reader missed the entry"
# Touch every column through the mmap and emit a stable digest.
total = int(packed.pc.sum()) + int(packed.addr.sum()) + int(packed.gap.sum())
print(len(packed), total, sum(1 for v in packed.value_list() if isinstance(v, int)))
"""

    def test_parallel_processes_share_the_entry(self, cache_dir):
        key = "ab" + "2" * 62
        store = tracestore.TraceStore(directory=cache_dir / "traces")
        packed = sample_trace(64).pack()
        store.put(key, packed)

        env = dict(os.environ)
        env["REPRO_SRC"] = str(Path(__file__).resolve().parents[2] / "src")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", self.READER, str(store.directory), key],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                text=True,
            )
            for _ in range(3)
        ]
        outputs = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            outputs.append(out.strip())
        assert len(set(outputs)) == 1, "readers disagreed on the mapped bytes"
        expected = (
            f"{len(packed)} "
            f"{int(packed.pc.sum()) + int(packed.addr.sum()) + int(packed.gap.sum())} "
            f"{sum(1 for v in packed.value_list() if isinstance(v, int))}"
        )
        assert outputs[0] == expected


class TestCaptureIntegration:
    def test_capture_trace_publishes_and_rehydrates(self, cache_dir):
        common._TRACE_CACHE.clear()
        store = tracestore.active_store()
        assert store is not None and len(store) == 0

        first = common.capture_trace("swaptions", small=True)
        assert len(store) == 1

        # Cold in-process cache: the second call must come from the store.
        common._TRACE_CACHE.clear()
        before = store.stats.hits
        second = common.capture_trace("swaptions", small=True)
        assert store.stats.hits == before + 1
        assert second.to_trace().events == first.to_trace().events

    def test_trace_lru_is_bounded(self, monkeypatch):
        monkeypatch.setenv(common.TRACE_LRU_ENV, "2")
        lru = common._PackedTraceLRU()
        traces = [sample_trace(i + 1).pack() for i in range(4)]
        for i, packed in enumerate(traces):
            lru.put(("w", i, False), packed)
        assert len(lru) == 2
        assert ("w", 3, False) in lru and ("w", 2, False) in lru
        assert ("w", 0, False) not in lru

    def test_trace_lru_get_refreshes_recency(self, monkeypatch):
        monkeypatch.setenv(common.TRACE_LRU_ENV, "2")
        lru = common._PackedTraceLRU()
        lru.put(("a", 0, False), sample_trace(1).pack())
        lru.put(("b", 0, False), sample_trace(2).pack())
        assert lru.get(("a", 0, False)) is not None  # refresh "a"
        lru.put(("c", 0, False), sample_trace(3).pack())
        assert ("a", 0, False) in lru
        assert ("b", 0, False) not in lru
