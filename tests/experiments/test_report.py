"""Tests for JSON/Markdown reporting of experiment results."""

import json

from repro.experiments.common import ExperimentResult
from repro.experiments.report import render_report, to_json, to_markdown


def sample_result():
    result = ExperimentResult("Figure X", "a demo result", meta={"note": "hi"})
    result.add("mpki", "canneal", 0.5)
    result.add("mpki", "x264", 0.25)
    result.add("error", "canneal", 0.01)
    result.add("error", "x264", 0.0)
    return result


class TestJson:
    def test_round_trips_through_json(self):
        payload = json.loads(to_json(sample_result()))
        assert payload["name"] == "Figure X"
        assert payload["series"]["mpki"]["canneal"] == 0.5
        assert payload["averages"]["mpki"] == 0.375
        assert payload["meta"]["note"] == "hi"

    def test_non_jsonable_meta_reprd(self):
        result = ExperimentResult("X", "d", meta={"obj": object()})
        payload = json.loads(to_json(result))
        assert payload["meta"]["obj"].startswith("<object")


class TestMarkdown:
    def test_contains_table_rows(self):
        markdown = to_markdown(sample_result())
        assert "### Figure X" in markdown
        assert "| canneal | 0.5000 | 0.0100 |" in markdown
        assert "| **average** |" in markdown

    def test_missing_cells_rendered_as_dash(self):
        result = ExperimentResult("X", "d")
        result.add("a", "w1", 1.0)
        result.add("b", "w2", 2.0)
        markdown = to_markdown(result)
        assert "—" in markdown

    def test_render_report_concatenates(self):
        report = render_report([sample_result(), sample_result()], title="T")
        assert report.startswith("# T")
        assert report.count("### Figure X") == 2
