"""Storage-fault matrix: never a wrong result under any injected fault.

Every fault class the injector knows (torn write, lost fsync, byte
corruption, truncated published file, ENOSPC, EIO, failed rename) is
driven through the real DiskCache / TraceStore / RunJournal code paths.
The invariant under test is always the same: a damaged entry heals as a
miss (recompute), a failing store degrades loudly (warn-once), and a
sweep under storage chaos converges to results bit-identical to a
fault-free run.
"""

from __future__ import annotations

import warnings

import pytest

from repro import telemetry
from repro.experiments import common, diskcache, fig13, integrity, tracestore
from repro.experiments.journal import RunJournal
from repro.experiments.sweep import SweepEngine
from repro.faults import fsfaults
from repro.faults.memory import INJECT_ENV
from repro.sim.trace import LoadEvent, Trace

KEY = "ab" + "0" * 62


@pytest.fixture(autouse=True)
def _hermetic_faults(monkeypatch):
    """No spec leaks in or out; fresh fault counters and warn-once state."""
    monkeypatch.delenv(INJECT_ENV, raising=False)
    fsfaults.reset_counters()
    integrity.reset_warnings()
    yield
    fsfaults.reset_counters()
    integrity.reset_warnings()


@pytest.fixture
def clean_caches(monkeypatch, tmp_path):
    """Disk cache in tmp_path, empty in-memory caches, fresh counters."""
    monkeypatch.delenv(diskcache.NO_CACHE_ENV, raising=False)
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.setattr(diskcache, "_DISABLED_OVERRIDE", False)
    monkeypatch.setattr(diskcache, "_ACTIVE", None)
    monkeypatch.setattr(diskcache, "_ACTIVE_DIR", None)
    monkeypatch.setattr(common, "COMPUTE_COUNTERS", common.ComputeCounters())
    saved_precise = dict(common._PRECISE_CACHE)
    saved_technique = dict(common._TECHNIQUE_CACHE)
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    common._TRACE_CACHE.clear()
    yield
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    common._TRACE_CACHE.clear()
    common._PRECISE_CACHE.update(saved_precise)
    common._TECHNIQUE_CACHE.update(saved_technique)


def _inject(monkeypatch, spec: str) -> None:
    monkeypatch.setenv(INJECT_ENV, spec)
    fsfaults.reset_counters()


def sample_trace(n: int = 6) -> Trace:
    return Trace(
        [
            LoadEvent(
                tid=i % 4,
                pc=0x400 + 4 * i,
                addr=0x1000 + 64 * i,
                value=float(i) * 0.5 if i % 2 else i,
                is_float=bool(i % 2),
                approximable=bool(i % 3),
                gap=i,
                is_store=(i == 4),
            )
            for i in range(n)
        ]
    )


class TestCacheChaos:
    """DiskCache under every write/read/publish fault."""

    @pytest.mark.parametrize(
        "spec",
        [
            "torn:target=cache",
            "fsync:target=cache,frac=0.3",
            "corrupt:target=cache",
            "trunc:target=cache",
        ],
        ids=["torn", "fsync", "corrupt", "trunc"],
    )
    def test_damaged_entry_heals_as_miss(self, monkeypatch, tmp_path, spec):
        cache = diskcache.DiskCache(directory=tmp_path)
        _inject(monkeypatch, spec)
        cache.put(KEY, {"result": 42})
        monkeypatch.delenv(INJECT_ENV)
        fsfaults.reset_counters()
        assert cache.get(KEY) is None  # never 42-with-damage, never garbage
        assert cache.stats.misses == 1
        # the slot healed: a clean re-put serves
        cache.put(KEY, {"result": 42})
        assert cache.get(KEY) == {"result": 42}

    @pytest.mark.parametrize(
        "spec", ["enospc:target=cache", "eio:target=cache,op=write", "rename:target=cache"],
        ids=["enospc", "eio", "rename"],
    )
    def test_failing_syscalls_degrade_loudly(self, monkeypatch, tmp_path, spec):
        cache = diskcache.DiskCache(directory=tmp_path)
        _inject(monkeypatch, spec)
        with pytest.warns(RuntimeWarning, match="not writable"):
            cache.put(KEY, {"result": 1})
        assert cache._broken  # warn-once no-op mode, like a real full disk
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.put(KEY, {"result": 1})  # second put: silent no-op
        monkeypatch.delenv(INJECT_ENV)
        assert cache.get(KEY) is None  # nothing half-written survived

    def test_read_eio_is_a_plain_miss(self, monkeypatch, tmp_path):
        cache = diskcache.DiskCache(directory=tmp_path)
        cache.put(KEY, {"result": 7})
        _inject(monkeypatch, "eio:target=cache,op=read,count=1")
        assert cache.get(KEY) is None
        monkeypatch.delenv(INJECT_ENV)
        fsfaults.reset_counters()
        assert cache.get(KEY) == {"result": 7}  # entry itself unharmed

    def test_corruption_bumps_telemetry_counter(self, monkeypatch, tmp_path):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, "1")
        telemetry.shutdown()
        try:
            cache = diskcache.DiskCache(directory=tmp_path)
            _inject(monkeypatch, "corrupt:target=cache")
            cache.put(KEY, {"x": 1})
            monkeypatch.delenv(INJECT_ENV)
            fsfaults.reset_counters()
            assert cache.get(KEY) is None
            assert telemetry.metrics().counter("storage.corrupt.cache").value == 1
        finally:
            telemetry.shutdown()

    def test_corruption_warns_once_per_subsystem(self, monkeypatch, tmp_path, capsys):
        cache = diskcache.DiskCache(directory=tmp_path)
        _inject(monkeypatch, "corrupt:target=cache")
        cache.put(KEY, {"x": 1})
        cache.put("cd" + "0" * 62, {"y": 2})
        monkeypatch.delenv(INJECT_ENV)
        fsfaults.reset_counters()
        assert cache.get(KEY) is None
        assert cache.get("cd" + "0" * 62) is None
        err = capsys.readouterr().err
        assert err.count("corrupt cache entry detected") == 1


class TestTraceChaos:
    """TraceStore under every write/read/publish fault."""

    @pytest.mark.parametrize(
        "spec",
        [
            "torn:target=trace,op=column.write",
            "fsync:target=trace,op=column.write,frac=0.4",
            "corrupt:target=trace,op=column.write",
            "torn:target=trace,op=meta.write",
            "trunc:target=trace,path=.npy",
            "corrupt:target=trace,site=published",
        ],
        ids=["torn-col", "fsync-col", "corrupt-col", "torn-meta", "trunc-pub", "rot-pub"],
    )
    def test_damaged_entry_heals_as_miss(self, monkeypatch, tmp_path, spec):
        store = tracestore.TraceStore(directory=tmp_path / "traces")
        packed = sample_trace().pack()
        _inject(monkeypatch, spec)
        store.put(KEY, packed)
        monkeypatch.delenv(INJECT_ENV)
        fsfaults.reset_counters()
        assert store.get(KEY) is None  # damaged columns never replayed
        store.put(KEY, packed)
        reloaded = store.get(KEY)
        assert reloaded is not None
        assert reloaded.to_trace().events == sample_trace().events

    @pytest.mark.parametrize(
        "spec",
        ["enospc:target=trace", "eio:target=trace,op=write", "rename:target=trace"],
        ids=["enospc", "eio", "rename"],
    )
    def test_failing_syscalls_degrade_loudly(self, monkeypatch, tmp_path, spec):
        store = tracestore.TraceStore(directory=tmp_path / "traces")
        _inject(monkeypatch, spec)
        with pytest.warns(RuntimeWarning, match="not writable"):
            store.put(KEY, sample_trace().pack())
        assert store._broken
        monkeypatch.delenv(INJECT_ENV)
        assert store.get(KEY) is None

    def test_verify_can_be_disabled(self, monkeypatch, tmp_path):
        """REPRO_STORE_VERIFY=0 skips the per-read CRC pass (perf escape
        hatch); structural validation still rejects mismatched columns."""
        store = tracestore.TraceStore(directory=tmp_path / "traces")
        store.put(KEY, sample_trace().pack())
        monkeypatch.setenv(integrity.VERIFY_ENV, "0")
        assert store.get(KEY) is not None

    def test_counter_and_warn_once(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, "1")
        telemetry.shutdown()
        try:
            store = tracestore.TraceStore(directory=tmp_path / "traces")
            _inject(monkeypatch, "corrupt:target=trace,op=column.write,at=1,count=1")
            store.put(KEY, sample_trace().pack())
            monkeypatch.delenv(INJECT_ENV)
            fsfaults.reset_counters()
            assert store.get(KEY) is None
            assert telemetry.metrics().counter("storage.corrupt.trace").value >= 1
            assert capsys.readouterr().err.count("corrupt trace entry") == 1
        finally:
            telemetry.shutdown()


class TestJournalChaos:
    def test_append_enospc_degrades_to_warn_once(self, monkeypatch, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl", resume=False)
        _inject(monkeypatch, "enospc:target=journal")
        with pytest.warns(RuntimeWarning, match="journal unavailable"):
            journal.record_done("technique", "k1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            journal.record_done("technique", "k2")  # silent no-op now
        journal.close()

    def test_torn_append_recovers_all_complete_records(self, monkeypatch, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path, resume=False)
        journal.record_done("technique", "k1")
        _inject(monkeypatch, "torn:target=journal,frac=0.5")
        journal.record_done("technique", "k2")  # line torn mid-append
        journal.close()
        monkeypatch.delenv(INJECT_ENV)
        reloaded = RunJournal(path, resume=True)
        assert reloaded.done == {"k1"}  # torn record lost, never resurrected
        assert reloaded.torn_tail
        reloaded.close()


class TestSweepUnderStorageChaos:
    """The acceptance invariant: chaos-swept tables equal clean tables."""

    @pytest.mark.parametrize(
        "spec",
        [
            "corrupt:target=cache",
            "torn:target=cache,at=2",
            "enospc:target=cache,at=3",
        ],
        ids=["corrupt-every-entry", "torn-from-second", "enospc-from-third"],
    )
    def test_chaos_table_bit_identical_to_clean(self, clean_caches, monkeypatch, spec):
        import os

        _inject(monkeypatch, spec)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = SweepEngine(jobs=1).execute(fig13.points(small=True))
        assert not report.failures  # chaos never fails the science
        chaotic = fig13.run(small=True)
        monkeypatch.delenv(INJECT_ENV)
        fsfaults.reset_counters()

        os.environ[diskcache.CACHE_DIR_ENV] += "-pristine"
        diskcache._ACTIVE = None
        common._PRECISE_CACHE.clear()
        common._TECHNIQUE_CACHE.clear()
        common._TRACE_CACHE.clear()
        SweepEngine(jobs=1).execute(fig13.points(small=True))
        pristine = fig13.run(small=True)

        assert chaotic.series == pristine.series
