"""Smoke and shape tests for every experiment driver (small scale).

Full-scale shape assertions live in the benchmark harness; here the point
is that each driver runs end-to-end, returns all the series the paper's
table/figure contains, and the headline orderings already show at small
scale where they are robust.
"""

import pytest

from repro.experiments import common
from repro.experiments import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
    table2,
)
from repro.experiments.runner import EXPERIMENTS, main
from repro.workloads.registry import workload_names


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    common.reset_caches()
    yield
    common.reset_caches()


ALL = workload_names()


class TestCommon:
    def test_precise_reference_cached(self):
        first = common.run_precise_reference("swaptions", small=True)
        second = common.run_precise_reference("swaptions", small=True)
        assert first is second

    def test_geometric_mean(self):
        assert common.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_capture_trace_has_all_threads(self):
        trace = common.capture_trace("blackscholes", small=True)
        assert set(trace.per_thread()) == {0, 1, 2, 3}

    def test_result_table_formatting(self):
        result = common.ExperimentResult("X", "desc")
        result.add("a", "w1", 1.0)
        result.add("a", "w2", 3.0)
        table = result.format_table()
        assert "w1" in table and "average" in table
        assert result.average("a") == 2.0


class TestTable1:
    def test_columns_and_workloads(self):
        result = table1.run(small=True)
        assert set(result.series) == {
            "precise_mpki", "instruction_variation", "paper_mpki"
        }
        assert set(result.series["precise_mpki"]) == set(ALL)

    def test_variation_is_small(self):
        result = table1.run(small=True)
        assert result.average("instruction_variation") < 0.25


class TestTable2:
    def test_matches_paper_constants(self):
        values = table2.run().series["value"]
        assert values["cores"] == 4
        assert values["l1_kb"] == 16
        assert values["l2_kb"] == 512
        assert values["memory_latency"] == 160
        assert values["approx_table_entries"] == 512
        assert values["confidence_min"] == -8
        assert values["confidence_max"] == 7
        assert values["lhb_entries"] == 4
        assert values["value_delay"] == 4


class TestFig4and5:
    def test_fig4_series_complete(self):
        result = fig4.run(small=True)
        assert len(result.series) == 8  # {LVP,LVA} x 4 GHB sizes
        for series in result.series.values():
            assert set(series) == set(ALL)

    def test_lva_beats_idealized_lvp_on_average(self):
        result = fig4.run(small=True)
        assert result.average("LVA-GHB-0") < result.average("LVP-GHB-0")

    def test_normalized_mpki_bounded(self):
        result = fig4.run(small=True)
        for series in result.series.values():
            for value in series.values():
                assert 0.0 <= value <= 1.1

    def test_fig5_errors_in_unit_interval(self):
        result = fig5.run(small=True)
        for series in result.series.values():
            for value in series.values():
                assert 0.0 <= value <= 1.0


class TestFig6:
    def test_window_relaxation_lowers_mpki(self):
        result = fig6.run(small=True)
        assert result.average("mpki-infinite") <= result.average("mpki-0%") + 1e-9

    def test_exact_window_has_near_zero_error(self):
        result = fig6.run(small=True)
        assert result.average("error-0%") <= result.average("error-infinite") + 1e-9


class TestFig7:
    def test_all_delays_measured(self):
        result = fig7.run(small=True)
        assert {f"mpki-delay-{d}" for d in (4, 8, 16, 32)} <= set(result.series)

    def test_resilient_to_delay(self):
        result = fig7.run(small=True)
        spread = abs(
            result.average("error-delay-32") - result.average("error-delay-4")
        )
        assert spread < 0.2


class TestFig8and9:
    def test_fetch_direction_split(self):
        result = fig8.run(small=True)
        # Prefetching fetches more than precise; LVA fetches less.
        assert result.average("prefetch-16-fetches") > 1.0
        assert result.average("approx-16-fetches") < 1.0

    def test_lva_fetches_fall_with_degree(self):
        result = fig8.run(small=True)
        assert result.average("approx-16-fetches") < result.average(
            "approx-2-fetches"
        )

    def test_fig9_error_bounded(self):
        result = fig9.run(small=True)
        for series in result.series.values():
            for value in series.values():
                assert 0.0 <= value <= 1.0


class TestFig10and11:
    def test_fig10_series_complete(self):
        result = fig10.run(small=True)
        assert "speedup-approx-0" in result.series
        assert "energy-approx-16" in result.series
        assert set(result.series["speedup-approx-0"]) == set(ALL)

    def test_degree16_saves_energy_vs_degree0(self):
        result = fig10.run(small=True)
        assert result.average("energy-approx-16") > result.average(
            "energy-approx-0"
        )

    def test_fig11_edp_improves_with_degree(self):
        result = fig11.run(small=True)
        assert result.average("approx-16") <= result.average("approx-0") + 1e-9
        for series in result.series.values():
            for value in series.values():
                assert value >= 0.0


class TestFig12and13:
    def test_pc_counts_small_and_x264_largest(self):
        result = fig12.run(small=True)
        counts = result.series["static_approx_pcs"]
        assert all(count < 512 for count in counts.values())
        assert counts["x264"] == max(counts.values())

    def test_fig13_rows(self):
        result = fig13.run(small=True)
        assert set(result.series["normalized_mpki"]) == {
            "drop-0", "drop-5", "drop-11", "drop-17", "drop-23"
        }

    def test_fig13_full_truncation_not_worse(self):
        result = fig13.run(small=True)
        series = result.series["normalized_mpki"]
        assert series["drop-23"] <= series["drop-0"] + 1e-9


class TestRunnerCLI:
    def test_known_experiment_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_registry_covers_every_table_and_figure(self):
        expected = {"table1", "table2"} | {f"fig{i}" for i in range(4, 14)}
        assert expected <= set(EXPERIMENTS)
        # ...plus the ablation studies.
        assert {
            "ablate-table-size",
            "ablate-lhb-size",
            "ablate-compute-fn",
            "ablate-int-confidence",
            "ablate-confidence-steps",
        } <= set(EXPERIMENTS)


class TestFig1:
    def test_summary_fields(self):
        from repro.experiments import fig1

        result = fig1.run(small=True)
        summary = result.series["summary"]
        assert 0.0 <= summary["output_error"] <= 1.0
        assert 0.0 <= summary["coverage"] <= 1.0
        assert "track_drift_px" in result.series

    def test_render_frames(self, tmp_path):
        from repro.experiments import fig1
        from repro.experiments.common import run_precise_reference
        from repro.sim.tracesim import Mode, TraceSimulator
        from repro.workloads.registry import get_workload

        reference = run_precise_reference("bodytrack", small=True)
        sim = TraceSimulator(Mode.LVA)
        approx = get_workload("bodytrack", small=True).execute(sim, 0)
        precise_path, approx_path = fig1.render_frames(
            reference.output, approx, str(tmp_path), small=True
        )
        for path in (precise_path, approx_path):
            content = open(path).read().splitlines()
            assert content[0] == "P2"


class TestSensitivity:
    def test_baseline_row_is_zero_delta(self):
        from repro.experiments import sensitivity

        result = sensitivity.run(small=True)
        assert result.series["mpki_delta"]["baseline"] == 0.0
        assert result.series["error_delta"]["baseline"] == 0.0

    def test_all_perturbations_present(self):
        from repro.experiments import sensitivity

        result = sensitivity.run(small=True)
        rows = set(result.series["mpki"])
        assert "confidence_window-low" in rows
        assert "approximation_degree-high" in rows

    def test_relaxed_window_reduces_mpki(self):
        from repro.experiments import sensitivity

        result = sensitivity.run(small=True)
        assert (
            result.series["mpki"]["confidence_window-high"]
            <= result.series["mpki"]["confidence_window-low"]
        )
