"""KeyboardInterrupt mid-sweep: clean shutdown, journal flush, resume."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _runner_env(cache_dir: Path, inject: str = "") -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_NO_CACHE", None)
    if inject:
        env["REPRO_INJECT"] = inject
    else:
        env.pop("REPRO_INJECT", None)
    return env


def _run_cli(args, env, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
        **kwargs,
    )


@pytest.mark.slow
class TestInterruptedSweep:
    def test_sigint_flushes_journal_and_resume_completes(self, tmp_path):
        """SIGINT a --jobs run stuck on an injected hang; the journal must
        hold the completed points, and --resume must recompute only the
        missing ones, converging to the uninterrupted table."""
        cache_dir = tmp_path / "cache"

        # The hang occupies one worker while the other finishes every
        # remaining point; the parent then blocks waiting on the hang.
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "fig13",
                "--small",
                "--jobs",
                "2",
            ],
            env=_runner_env(cache_dir, inject="hang:mantissa_drop_bits=23,seconds=300"),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            start_new_session=True,  # own process group: SIGINT hits only it
        )

        journal_dir = cache_dir / "journals"
        deadline = time.time() + 120
        journal_file = None
        try:
            # Wait until every non-hung point is journaled (5 of 6).
            while time.time() < deadline:
                files = list(journal_dir.glob("*.jsonl"))
                if files:
                    journal_file = files[0]
                    lines = [
                        l
                        for l in journal_file.read_text().splitlines()
                        if l.strip()
                    ]
                    if len(lines) >= 5:
                        break
                time.sleep(0.1)
            else:
                pytest.fail("journal never accumulated the healthy points")

            os.killpg(process.pid, signal.SIGINT)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
                process.communicate()

        assert process.returncode == 130, (stdout, stderr)
        assert "--resume" in stderr

        # Resume without the injected hang: recomputes only the hung point.
        resumed = _run_cli(
            ["fig13", "--small", "--resume"], _runner_env(cache_dir)
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed" in resumed.stdout
        assert "FAILED" not in resumed.stdout

        # And the resumed table equals a pristine uninterrupted run.
        pristine = _run_cli(
            ["fig13", "--small"], _runner_env(tmp_path / "cache2")
        )
        def table(text: str) -> str:
            start = text.index("== Figure 13")
            end = text.index("[fig13 completed")  # wall-clock suffix varies
            return text[start:end]

        assert table(resumed.stdout) == table(pristine.stdout)
