"""The run journal and checkpoint/resume (repro.experiments.journal)."""

from __future__ import annotations

import json
import math

import pytest

from repro import faults
from repro.experiments import common, diskcache, fig13
from repro.experiments.journal import NullJournal, RunJournal, run_id
from repro.experiments.sweep import SweepEngine


@pytest.fixture
def clean_caches(monkeypatch, tmp_path):
    """Disk cache in tmp_path, empty in-memory caches, fresh counters."""
    monkeypatch.delenv(diskcache.NO_CACHE_ENV, raising=False)
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.setattr(diskcache, "_DISABLED_OVERRIDE", False)
    monkeypatch.setattr(diskcache, "_ACTIVE", None)
    monkeypatch.setattr(diskcache, "_ACTIVE_DIR", None)
    monkeypatch.setattr(common, "COMPUTE_COUNTERS", common.ComputeCounters())
    saved_precise = dict(common._PRECISE_CACHE)
    saved_technique = dict(common._TECHNIQUE_CACHE)
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    yield
    faults.deactivate()
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    common._PRECISE_CACHE.update(saved_precise)
    common._TECHNIQUE_CACHE.update(saved_technique)


class TestRunId:
    def test_order_insensitive(self):
        assert run_id(["a", "b", "c"]) == run_id(["c", "a", "b"])

    def test_different_point_sets_differ(self):
        assert run_id(["a", "b"]) != run_id(["a", "b", "c"])


class TestRunJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_done("precise", "k1")
            journal.record_done("technique", "k2")
            journal.record_failed("technique", "k3", "RuntimeError", "boom", 2)

        reloaded = RunJournal(path, resume=True)
        assert reloaded.done == {"k1", "k2"}
        assert set(reloaded.failed) == {"k3"}
        reloaded.close()

    def test_done_after_failed_wins(self, tmp_path):
        """A --resume rerun that recomputes a failed point journals a
        done record for the same key; the replay must honour the latest."""
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_failed("technique", "k", "RuntimeError", "boom", 1)
            journal.record_done("technique", "k")
        reloaded = RunJournal(path, resume=True)
        assert reloaded.done == {"k"}
        assert not reloaded.failed
        reloaded.close()

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_done("technique", "k1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "kind": "tech')  # hard kill mid-write

        reloaded = RunJournal(path, resume=True)
        assert reloaded.done == {"k1"}
        reloaded.close()

    def test_mid_file_garbage_skipped_and_counted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_done("technique", "k1")
            journal.record_done("technique", "k2")
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + b"\x00\xffBINARY JUNK\n" + lines[1])
        reloaded = RunJournal(path, resume=True)
        assert reloaded.done == {"k1", "k2"}
        assert reloaded.corrupt_lines == 1 and not reloaded.torn_tail
        reloaded.close()

    def test_checksum_mismatch_line_is_rejected(self, tmp_path):
        """A record that parses as JSON but fails its CRC (bit rot, or a
        hand-edited journal) must not be resurrected into bookkeeping."""
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_done("technique", "k1")
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace('"k1"', '"kX"'), encoding="utf-8")
        reloaded = RunJournal(path, resume=True)
        assert reloaded.done == set()
        assert reloaded.corrupt_lines == 1
        reloaded.close()

    def test_fresh_run_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_done("technique", "k1")
        with RunJournal(path, resume=False) as journal:
            pass
        assert path.read_text() == ""

    def test_unwritable_location_warns_once_and_noops(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory is needed")
        with pytest.warns(RuntimeWarning, match="journal unavailable"):
            journal = RunJournal(blocker / "sub" / "run.jsonl")
        # Records are dropped silently after the single warning.
        journal.record_done("technique", "k1")
        journal.record_failed("technique", "k2", "E", "m", 1)
        journal.close()

    def test_interleaved_writers_from_two_processes(self, tmp_path):
        """Two pids appending to the same journal must interleave without
        tearing: every record survives intact (one O_APPEND write per
        sealed line) and the replay sees each point exactly once."""
        import os as _os
        import subprocess
        import sys
        from pathlib import Path

        path = tmp_path / "run.jsonl"
        repo_src = Path(__file__).resolve().parents[2] / "src"
        child = (
            "import sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.experiments.journal import RunJournal\n"
            "with RunJournal(sys.argv[2], resume=True) as journal:\n"
            "    for i in range(50):\n"
            "        journal.record_done('technique', f'{sys.argv[3]}-{i}')\n"
        )
        env = dict(_os.environ)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", child, str(repo_src), str(path), prefix],
                env=env,
            )
            for prefix in ("a", "b")
        ]
        assert [p.wait(timeout=60) for p in procs] == [0, 0]

        reloaded = RunJournal(path, resume=True)
        assert reloaded.done == {f"{p}-{i}" for p in "ab" for i in range(50)}
        assert reloaded.corrupt_lines == 0 and not reloaded.torn_tail
        assert reloaded.recovered_lines == 100  # no duplicates, no losses
        reloaded.close()

    def test_null_journal_is_inert(self):
        journal = NullJournal()
        journal.record_done("technique", "k")
        journal.record_failed("technique", "k", "E", "m", 1)
        assert journal.done == frozenset()
        journal.close()


class TestEngineResume:
    def test_interrupted_run_resumes_only_missing_points(self, clean_caches):
        """Acceptance: a run with one FAILED point, rerun with resume=True,
        recomputes exactly the missing point and completes the table."""
        faults.activate("raise:mantissa_drop_bits=11")
        first = SweepEngine(jobs=1).execute(fig13.points(small=True))
        assert len(first.failures) == 1
        faults.deactivate()

        # A fresh process would start with cold in-memory caches (but the
        # disk cache and journal survive).
        common._PRECISE_CACHE.clear()
        common._TECHNIQUE_CACHE.clear()
        common._TRACE_CACHE.clear()

        second = SweepEngine(jobs=1, resume=True).execute(fig13.points(small=True))
        assert not second.failures
        assert second.resumed_points == 5  # 1 baseline + 4 healthy points
        assert second.technique_computed == 1  # only the previously failed one

        table = fig13.run(small=True)
        assert not any(
            math.isnan(v) for v in table.series["normalized_mpki"].values()
        )

    def test_resumed_table_is_bitwise_identical(self, clean_caches):
        faults.activate("raise:mantissa_drop_bits=11")
        SweepEngine(jobs=1).execute(fig13.points(small=True))
        faults.deactivate()
        common._PRECISE_CACHE.clear()
        common._TECHNIQUE_CACHE.clear()
        common._TRACE_CACHE.clear()
        SweepEngine(jobs=1, resume=True).execute(fig13.points(small=True))
        resumed = fig13.run(small=True)

        # Uninterrupted run on pristine caches, different directory.
        import os

        os.environ[diskcache.CACHE_DIR_ENV] = os.environ[diskcache.CACHE_DIR_ENV] + "2"
        diskcache._ACTIVE = None
        common._PRECISE_CACHE.clear()
        common._TECHNIQUE_CACHE.clear()
        common._TRACE_CACHE.clear()
        SweepEngine(jobs=1).execute(fig13.points(small=True))
        pristine = fig13.run(small=True)

        assert resumed.series == pristine.series

    def test_resume_after_torn_journal_tail_recomputes_once(self, clean_caches):
        """A torn final line (hard kill mid-append) loses exactly that
        point's record; --resume recomputes it once, never duplicates."""
        SweepEngine(jobs=1).execute(fig13.points(small=True))
        journals = list((diskcache.default_cache_dir() / "journals").glob("*.jsonl"))
        assert len(journals) == 1
        blob = journals[0].read_bytes()
        lines = blob.splitlines(keepends=True)
        journals[0].write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])

        common._PRECISE_CACHE.clear()
        common._TECHNIQUE_CACHE.clear()
        common._TRACE_CACHE.clear()
        second = SweepEngine(jobs=1, resume=True).execute(fig13.points(small=True))
        assert not second.failures
        assert second.resumed_points == 5  # all but the torn record
        records = [
            json.loads(line)
            for line in journals[0].read_text().splitlines()
            if line.strip()
        ]
        done_keys = [r["key"] for r in records if r.get("event") == "done"]
        assert len(done_keys) == len(set(done_keys))  # no duplicated points

    def test_journal_written_next_to_cache(self, clean_caches):
        SweepEngine(jobs=1).execute(fig13.points(small=True))
        journals = list((diskcache.default_cache_dir() / "journals").glob("*.jsonl"))
        assert len(journals) == 1
        records = [
            json.loads(line)
            for line in journals[0].read_text().splitlines()
            if line.strip()
        ]
        assert len(records) == 6  # 1 baseline + 5 technique points
        assert {r["event"] for r in records} == {"done"}

    def test_no_cache_run_journals_nothing(self, monkeypatch, tmp_path):
        """With the disk layer off the engine must not scribble journals
        into the user's home directory."""
        monkeypatch.setenv(diskcache.NO_CACHE_ENV, "1")
        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "nope"))
        saved_precise = dict(common._PRECISE_CACHE)
        saved_technique = dict(common._TECHNIQUE_CACHE)
        common._PRECISE_CACHE.clear()
        common._TECHNIQUE_CACHE.clear()
        try:
            SweepEngine(jobs=1).execute(fig13.points(small=True))
            assert not (tmp_path / "nope").exists()
        finally:
            common._PRECISE_CACHE.clear()
            common._TECHNIQUE_CACHE.clear()
            common._PRECISE_CACHE.update(saved_precise)
            common._TECHNIQUE_CACHE.update(saved_technique)
