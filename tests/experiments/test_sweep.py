"""The point-level sweep engine (repro.experiments.sweep)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import ApproximatorConfig
from repro.experiments import common, diskcache, fig4, fig12, fig13, runner
from repro.experiments.sweep import (
    SweepEngine,
    SweepPoint,
    precise_point,
    technique_point,
)
from repro.sim.tracesim import Mode


@pytest.fixture
def clean_caches(monkeypatch, tmp_path):
    """Disk cache in tmp_path, empty in-memory caches, fresh counters."""
    monkeypatch.delenv(diskcache.NO_CACHE_ENV, raising=False)
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.setattr(diskcache, "_DISABLED_OVERRIDE", False)
    monkeypatch.setattr(diskcache, "_ACTIVE", None)
    monkeypatch.setattr(diskcache, "_ACTIVE_DIR", None)
    monkeypatch.setattr(common, "COMPUTE_COUNTERS", common.ComputeCounters())
    saved_precise = dict(common._PRECISE_CACHE)
    saved_technique = dict(common._TECHNIQUE_CACHE)
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    yield
    common._PRECISE_CACHE.clear()
    common._TECHNIQUE_CACHE.clear()
    common._PRECISE_CACHE.update(saved_precise)
    common._TECHNIQUE_CACHE.update(saved_technique)


class TestSweepPoint:
    def test_technique_point_matches_run_technique_key(self):
        point = technique_point(
            "canneal", Mode.LVA, ApproximatorConfig(ghb_size=2), small=True
        )
        assert point.is_technique
        assert point.params == ()
        assert point.baseline() == precise_point("canneal", small=True)

    def test_points_dedupe_across_experiments(self):
        """Figures 4 and 5 share every LVA point; dedup must collapse them."""
        pts = fig4.points(small=True) + fig4.points(small=True)
        assert len(dict.fromkeys(pts)) == len(fig4.points(small=True))

    def test_params_are_order_insensitive(self):
        a = technique_point("canneal", Mode.LVA, params={"x": 1, "y": 2})
        b = technique_point("canneal", Mode.LVA, params={"y": 2, "x": 1})
        assert a == b


class TestDeterministicBackoff:
    """Retry backoff jitter is a pure function of (seed, key, attempt) —
    schedule-independent, so a resumed/parallel run never perturbs it."""

    def test_same_inputs_same_delay(self):
        a = SweepEngine(jobs=1, backoff_base=0.1, jitter_seed=7)
        b = SweepEngine(jobs=4, backoff_base=0.1, jitter_seed=7)
        for attempt in (1, 2, 3):
            assert a._backoff_delay(attempt, "k") == b._backoff_delay(attempt, "k")

    def test_delay_varies_with_seed_key_and_attempt(self):
        engine = SweepEngine(jobs=1, backoff_base=0.1, jitter_seed=7)
        other = SweepEngine(jobs=1, backoff_base=0.1, jitter_seed=8)
        assert engine._backoff_delay(1, "k") != other._backoff_delay(1, "k")
        assert engine._backoff_delay(1, "k") != engine._backoff_delay(1, "k2")
        assert engine._backoff_delay(1, "k") != engine._backoff_delay(2, "k")

    def test_delay_within_jitter_band_and_capped(self):
        engine = SweepEngine(
            jobs=1, backoff_base=0.1, backoff_cap=1.0, jitter_seed=3
        )
        for attempt in range(1, 10):
            nominal = min(1.0, 0.1 * 2 ** (attempt - 1))
            delay = engine._backoff_delay(attempt, f"key-{attempt}")
            assert 0.5 * nominal <= delay < 1.5 * nominal

    def test_independent_of_call_order(self):
        engine = SweepEngine(jobs=1, backoff_base=0.1, jitter_seed=5)
        forward = [engine._backoff_delay(n, "k") for n in (1, 2, 3)]
        fresh = SweepEngine(jobs=1, backoff_base=0.1, jitter_seed=5)
        backward = [fresh._backoff_delay(n, "k") for n in (3, 2, 1)]
        assert forward == backward[::-1]


class TestSerialEngine:
    def test_fig13_equivalent_to_driver_alone(self, clean_caches):
        """A table built after a sweep is bitwise-identical to one built
        by the driver alone on cold caches."""
        expected = fig13.run(small=True)
        common._PRECISE_CACHE.clear()
        common._TECHNIQUE_CACHE.clear()
        common.reset_caches()

        report = SweepEngine(jobs=1).execute(fig13.points(small=True))
        swept = fig13.run(small=True)

        assert dataclasses.asdict(swept) == dataclasses.asdict(expected)
        assert report.unique_points == 5
        assert report.unique_baselines == 1
        assert report.precise_computed == 1
        assert report.technique_computed == 5

    def test_fig4_equivalent_to_driver_alone(self, clean_caches):
        """The acceptance point: Figure 4 through the engine + disk cache
        is bitwise-identical to the driver computing everything itself."""
        expected = fig4.run(small=True)
        common.reset_caches()

        report = SweepEngine(jobs=1).execute(fig4.points(small=True))
        swept = fig4.run(small=True)

        assert dataclasses.asdict(swept) == dataclasses.asdict(expected)
        assert report.precise_computed == report.unique_baselines == 7
        assert report.technique_computed == report.unique_points == 56

    def test_driver_rerun_is_pure_cache_hits(self, clean_caches):
        SweepEngine(jobs=1).execute(fig13.points(small=True))
        before = common.COMPUTE_COUNTERS.as_dict()
        fig13.run(small=True)
        after = common.COMPUTE_COUNTERS.as_dict()
        assert after["precise_computed"] == before["precise_computed"]
        assert after["technique_computed"] == before["technique_computed"]


class TestParallelEngine:
    def test_exactly_once_across_workers(self, clean_caches):
        """Every baseline and every technique point is computed exactly
        once across the worker pool, never per-worker."""
        points = fig12.points(small=True) + fig13.points(small=True)
        unique = list(dict.fromkeys(points))
        baselines = set(p.baseline() for p in unique)

        report = SweepEngine(jobs=2).execute(points)

        assert report.unique_points == len(unique)
        assert report.unique_baselines == len(baselines)
        assert report.precise_computed == len(baselines)
        assert report.technique_computed == len(unique)

    def test_backfill_makes_driver_rerun_free(self, clean_caches):
        SweepEngine(jobs=2).execute(fig13.points(small=True))
        before = common.COMPUTE_COUNTERS.as_dict()
        result = fig13.run(small=True)
        after = common.COMPUTE_COUNTERS.as_dict()
        assert after["precise_computed"] == before["precise_computed"]
        assert after["technique_computed"] == before["technique_computed"]
        assert result.series  # the table really was assembled

    def test_parallel_equivalent_to_serial(self, clean_caches):
        serial = fig13.run(small=True)
        common._PRECISE_CACHE.clear()
        common._TECHNIQUE_CACHE.clear()
        common.reset_caches()
        SweepEngine(jobs=2).execute(fig13.points(small=True))
        parallel = fig13.run(small=True)
        assert dataclasses.asdict(parallel) == dataclasses.asdict(serial)


class TestRunnerIntegration:
    def test_every_swept_experiment_declares_points(self):
        for name, declare in runner.POINTS.items():
            pts = declare(small=True, seed=0)
            assert pts, name
            assert all(isinstance(p, SweepPoint) for p in pts), name

    def test_gather_points_honours_repeats(self):
        single = runner.gather_points(["fig13"], small=True, seed=0, repeats=1)
        double = runner.gather_points(["fig13"], small=True, seed=0, repeats=2)
        assert len(double) == 2 * len(single)
        seeds = {p.seed for p in double}
        assert seeds == {0, 1}

    def test_unswept_experiments_have_no_points(self):
        for name in ("table2", "ablate-noc-model"):
            assert name in runner.EXPERIMENTS
            assert name not in runner.POINTS

    def test_fullsystem_experiments_declare_points(self):
        for name in ("fig10", "fig11"):
            assert name in runner.POINTS
            pts = runner.POINTS[name](small=True, seed=0)
            assert pts and all(p.is_fullsystem for p in pts), name
