"""Tests for cached full-system points and their sweep-engine integration."""

from __future__ import annotations

import math

import pytest

from repro.core.config import ApproximatorConfig
from repro.experiments import common, diskcache, sweep, tracestore
from repro.experiments.sweep import SweepEngine, fullsystem_point
from repro.fullsystem import FullSystemResult


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.delenv(diskcache.NO_CACHE_ENV, raising=False)
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
    return tmp_path


@pytest.fixture(autouse=True)
def _fresh_caches():
    common._TRACE_CACHE.clear()
    common._FULLSYSTEM_CACHE.clear()
    yield
    common._TRACE_CACHE.clear()
    common._FULLSYSTEM_CACHE.clear()


class TestRunFullSystemPoint:
    def test_memory_cache_returns_identical_object(self):
        first = common.run_fullsystem_point("swaptions", small=True)
        second = common.run_fullsystem_point("swaptions", small=True)
        assert first is second

    def test_disk_cache_round_trip(self, cache_dir):
        first = common.run_fullsystem_point("swaptions", small=True)
        common._FULLSYSTEM_CACHE.clear()
        common._TRACE_CACHE.clear()
        before = common.COMPUTE_COUNTERS.fullsystem_disk_hits
        second = common.run_fullsystem_point("swaptions", small=True)
        assert common.COMPUTE_COUNTERS.fullsystem_disk_hits == before + 1
        assert second.cycles == first.cycles
        assert second.energy == first.energy

    def test_approximate_point_differs_from_baseline_key(self):
        baseline = common.run_fullsystem_point("swaptions", small=True)
        lva = common.run_fullsystem_point(
            "swaptions",
            approximate=True,
            approximator=ApproximatorConfig(approximation_degree=4),
            small=True,
        )
        assert baseline is not lva

    def test_failed_result_renders_as_nan(self):
        failed = common.failed_fullsystem_result("boom")
        assert failed.failure == "boom"
        assert math.isnan(failed.cycles)
        assert common.is_failed(failed)
        assert not common.is_failed(common.run_fullsystem_point("swaptions", small=True))


class TestFullSystemPoints:
    def test_point_shape(self):
        p = fullsystem_point("canneal", small=True)
        assert p.is_fullsystem and not p.is_technique
        assert p.approximate is False
        assert "fullsystem-baseline" in p.describe()
        lva = fullsystem_point(
            "canneal", ApproximatorConfig(approximation_degree=2), small=True
        )
        assert lva.approximate is True
        assert "fullsystem-lva" in lva.describe()

    def test_execute_point_dispatches_fullsystem(self):
        result = sweep.execute_point(fullsystem_point("swaptions", small=True))
        assert isinstance(result, FullSystemResult)
        assert result.failure is None


class TestEngineIntegration:
    def points(self):
        pts = []
        for name in ("swaptions", "canneal"):
            pts.append(fullsystem_point(name, small=True))
            pts.append(
                fullsystem_point(
                    name, ApproximatorConfig(approximation_degree=4), small=True
                )
            )
        return pts

    def test_serial_engine_computes_fullsystem_points(self, cache_dir):
        report = SweepEngine(jobs=1).execute(self.points())
        assert report.unique_points == 4
        assert report.fullsystem_computed == 4
        assert report.unique_baselines == 0
        assert not report.failures
        # Pre-capture wave: one capture per workload, shared by both points.
        assert report.traces_captured == 2
        assert "replays" in report.summary()

    def test_warm_store_skips_all_captures(self, cache_dir):
        cold = SweepEngine(jobs=1).execute(self.points())
        assert cold.traces_captured == 2

        # New process simulation: drop every in-process layer and the
        # replay *result* cache, but keep the trace store.
        common._TRACE_CACHE.clear()
        common._FULLSYSTEM_CACHE.clear()
        disk = diskcache.active_cache()
        assert disk is not None
        disk.clear()

        warm = SweepEngine(jobs=1).execute(self.points())
        assert warm.traces_captured == 0, "warm store must not re-capture"
        assert warm.trace_store_hits >= 1
        assert warm.fullsystem_computed == 4
        assert not warm.failures

    def test_results_identical_across_cold_and_warm(self, cache_dir):
        SweepEngine(jobs=1).execute(self.points())
        cold = common.run_fullsystem_point("swaptions", small=True)

        common._TRACE_CACHE.clear()
        common._FULLSYSTEM_CACHE.clear()
        diskcache.active_cache().clear()

        SweepEngine(jobs=1).execute(self.points())
        warm = common.run_fullsystem_point("swaptions", small=True)
        assert warm.cycles == cold.cycles
        assert warm.total_miss_latency == cold.total_miss_latency
        assert warm.energy == cold.energy

    def test_no_store_still_computes(self):
        # Caching disabled entirely (conftest sets REPRO_NO_CACHE): no
        # capture tasks are scheduled, workers capture privately.
        report = SweepEngine(jobs=1).execute(self.points())
        assert report.fullsystem_computed == 4
        assert report.trace_store_hits == 0
        assert not report.failures

    def test_fig10_points_cover_every_workload_and_degree(self):
        from repro.experiments import fig10

        pts = fig10.DRIVER.points(small=True)
        workloads = {p.workload for p in pts}
        assert workloads == set(common.BASELINE_WORKLOADS)
        assert all(p.is_fullsystem for p in pts)
        per_workload = len(fig10.DEGREES) + 1  # degrees + precise baseline
        assert len(pts) == per_workload * len(common.BASELINE_WORKLOADS)

    def test_fig11_points_align_with_fig10_shape(self):
        from repro.experiments import fig10, fig11

        assert len(fig11.DRIVER.points(small=True)) == len(
            fig10.DRIVER.points(small=True)
        )
