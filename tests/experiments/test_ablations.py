"""Smoke tests for the ablation drivers (small scale)."""

import pytest

from repro.experiments import ablations, common


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    common.reset_caches()
    yield
    common.reset_caches()


class TestTableSize:
    def test_all_sizes_present(self):
        result = ablations.table_size(small=True)
        assert set(result.series) == {f"entries-{n}" for n in (32, 64, 128, 256, 512)}

    def test_small_tables_close_to_baseline(self):
        """Section VII-A: few static PCs means small tables barely hurt."""
        result = ablations.table_size(small=True)
        assert result.average("entries-128") <= result.average("entries-512") + 0.15


class TestLHBSize:
    def test_series_present(self):
        result = ablations.lhb_size(small=True)
        assert "mpki-lhb-4" in result.series
        assert "error-lhb-1" in result.series

    def test_values_bounded(self):
        result = ablations.lhb_size(small=True)
        for series in result.series.values():
            for value in series.values():
                assert 0.0 <= value <= 1.2


class TestComputeFunction:
    def test_all_functions_swept(self):
        result = ablations.compute_function(small=True)
        for fn in ("average", "last", "stride", "delta"):
            assert f"mpki-{fn}" in result.series
            assert f"error-{fn}" in result.series


class TestIntConfidence:
    def test_only_integer_workloads(self):
        result = ablations.int_confidence(small=True)
        assert set(result.series["mpki-confidence"]) == {
            "bodytrack", "canneal", "x264"
        }

    def test_confidence_gating_cannot_increase_coverage(self):
        result = ablations.int_confidence(small=True)
        # With gating on, effective MPKI is >= the ungated case.
        for name in ("bodytrack", "canneal", "x264"):
            assert (
                result.series["mpki-confidence"][name]
                >= result.series["mpki-no-confidence"][name] - 0.02
            )


class TestConfidenceSteps:
    def test_all_steps_swept(self):
        result = ablations.confidence_steps(small=True)
        assert {f"mpki-step-{s}" for s in (1, 2, 4)} <= set(result.series)

    def test_errors_bounded(self):
        result = ablations.confidence_steps(small=True)
        for label, series in result.series.items():
            if label.startswith("error"):
                for value in series.values():
                    assert 0.0 <= value <= 1.0


class TestNocCalibration:
    def test_models_agree_at_low_load(self):
        from repro.experiments import noc_calibration

        result = noc_calibration.run(small=True)
        fast = result.series["fast_latency"]
        detailed = result.series["detailed_latency"]
        assert set(fast) == set(detailed)
        for label in fast:
            # Within 2x of each other at every low-load point.
            ratio = detailed[label] / max(fast[label], 1e-9)
            assert 0.5 < ratio < 2.0, label

    def test_latencies_positive(self):
        from repro.experiments import noc_calibration

        result = noc_calibration.run(small=True)
        for series in result.series.values():
            for value in series.values():
                assert value > 0
