"""Tests for paper-expectation verification, averaging and charts."""

import pytest

from repro.experiments import table2
from repro.experiments.common import ExperimentResult, averaged
from repro.experiments.expectations import EXPECTATIONS, verify


def fake_fig6(good: bool) -> ExperimentResult:
    result = ExperimentResult("Figure 6", "fake")
    for workload in ("a", "b"):
        result.add("mpki-0%", workload, 0.95)
        result.add("mpki-infinite", workload, 0.30 if good else 0.99)
        result.add("error-0%", workload, 0.001)
        result.add("error-infinite", workload, 0.08 if good else 0.0)
    return result


class TestVerify:
    def test_good_shape_passes(self):
        report = verify("fig6", fake_fig6(good=True))
        assert report.ok
        assert len(report.passed) == 2

    def test_bad_shape_fails_with_claims_listed(self):
        report = verify("fig6", fake_fig6(good=False))
        assert not report.ok
        assert len(report.failed) == 2
        assert "window" in report.failed[0]

    def test_missing_series_counts_as_failure(self):
        report = verify("fig6", ExperimentResult("Figure 6", "empty"))
        assert not report.ok

    def test_unknown_experiment_trivially_ok(self):
        report = verify("table2", ExperimentResult("Table II", "x"))
        assert report.ok

    def test_every_figure_has_expectations(self):
        for name in ("table1",) + tuple(f"fig{i}" for i in range(4, 14)):
            assert EXPECTATIONS.get(name), name

    def test_report_format(self):
        text = verify("fig6", fake_fig6(good=True)).format()
        assert "[ok]" in text and "fig6" in text


class TestAveraged:
    def test_averages_across_seeds(self):
        calls = []

        def driver(small=False, seed=0):
            calls.append(seed)
            result = ExperimentResult("X", "d")
            result.add("v", "w", float(seed))
            return result

        merged = averaged(driver, repeats=3, seed=10)
        assert calls == [10, 11, 12]
        assert merged.series["v"]["w"] == pytest.approx(11.0)
        assert "mean of 3 seeds" in merged.description

    def test_single_repeat_equivalent(self):
        merged = averaged(lambda small=False, seed=0: table2.run(), repeats=1)
        assert merged.series["value"]["cores"] == 4

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError):
            averaged(lambda **kw: None, repeats=0)


class TestFormatChart:
    def test_bars_scale_to_peak(self):
        result = ExperimentResult("X", "d")
        result.add("v", "big", 2.0)
        result.add("v", "half", 1.0)
        chart = result.format_chart("v", bar_width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_negative_values_signed(self):
        result = ExperimentResult("X", "d")
        result.add("v", "loss", -0.5)
        chart = result.format_chart("v")
        assert "-0.5000" in chart

    def test_empty_series(self):
        result = ExperimentResult("X", "d")
        result.series["v"] = {}
        assert "(empty)" in result.format_chart("v")


class TestRunnerParallel:
    def test_jobs_flag_produces_same_tables(self, capsys):
        from repro.experiments.runner import main

        assert main(["table2", "fig12", "--small", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert "Table II" in parallel_out
        assert "Figure 12" in parallel_out
