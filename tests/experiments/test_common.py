"""Tests for the shared experiment infrastructure."""

import pytest

from repro.experiments import common
from repro.experiments.common import (
    PHASE2_PARAMS,
    run_fullsystem,
    run_precise_reference,
    run_technique,
)
from repro.sim.tracesim import Mode


@pytest.fixture(autouse=True)
def _fresh():
    common.reset_caches()
    yield
    common.reset_caches()


class TestPreciseReference:
    def test_fields_populated(self):
        ref = run_precise_reference("swaptions", small=True)
        assert ref.instructions > 0
        assert ref.mpki >= 0
        assert ref.output is not None

    def test_params_key_cache_separation(self):
        a = run_precise_reference("swaptions", small=True)
        b = run_precise_reference(
            "swaptions", small=True, params={"n_swaptions": 8}
        )
        assert a is not b

    def test_seed_cache_separation(self):
        a = run_precise_reference("swaptions", seed=0, small=True)
        b = run_precise_reference("swaptions", seed=1, small=True)
        assert a is not b


class TestRunTechnique:
    def test_precise_mode_is_identity(self):
        result = run_technique("swaptions", Mode.PRECISE, small=True)
        assert result.normalized_mpki == pytest.approx(1.0)
        assert result.normalized_fetches == pytest.approx(1.0)
        assert result.output_error == 0.0
        assert result.instruction_variation == 0.0

    def test_lva_fields(self):
        result = run_technique("canneal", Mode.LVA, small=True)
        assert 0 <= result.normalized_mpki <= 1.1
        assert 0 <= result.coverage <= 1
        assert result.static_approx_pcs > 0
        assert "mpki" in result.raw


class TestPhase2Params:
    def test_overrides_are_known_parameters(self):
        from repro.workloads.registry import get_workload

        for name, params in PHASE2_PARAMS.items():
            workload = get_workload(name, params)  # raises on unknown keys
            for key, value in params.items():
                assert workload.params[key] == value

    def test_trace_capture_uses_overrides(self):
        trace = common.capture_trace("canneal", small=True)
        assert len(trace) > 0


class TestRunFullsystem:
    def test_baseline_and_lva(self):
        trace = common.capture_trace("blackscholes", small=True)
        base = run_fullsystem(trace)
        lva = run_fullsystem(trace, approximate=True)
        assert base.loads == lva.loads
