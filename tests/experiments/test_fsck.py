"""lva-fsck: scan verdicts, repair semantics, CLI contract."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.experiments import diskcache, fsck, integrity, tracestore
from repro.experiments.journal import RunJournal
from repro.faults import fsfaults
from repro.faults.memory import INJECT_ENV
from repro.sim.trace import LoadEvent, Trace

GOOD = "ab" + "0" * 62
BAD = "cd" + "0" * 62


@pytest.fixture(autouse=True)
def _hermetic(monkeypatch):
    monkeypatch.delenv(INJECT_ENV, raising=False)
    fsfaults.reset_counters()
    integrity.reset_warnings()
    yield
    fsfaults.reset_counters()
    integrity.reset_warnings()


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.delenv(diskcache.NO_CACHE_ENV, raising=False)
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
    return tmp_path


def sample_trace(n: int = 5) -> Trace:
    return Trace(
        [
            LoadEvent(
                tid=i % 2,
                pc=0x400 + 4 * i,
                addr=0x1000 + 64 * i,
                value=i,
                is_float=False,
                approximable=bool(i % 2),
                gap=i,
                is_store=False,
            )
            for i in range(n)
        ]
    )


def _flip_tail(path, offset_from_end=3):
    blob = bytearray(path.read_bytes())
    blob[-offset_from_end] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestScanVerdicts:
    def test_clean_store_is_all_ok(self, cache_dir):
        cache = diskcache.DiskCache(directory=cache_dir)
        cache.put(GOOD, {"v": 1})
        store = tracestore.TraceStore(directory=cache_dir / "traces")
        store.put(GOOD, sample_trace().pack())
        with RunJournal(cache_dir / "journals" / "r.jsonl") as journal:
            journal.record_done("technique", "k")
        report = fsck.scan(cache_dir)
        assert report.counts() == {"ok": 3}
        assert not report.problems

    def test_detects_every_injected_cache_corruption(self, cache_dir, monkeypatch):
        """100% detection over the write-fault matrix (acceptance)."""
        cache = diskcache.DiskCache(directory=cache_dir)
        specs = {
            "11" + "0" * 62: "torn:target=cache",
            "22" + "0" * 62: "fsync:target=cache,frac=0.3",
            "33" + "0" * 62: "corrupt:target=cache",
            "44" + "0" * 62: "trunc:target=cache",
        }
        for key, spec in specs.items():
            monkeypatch.setenv(INJECT_ENV, spec)
            fsfaults.reset_counters()
            cache.put(key, {"k": key})
        monkeypatch.delenv(INJECT_ENV)
        report = fsck.scan(cache_dir)
        corrupt = [f for f in report.findings if f.verdict == "corrupt"]
        assert len(corrupt) == len(specs)

    def test_detects_every_injected_trace_corruption(self, cache_dir, monkeypatch):
        store = tracestore.TraceStore(directory=cache_dir / "traces")
        packed = sample_trace().pack()
        specs = {
            "11" + "0" * 62: "torn:target=trace,op=column.write",
            "22" + "0" * 62: "corrupt:target=trace,op=column.write",
            "33" + "0" * 62: "torn:target=trace,op=meta.write",
            "44" + "0" * 62: "trunc:target=trace,path=.npy",
        }
        for key, spec in specs.items():
            monkeypatch.setenv(INJECT_ENV, spec)
            fsfaults.reset_counters()
            store.put(key, packed)
        monkeypatch.delenv(INJECT_ENV)
        report = fsck.scan(cache_dir)
        corrupt = [f for f in report.findings if f.verdict == "corrupt"]
        assert len(corrupt) == len(specs)

    def test_legacy_raw_pickle_is_schema_mismatch(self, cache_dir):
        path = cache_dir / BAD[:2] / f"{BAD}.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"old": "v1 entry"}))
        report = fsck.scan(cache_dir)
        assert [f.verdict for f in report.findings] == ["schema-mismatch"]

    def test_orphaned_tmp_file_and_dir(self, cache_dir):
        (cache_dir / "ab").mkdir(parents=True)
        (cache_dir / "ab" / ".g99-1.zzz.tmp").write_bytes(b"debris")
        tmpdir = cache_dir / "traces" / "ab" / ".abcd1234-g99-2-x.tmp"
        tmpdir.mkdir(parents=True)
        (tmpdir / "addr.npy").write_bytes(b"partial")
        report = fsck.scan(cache_dir)
        assert sorted(f.verdict for f in report.findings) == ["orphaned-tmp", "orphaned-tmp"]

    def test_stale_trace_schema_is_schema_mismatch(self, cache_dir):
        store = tracestore.TraceStore(directory=cache_dir / "traces")
        store.put(GOOD, sample_trace().pack())
        meta_path = store._entry_dir(GOOD) / tracestore.META_NAME
        meta = json.loads(meta_path.read_text())
        meta["trace_schema"] = tracestore.TRACE_SCHEMA_VERSION - 1
        meta_path.write_text(json.dumps(integrity.seal_record(meta)))
        report = fsck.scan(cache_dir)
        assert [f.verdict for f in report.findings] == ["schema-mismatch"]

    def test_journal_mid_file_garbage_is_corrupt_torn_tail_is_ok(self, cache_dir):
        with RunJournal(cache_dir / "journals" / "a.jsonl") as journal:
            journal.record_done("technique", "k1")
            journal.record_done("technique", "k2")
        path = cache_dir / "journals" / "a.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + b"NOT JSON\n" + lines[1])
        with RunJournal(cache_dir / "journals" / "b.jsonl") as journal:
            journal.record_done("technique", "k1")
        with open(cache_dir / "journals" / "b.jsonl", "ab") as handle:
            handle.write(b'{"event": "done", "ki')  # torn tail
        verdicts = {f.path.name: f.verdict for f in fsck.scan(cache_dir).findings}
        assert verdicts == {"a.jsonl": "corrupt", "b.jsonl": "ok"}

    def test_quarantine_subtree_is_skipped(self, cache_dir):
        bad = cache_dir / integrity.QUARANTINE_DIR / "cache" / "x.pkl"
        bad.parent.mkdir(parents=True)
        bad.write_bytes(b"garbage")
        assert fsck.scan(cache_dir).findings == []


class TestRepair:
    def test_repair_quarantines_and_store_scans_clean(self, cache_dir, monkeypatch):
        cache = diskcache.DiskCache(directory=cache_dir)
        cache.put(GOOD, {"v": 1})
        monkeypatch.setenv(INJECT_ENV, "corrupt:target=cache")
        fsfaults.reset_counters()
        cache.put(BAD, {"v": 2})
        monkeypatch.delenv(INJECT_ENV)

        report = fsck.scan(cache_dir)
        fsck.repair(report, cache_dir)
        assert all(f.action.startswith("quarantined") for f in report.problems)
        assert not fsck.scan(cache_dir).problems
        # the good entry survived, the bad one is preserved as evidence
        assert cache.get(GOOD) == {"v": 1}
        assert (cache_dir / integrity.QUARANTINE_DIR / "cache" / f"{BAD}.pkl").exists()

    def test_repair_rewrites_journal_keeping_valid_lines(self, cache_dir):
        path = cache_dir / "journals" / "a.jsonl"
        with RunJournal(path) as journal:
            journal.record_done("technique", "k1")
            journal.record_done("technique", "k2")
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + b"MID-FILE GARBAGE\n" + lines[1])

        report = fsck.scan(cache_dir)
        fsck.repair(report, cache_dir)
        reloaded = RunJournal(path, resume=True)
        assert reloaded.done == {"k1", "k2"}
        assert reloaded.corrupt_lines == 0  # garbage gone for good
        reloaded.close()

    def test_delete_removes_instead_of_quarantining(self, cache_dir, monkeypatch):
        monkeypatch.setenv(INJECT_ENV, "torn:target=trace,op=meta.write")
        fsfaults.reset_counters()
        store = tracestore.TraceStore(directory=cache_dir / "traces")
        store.put(BAD, sample_trace().pack())
        monkeypatch.delenv(INJECT_ENV)

        report = fsck.scan(cache_dir)
        fsck.repair(report, cache_dir, delete=True)
        assert [f.action for f in report.problems] == ["deleted"]
        assert not (cache_dir / integrity.QUARANTINE_DIR).exists()
        assert not fsck.scan(cache_dir).problems


class TestCli:
    def test_clean_store_exits_zero(self, cache_dir, capsys):
        diskcache.DiskCache(directory=cache_dir).put(GOOD, {"v": 1})
        assert fsck.main(["--cache-dir", str(cache_dir)]) == 0
        assert "1 ok" in capsys.readouterr().out

    def test_problems_exit_one_without_repair(self, cache_dir, capsys):
        path = cache_dir / "ab" / f"{GOOD}.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"x")
        assert fsck.main(["--cache-dir", str(cache_dir)]) == 1
        assert "--repair" in capsys.readouterr().out

    def test_repair_resolves_to_exit_zero(self, cache_dir, capsys):
        path = cache_dir / "ab" / f"{GOOD}.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"x")
        assert fsck.main(["--cache-dir", str(cache_dir), "--repair"]) == 0
        assert fsck.main(["--cache-dir", str(cache_dir)]) == 0

    def test_json_output_is_machine_readable(self, cache_dir, capsys):
        diskcache.DiskCache(directory=cache_dir).put(GOOD, {"v": 1})
        assert fsck.main(["--cache-dir", str(cache_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] and payload["counts"] == {"ok": 1}

    def test_module_entrypoint_exists(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.fsck", "--help"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0 and "lva-fsck" in proc.stdout
