"""fig_predictors: the cross-predictor comparison experiment.

The critical guarantee here is regression-pinning: the ``lva`` and
``lvp`` columns must be bit-identical to the pre-registry hard-coded
``Mode.LVA`` / ``Mode.LVP`` implementations on every baseline workload.
``expected/fig_predictors_small.json`` was generated from the tree
*before* the registry refactor landed and must never be regenerated to
make this suite pass.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.core.config import ApproximatorConfig
from repro.experiments import fig_predictors, runner
from repro.experiments.common import BASELINE_WORKLOADS, run_technique
from repro.experiments.sweep import point_disk_key
from repro.sim.tracesim import Mode

EXPECTED = Path(__file__).parent / "expected" / "fig_predictors_small.json"

with EXPECTED.open() as fh:
    PINNED = json.load(fh)


class TestDriver:
    def test_registered_in_runner(self):
        assert "fig_predictors" in runner.DRIVERS
        assert runner.DRIVERS["fig_predictors"] is fig_predictors.DRIVER

    def test_points_cover_the_full_matrix_with_distinct_keys(self):
        points = fig_predictors.DRIVER.points(small=True)
        expected = len(BASELINE_WORKLOADS) * len(fig_predictors.PREDICTORS)
        assert len(points) == expected
        keys = {point_disk_key(p) for p in points}
        assert len(keys) == expected

    def test_sweeps_at_least_four_predictors(self):
        assert len(fig_predictors.PREDICTORS) >= 4
        assert len(set(fig_predictors.PREDICTORS)) == len(fig_predictors.PREDICTORS)


class TestPinnedBitIdentity:
    """Registry-resolved lva/lvp vs the pre-refactor pinned results."""

    @pytest.mark.parametrize("workload", BASELINE_WORKLOADS)
    @pytest.mark.parametrize("name,mode", [("lva", Mode.LVA), ("lvp", Mode.LVP)])
    def test_registry_column_matches_pre_refactor_pin(self, workload, name, mode):
        pinned = PINNED[f"{workload}/{name}"]
        via_registry = run_technique(
            workload,
            Mode.PREDICTOR,
            config=ApproximatorConfig(predictor=name),
            small=True,
        )
        assert dataclasses.asdict(via_registry) == pinned
        # The fixed mode still reproduces its own pin, too.
        direct = run_technique(workload, mode, small=True)
        assert dataclasses.asdict(direct) == pinned

    def test_pin_file_covers_every_workload(self):
        expected_keys = {
            f"{w}/{n}" for w in BASELINE_WORKLOADS for n in ("lva", "lvp")
        }
        assert set(PINNED) == expected_keys


class TestRenderedTable:
    def test_rows_and_rollback_error_columns(self):
        result = fig_predictors.DRIVER.render(small=True)
        families = {label.split(":")[0] for label in result.series}
        assert families == {"mpki", "cov", "err"}
        for predictor in fig_predictors.PREDICTORS:
            assert f"mpki:{predictor}" in result.series
        # Rollback predictors: zero output error on every workload.
        for predictor in ("lvp", "clp"):
            assert all(v == 0.0 for v in result.series[f"err:{predictor}"].values())
        # The lva error column matches the pin exactly.
        for workload in BASELINE_WORKLOADS:
            assert (
                result.series["err:lva"][workload]
                == PINNED[f"{workload}/lva"]["output_error"]
            )
