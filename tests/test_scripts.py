"""Tests for the repository utility scripts."""

import sys
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"
sys.path.insert(0, str(SCRIPTS))

from fill_experiments_md import extract_tables, fill  # noqa: E402

SAMPLE_LOG = """
== Figure 6: normalized MPKI and output error vs confidence window ==
benchmark         mpki-0%     error-0%
blackscholes       0.9984       0.0002
canneal            0.9997       0.0001
average            0.9733       0.0010
[fig6 completed in 45.2s]

== Figure 12: static (distinct) PC count of approximate loads ==
benchmark    static_approx_pcs
x264             144.0000
average           33.4286
"""


class TestExtractTables:
    def test_finds_all_tables(self):
        tables = extract_tables(SAMPLE_LOG)
        assert set(tables) == {"Figure 6", "Figure 12"}

    def test_table_content_complete(self):
        tables = extract_tables(SAMPLE_LOG)
        assert "canneal" in tables["Figure 6"]
        assert tables["Figure 6"].splitlines()[-1].startswith("average")

    def test_tolerates_noise(self):
        noisy = "random pytest dots\n....\n" + SAMPLE_LOG + "\nPASSED\n"
        assert len(extract_tables(noisy)) == 2


class TestFill:
    def test_replaces_placeholder(self):
        md = "before\n<!-- TABLE:fig6 -->\nafter"
        out = fill(md, extract_tables(SAMPLE_LOG))
        assert "blackscholes" in out
        assert out.index("before") < out.index("blackscholes") < out.index("after")

    def test_idempotent(self):
        md = "<!-- TABLE:fig12 -->"
        tables = extract_tables(SAMPLE_LOG)
        once = fill(md, tables)
        twice = fill(once, tables)
        assert once == twice

    def test_missing_table_leaves_placeholder(self):
        md = "<!-- TABLE:fig9 -->"
        assert fill(md, extract_tables(SAMPLE_LOG)) == md
