"""End-to-end integration tests across the whole stack.

These exercise the exact pipelines a user of the library would run:
workload -> phase-1 simulator -> metrics/error, and workload -> trace ->
phase-2 full system -> speedup/energy, plus cross-technique invariants
that tie the subsystems together.
"""

import pytest

from repro.mem.cache import CacheConfig
from repro import (
    ApproximatorConfig,
    FullSystemConfig,
    FullSystemSimulator,
    Mode,
    TraceRecorder,
    TraceSimulator,
    get_workload,
)
from repro.sim.frontend import PreciseMemory


SEED = 11


#: A deliberately small L1 so the reduced workload instances still miss.
TINY_L1 = CacheConfig(size_bytes=4 * 1024, associativity=4, block_bytes=64)


def phase1(name, mode, config=None, recorder=None, l1=None, params=None, **kwargs):
    workload = get_workload(name, params=params, small=True)
    sim_kwargs = dict(kwargs)
    if l1 is not None:
        sim_kwargs["l1_config"] = l1
    sim = TraceSimulator(
        mode, approximator_config=config, recorder=recorder, **sim_kwargs
    )
    output = workload.execute(sim, SEED)
    return workload, output, sim.finish(), sim


class TestPhase1Pipeline:
    def test_lva_covers_misses_and_keeps_error_low_on_x264(self):
        workload, precise_out, _, _ = phase1("x264", Mode.PRECISE)
        _, lva_out, stats, _ = phase1("x264", Mode.LVA)
        error = workload.output_error(precise_out, lva_out)
        assert stats.covered_misses > 0
        assert error < 0.10

    def test_lvp_has_zero_output_error_by_construction(self):
        workload, precise_out, _, _ = phase1("blackscholes", Mode.PRECISE)
        _, lvp_out, _, _ = phase1("blackscholes", Mode.LVP)
        assert workload.output_error(precise_out, lvp_out) == 0.0

    def test_prefetching_fetches_more_lva_fetches_less(self):
        _, _, precise, _ = phase1("canneal", Mode.PRECISE, l1=TINY_L1)
        _, _, prefetch, _ = phase1(
            "canneal", Mode.PREFETCH, prefetch_degree=4, l1=TINY_L1
        )
        config = ApproximatorConfig(approximation_degree=4)
        _, _, lva, _ = phase1("canneal", Mode.LVA, config=config, l1=TINY_L1)
        per_ki = lambda s: s.fetches / max(s.instructions, 1)
        assert per_ki(prefetch) > per_ki(precise)
        assert per_ki(lva) < per_ki(precise)

    def test_approximation_degree_monotone_fetch_reduction(self):
        fetches = []
        for degree in (0, 4, 16):
            config = ApproximatorConfig(
                approximation_degree=degree, apply_confidence_to_ints=False
            )
            _, _, stats, _ = phase1("canneal", Mode.LVA, config=config, l1=TINY_L1)
            fetches.append(stats.fetches / max(stats.instructions, 1))
        assert fetches[0] >= fetches[1] >= fetches[2]
        assert fetches[2] < fetches[0]


class TestPhaseCoupling:
    def test_trace_capture_and_fullsystem_replay(self):
        recorder = TraceRecorder()
        phase1("blackscholes", Mode.PRECISE, recorder=recorder)
        trace = recorder.trace
        assert len(trace) > 0

        baseline = FullSystemSimulator(FullSystemConfig()).run(trace)
        lva = FullSystemSimulator(
            FullSystemConfig(approximate=True, approximator=ApproximatorConfig())
        ).run(trace)
        assert baseline.loads == lva.loads == len(trace)
        assert lva.covered_misses >= 0
        assert lva.cycles <= baseline.cycles * 1.02

    def test_fullsystem_energy_consistency(self):
        recorder = TraceRecorder()
        # A larger placement than the 16 KB full-system L1 so misses occur.
        phase1(
            "canneal", Mode.PRECISE, recorder=recorder,
            params={"n_blocks": 4096, "steps": 500, "grid_width": 256, "grid_height": 64},
        )
        config = FullSystemConfig(
            approximate=True,
            approximator=ApproximatorConfig(approximation_degree=8),
        )
        baseline = FullSystemSimulator(FullSystemConfig()).run(recorder.trace)
        lva = FullSystemSimulator(config).run(recorder.trace)
        # Fewer fetches -> less miss-path energy, even after paying for the
        # approximator's own accesses.
        assert lva.fetches < baseline.fetches
        assert lva.energy.miss_path_nj < baseline.energy.miss_path_nj


class TestConsistencyAcrossFrontends:
    @pytest.mark.parametrize("name", ["swaptions", "ferret"])
    def test_precise_sim_equals_functional_reference(self, name):
        workload = get_workload(name, small=True)
        functional = workload.execute(PreciseMemory(), SEED)
        simulated = get_workload(name, small=True).execute(
            TraceSimulator(Mode.PRECISE), SEED
        )
        assert workload.output_error(functional, simulated) == 0.0

    def test_stats_internally_consistent(self):
        _, _, stats, _ = phase1("fluidanimate", Mode.LVA)
        assert stats.covered_misses <= stats.raw_misses
        assert stats.fetches + stats.fetches_avoided >= stats.raw_misses - stats.covered_misses
        assert 0 <= stats.coverage <= 1
        assert stats.loads <= stats.instructions
