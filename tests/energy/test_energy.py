"""Tests for the CACTI-style energy model and EDP helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy.cacti import (
    approximator_table_energy_nj,
    dram_access_energy_nj,
    noc_flit_hop_energy_nj,
    sram_access_energy_nj,
)
from repro.energy.model import EnergyModel, energy_delay_product, normalized_edp
from repro.errors import ConfigurationError


class TestCacti:
    def test_bigger_sram_costs_more(self):
        assert sram_access_energy_nj(512 * 1024) > sram_access_energy_nj(16 * 1024)

    def test_associativity_penalty(self):
        assert sram_access_energy_nj(16 * 1024, 8) > sram_access_energy_nj(16 * 1024, 1)

    def test_calibration_points(self):
        # The constants are calibrated to CACTI-class magnitudes at 32 nm.
        l1 = sram_access_energy_nj(16 * 1024, 8)
        l2 = sram_access_energy_nj(512 * 1024, 16)
        assert 0.01 < l1 < 0.05
        assert 0.1 < l2 < 0.3

    def test_dram_dominates_sram(self):
        assert dram_access_energy_nj() > 10 * sram_access_energy_nj(512 * 1024)

    def test_dram_scales_with_block(self):
        assert dram_access_energy_nj(128) == 2 * dram_access_energy_nj(64)

    def test_technology_scaling(self):
        assert sram_access_energy_nj(16 * 1024, 8, tech_nm=45) > sram_access_energy_nj(
            16 * 1024, 8, tech_nm=32
        )

    def test_approximator_table_is_small_sram(self):
        table = approximator_table_energy_nj()
        assert 0 < table < sram_access_energy_nj(512 * 1024)

    def test_flit_hop_energy_positive(self):
        assert noc_flit_hop_energy_nj() > 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            sram_access_energy_nj(0)
        with pytest.raises(ConfigurationError):
            sram_access_energy_nj(1024, 0)
        with pytest.raises(ConfigurationError):
            dram_access_energy_nj(0)

    @given(st.integers(1024, 10 * 1024 * 1024))
    def test_monotone_in_size(self, size):
        assert sram_access_energy_nj(size + 1024) >= sram_access_energy_nj(size)


class TestEnergyModel:
    def test_accounting_is_linear(self):
        model = EnergyModel()
        single = model.account(l1_accesses=1)
        many = model.account(l1_accesses=10)
        assert many.l1_nj == pytest.approx(10 * single.l1_nj)

    def test_breakdown_total(self):
        model = EnergyModel()
        breakdown = model.account(
            l1_accesses=100, l2_accesses=10, memory_accesses=1,
            noc_flit_hops=50, approximator_accesses=20,
        )
        parts = (
            breakdown.l1_nj + breakdown.l2_nj + breakdown.memory_nj
            + breakdown.noc_nj + breakdown.approximator_nj
        )
        assert breakdown.total_nj == pytest.approx(parts)

    def test_miss_path_excludes_l1(self):
        model = EnergyModel()
        breakdown = model.account(l1_accesses=100, l2_accesses=10)
        assert breakdown.miss_path_nj == pytest.approx(breakdown.l2_nj)

    def test_fewer_fetches_less_energy(self):
        """The paper's energy-saving mechanism: approximation degree removes
        L2/memory/NoC accesses."""
        model = EnergyModel()
        precise = model.account(l1_accesses=1000, l2_accesses=100,
                                memory_accesses=20, noc_flit_hops=600)
        lva = model.account(l1_accesses=1000, l2_accesses=60,
                            memory_accesses=12, noc_flit_hops=360,
                            approximator_accesses=120)
        assert lva.total_nj < precise.total_nj

    def test_as_dict_keys(self):
        keys = set(EnergyModel().account().as_dict())
        assert keys == {
            "l1_nj", "l2_nj", "memory_nj", "noc_nj", "approximator_nj", "total_nj"
        }


class TestEDP:
    def test_product(self):
        assert energy_delay_product(10.0, 5.0) == 50.0

    def test_normalized(self):
        assert normalized_edp(5.0, 5.0, 10.0, 10.0) == pytest.approx(0.25)

    def test_zero_baseline(self):
        assert normalized_edp(5.0, 5.0, 0.0, 10.0) == 0.0
