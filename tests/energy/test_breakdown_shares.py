"""Energy-model composition checks tied to the paper's energy story."""

import pytest

from repro.energy.model import EnergyModel


class TestComponentShares:
    """The paper's energy savings come from removing L2/memory/NoC traffic;
    these checks pin the relative magnitudes that make that story work."""

    def test_memory_access_dwarfs_l2(self):
        model = EnergyModel()
        assert model.per_access_nj("memory") > 5 * model.per_access_nj("l2")

    def test_l2_dwarfs_l1(self):
        model = EnergyModel()
        assert model.per_access_nj("l2") > 2 * model.per_access_nj("l1")

    def test_approximator_cheaper_than_l2(self):
        # An approximator lookup must cost less than the L2 access it can
        # avoid, or the whole technique would be an energy loss.
        model = EnergyModel()
        assert model.per_access_nj("approximator") < model.per_access_nj("l2")

    def test_degree_16_miss_profile_saves_energy(self):
        """Hand-computed miss profile: degree 16 removes 16/17 of fetch
        traffic; the approximator overhead must not eat the savings."""
        model = EnergyModel()
        misses = 17_000
        flits_per_fetch = 3 * 2  # request + reply legs
        precise = model.account(
            l2_accesses=misses,
            memory_accesses=misses // 5,
            noc_flit_hops=misses * flits_per_fetch,
        )
        lva = model.account(
            l2_accesses=misses // 17,
            memory_accesses=misses // 85,
            noc_flit_hops=(misses // 17) * flits_per_fetch,
            approximator_accesses=misses + misses // 17,
        )
        assert lva.total_nj < 0.25 * precise.total_nj

    def test_smaller_approximator_table_cheaper(self):
        big = EnergyModel(approximator_entries=512)
        small = EnergyModel(approximator_entries=64)
        assert small.per_access_nj("approximator") < big.per_access_nj(
            "approximator"
        )

    def test_per_access_unknown_component_raises(self):
        with pytest.raises(KeyError):
            EnergyModel().per_access_nj("flux-capacitor")
