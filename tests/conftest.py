"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ApproximatorConfig
from repro.sim.tracesim import Mode, TraceSimulator


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests needing randomness."""
    return np.random.default_rng(1234)


@pytest.fixture
def baseline_config() -> ApproximatorConfig:
    """The Table II baseline approximator configuration."""
    return ApproximatorConfig()


@pytest.fixture
def lva_sim() -> TraceSimulator:
    """A phase-1 simulator in LVA mode with baseline settings."""
    return TraceSimulator(Mode.LVA)


@pytest.fixture
def precise_sim() -> TraceSimulator:
    """A phase-1 simulator with no technique (precise execution)."""
    return TraceSimulator(Mode.PRECISE)
