"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ApproximatorConfig
from repro.experiments import diskcache
from repro.sim.tracesim import Mode, TraceSimulator


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    """Keep tests hermetic: never touch the user's persistent result cache.

    Tests that exercise the disk layer re-enable it by deleting
    ``REPRO_NO_CACHE`` and pointing ``REPRO_CACHE_DIR`` at a tmp_path.
    """
    monkeypatch.setenv(diskcache.NO_CACHE_ENV, "1")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests needing randomness."""
    return np.random.default_rng(1234)


@pytest.fixture
def baseline_config() -> ApproximatorConfig:
    """The Table II baseline approximator configuration."""
    return ApproximatorConfig()


@pytest.fixture
def lva_sim() -> TraceSimulator:
    """A phase-1 simulator in LVA mode with baseline settings."""
    return TraceSimulator(Mode.LVA)


@pytest.fixture
def precise_sim() -> TraceSimulator:
    """A phase-1 simulator with no technique (precise execution)."""
    return TraceSimulator(Mode.PRECISE)
