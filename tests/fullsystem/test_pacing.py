"""Full-system fetch pacing: MSHR limits and training-fetch deprioritization."""


from repro.core.config import ApproximatorConfig
from repro.fullsystem import FullSystemConfig, FullSystemSimulator
from repro.sim.trace import LoadEvent, Trace


def burst_trace(n=64, value=5.0, gap=0):
    """One thread bursting loads to distinct blocks back-to-back."""
    return Trace([
        LoadEvent(0, 0x400, i * 64, value, True, True, gap) for i in range(n)
    ])


def lva_config(degree=0, budget=None):
    return FullSystemConfig(
        approximate=True,
        approximator=ApproximatorConfig(
            approximation_degree=degree, apply_confidence_to_floats=False
        ),
    )


class TestMSHRPacing:
    def test_demand_bursts_are_paced(self):
        """With 8 MSHRs, a 64-block burst cannot complete in one
        memory-latency window."""
        sim = FullSystemSimulator(FullSystemConfig())
        result = sim.run(burst_trace())
        # 64 misses / 8 MSHRs: at least ~4 serialized L2 rounds.
        assert result.cycles > 4 * 12

    def test_mshr_pool_bounds_outstanding(self):
        sim = FullSystemSimulator(FullSystemConfig())
        sim.run(burst_trace())
        for pool in sim._outstanding_demand:
            assert len(pool) <= sim.mshr_entries


class TestTrainingDeprioritization:
    def test_training_fetches_capped_and_dropped(self):
        sim = FullSystemSimulator(lva_config())
        result = sim.run(burst_trace(n=256))
        # After warm-up, every miss is approximated; the training budget
        # forces some training fetches to be dropped entirely.
        assert result.covered_misses > 0
        assert sim.dropped_trainings > 0
        # Drops mean strictly fewer fetches than misses even at degree 0.
        assert result.fetches < result.raw_misses

    def test_dropped_trainings_do_not_break_functionality(self):
        sim = FullSystemSimulator(lva_config())
        result = sim.run(burst_trace(n=256))
        assert result.cycles > 0
        assert result.covered_misses <= result.raw_misses

    def test_lva_cycles_never_worse_than_baseline_on_bursts(self):
        """The priority scheme's whole point: training traffic must not
        slow the demand path."""
        trace = burst_trace(n=128, gap=2)
        baseline = FullSystemSimulator(FullSystemConfig()).run(trace)
        lva = FullSystemSimulator(lva_config()).run(trace)
        assert lva.cycles <= baseline.cycles * 1.02
