"""Property-based invariants of the full-system simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ApproximatorConfig
from repro.fullsystem import FullSystemConfig, FullSystemSimulator
from repro.sim.trace import LoadEvent, Trace


@st.composite
def traces(draw):
    """Random small multi-threaded traces."""
    n = draw(st.integers(1, 60))
    events = []
    for _ in range(n):
        tid = draw(st.integers(0, 3))
        addr = draw(st.integers(0, 1 << 14)) & ~63
        value = draw(st.floats(-100, 100, allow_nan=False))
        approximable = draw(st.booleans())
        gap = draw(st.integers(0, 30))
        events.append(
            LoadEvent(tid, 0x400 + 4 * tid, addr, value, True, approximable, gap)
        )
    return Trace(events)


LVA = FullSystemConfig(
    approximate=True,
    approximator=ApproximatorConfig(apply_confidence_to_floats=False),
)


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(traces())
    def test_counters_consistent(self, trace):
        result = FullSystemSimulator(LVA).run(trace)
        assert result.loads == len(trace)
        assert 0 <= result.covered_misses <= result.raw_misses <= result.loads
        assert result.fetches <= result.raw_misses
        assert result.memory_accesses <= result.l2_accesses
        assert result.cycles >= 0

    @settings(max_examples=40, deadline=None)
    @given(traces())
    def test_instructions_match_trace(self, trace):
        result = FullSystemSimulator(FullSystemConfig()).run(trace)
        assert result.instructions == trace.total_instructions

    @settings(max_examples=30, deadline=None)
    @given(traces())
    def test_lva_never_slower_much(self, trace):
        """Approximation must not significantly slow any trace down.

        The slack accounts for dropped training fetches leaving a block
        uncached that a later precise load then misses on — bounded, but
        nonzero on adversarial random traces.
        """
        baseline = FullSystemSimulator(FullSystemConfig()).run(trace)
        lva = FullSystemSimulator(LVA).run(trace)
        assert lva.cycles <= baseline.cycles * 1.10 + 150

    @settings(max_examples=30, deadline=None)
    @given(traces())
    def test_energy_nonnegative_and_composed(self, trace):
        result = FullSystemSimulator(LVA).run(trace)
        energy = result.energy
        for component in (energy.l1_nj, energy.l2_nj, energy.memory_nj,
                          energy.noc_nj, energy.approximator_nj):
            assert component >= 0
        assert energy.total_nj >= energy.miss_path_nj

    @settings(max_examples=20, deadline=None)
    @given(traces(), st.integers(0, 16))
    def test_degree_never_increases_fetches(self, trace, degree):
        base_cfg = FullSystemConfig(
            approximate=True,
            approximator=ApproximatorConfig(apply_confidence_to_floats=False),
        )
        deg_cfg = FullSystemConfig(
            approximate=True,
            approximator=ApproximatorConfig(
                apply_confidence_to_floats=False, approximation_degree=degree
            ),
        )
        base = FullSystemSimulator(base_cfg).run(trace)
        with_degree = FullSystemSimulator(deg_cfg).run(trace)
        assert with_degree.fetches <= base.fetches + 3
