"""Differential tests: packed replay is bit-identical to the object path.

The packed columnar hot loop in :meth:`FullSystemSimulator.run` and
:meth:`TraceSimulator.replay` must reproduce the object-list reference
interpreters exactly — same scheduling, same stats, same energy — or the
perf optimisation would silently change the science.
"""

from __future__ import annotations

import pytest

from repro import (
    ApproximatorConfig,
    FullSystemConfig,
    FullSystemSimulator,
    Mode,
    TraceRecorder,
    TraceSimulator,
    get_workload,
)
from repro.experiments.common import BASELINE_WORKLOADS


def capture(name: str, seed: int = 3):
    recorder = TraceRecorder(record_stores=True)
    sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
    get_workload(name, small=True).execute(sim, seed)
    sim.finish()
    return recorder.trace


def assert_results_equal(a, b):
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.loads == b.loads
    assert a.raw_misses == b.raw_misses
    assert a.covered_misses == b.covered_misses
    assert a.fetches == b.fetches
    assert a.l2_accesses == b.l2_accesses
    assert a.memory_accesses == b.memory_accesses
    assert a.noc_flit_hops == b.noc_flit_hops
    assert a.approximator_accesses == b.approximator_accesses
    assert a.total_miss_latency == b.total_miss_latency
    assert a.core_cycles == b.core_cycles
    assert a.energy == b.energy


class TestFullSystemBitEquality:
    @pytest.mark.parametrize("name", BASELINE_WORKLOADS)
    def test_packed_run_matches_object_reference(self, name):
        trace = capture(name)
        reference = FullSystemSimulator(FullSystemConfig()).replay_events(trace)
        packed = FullSystemSimulator(FullSystemConfig()).run(trace.pack())
        assert_results_equal(reference, packed)

    @pytest.mark.parametrize("path", ["object", "packed", "vector"])
    def test_every_run_path_matches_replay_events(self, path, monkeypatch):
        trace = capture("canneal")
        config = FullSystemConfig(
            approximate=True,
            approximator=ApproximatorConfig(approximation_degree=4),
        )
        reference = FullSystemSimulator(config).replay_events(trace)
        monkeypatch.setenv("REPRO_REPLAY_KERNEL", path)
        pinned = FullSystemSimulator(config).run(trace.pack())
        assert_results_equal(reference, pinned)

    @pytest.mark.parametrize("name", BASELINE_WORKLOADS)
    def test_packed_run_matches_object_reference_with_lva(self, name):
        trace = capture(name)
        config = FullSystemConfig(
            approximate=True,
            approximator=ApproximatorConfig(approximation_degree=4),
        )
        reference = FullSystemSimulator(config).replay_events(trace)
        packed = FullSystemSimulator(config).run(trace.pack())
        assert_results_equal(reference, packed)

    def test_run_accepts_object_trace(self):
        trace = capture("swaptions")
        via_object = FullSystemSimulator(FullSystemConfig()).run(trace)
        via_packed = FullSystemSimulator(FullSystemConfig()).run(trace.pack())
        assert_results_equal(via_object, via_packed)


class TestTraceSimReplayBitEquality:
    @pytest.mark.parametrize(
        "mode", [Mode.PRECISE, Mode.LVA, Mode.LVP, Mode.PREFETCH]
    )
    @pytest.mark.parametrize("path", ["packed", "vector"])
    def test_every_replay_path_matches_object_replay(self, mode, path, monkeypatch):
        from repro.sim import kernels

        trace = capture("swaptions")
        monkeypatch.setenv(kernels.ENV_KERNEL, "object")
        object_stats = TraceSimulator(mode).replay(trace)
        monkeypatch.setenv(kernels.ENV_KERNEL, path)
        # Every mode — prefetch included — replays vector-eligible now.
        pinned_stats = TraceSimulator(mode).replay(trace.pack())
        assert pinned_stats == object_stats

    @pytest.mark.parametrize(
        "config",
        [
            ApproximatorConfig(approximation_degree=2),
            ApproximatorConfig(approximation_degree=4, ghb_size=2),
            ApproximatorConfig(predictor="clp"),
            ApproximatorConfig(predictor="hybrid"),
            ApproximatorConfig(predictor="hybrid", approximation_degree=2),
        ],
        ids=["deg2", "deg4-ghb2", "clp", "hybrid", "hybrid-deg2"],
    )
    @pytest.mark.parametrize("path", ["packed", "vector"])
    def test_degree_and_predictor_configs_match_object_replay(
        self, config, path, monkeypatch
    ):
        from repro.sim import kernels

        mode = Mode.PREDICTOR if config.predictor else Mode.LVA
        trace = capture("fluidanimate")
        monkeypatch.setenv(kernels.ENV_KERNEL, "object")
        object_stats = TraceSimulator(mode, approximator_config=config).replay(trace)
        monkeypatch.setenv(kernels.ENV_KERNEL, path)
        pinned_stats = TraceSimulator(mode, approximator_config=config).replay(
            trace.pack()
        )
        assert pinned_stats == object_stats
