"""Full-system store handling and MSI coherence traffic."""

import pytest

from repro.fullsystem import FullSystemConfig, FullSystemSimulator
from repro.sim.frontend import PreciseMemory
from repro.sim.trace import LoadEvent, Trace, TraceRecorder
from repro.sim.tracesim import Mode, TraceSimulator
from repro.workloads.registry import get_workload


def load(tid, addr, gap=5, value=1.0):
    return LoadEvent(tid, 0x400 + 4 * tid, addr, value, True, False, gap)


def store(tid, addr, gap=5):
    return LoadEvent(tid, 0, addr, 0, False, False, gap, is_store=True)


class TestStoreEvents:
    def test_store_to_shared_block_invalidates_remote_copy(self):
        # Threads replay on independent core clocks, so the reload gets a
        # large gap to guarantee it executes after core 1's store.
        trace = Trace([
            load(0, 0x1000),            # core 0 caches the block
            load(1, 0x1000),            # core 1 shares it
            store(1, 0x1000),           # core 1 writes: invalidate core 0
            load(0, 0x1000, gap=4000),  # core 0 must miss again
        ])
        sim = FullSystemSimulator(FullSystemConfig())
        result = sim.run(trace)
        assert result.raw_misses == 3  # two compulsory + one coherence miss
        assert sim.directory.stats.invalidations_sent >= 1

    def test_store_hit_keeps_block_and_dirties(self):
        trace = Trace([
            load(0, 0x2000),
            store(0, 0x2000),
            load(0, 0x2000),
        ])
        result = FullSystemSimulator(FullSystemConfig()).run(trace)
        assert result.raw_misses == 1  # the write hit; the re-read hits

    def test_store_miss_does_not_allocate(self):
        trace = Trace([
            store(0, 0x3000),
            load(0, 0x3000),
        ])
        result = FullSystemSimulator(FullSystemConfig()).run(trace)
        assert result.raw_misses == 1  # the load still misses

    def test_stores_do_not_stall(self):
        """A store-only trace finishes at pure issue throughput."""
        events = [store(0, 0x4000 + 64 * i, gap=0) for i in range(100)]
        result = FullSystemSimulator(FullSystemConfig()).run(Trace(events))
        # 100 instructions on a 4-wide core: ~25 cycles.
        assert result.cycles == pytest.approx(25.0, abs=2.0)


class TestRecordedStores:
    def test_recorder_emits_store_events_when_enabled(self):
        recorder = TraceRecorder(record_stores=True)
        mem = PreciseMemory(recorder=recorder)
        region = mem.space.alloc("x", 2)
        mem.store(region.addr(0), 1.0)
        mem.load(0x400, region.addr(0))
        kinds = [event.is_store for event in recorder.trace]
        assert kinds == [True, False]

    def test_default_recorder_folds_stores_into_gaps(self):
        recorder = TraceRecorder()
        mem = PreciseMemory(recorder=recorder)
        region = mem.space.alloc("x", 1)
        mem.store(region.addr(0), 1.0)
        mem.load(0x400, region.addr(0))
        assert len(recorder.trace) == 1
        assert recorder.trace.events[0].gap == 1

    def test_workload_trace_with_stores_replays(self):
        recorder = TraceRecorder(record_stores=True)
        sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
        get_workload("swaptions", small=True).execute(sim, 3)
        sim.finish()
        assert any(event.is_store for event in recorder.trace)
        result = FullSystemSimulator(FullSystemConfig()).run(recorder.trace)
        assert result.cycles > 0
