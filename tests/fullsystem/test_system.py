"""Tests for the phase-2 full-system simulator."""

import pytest

from repro.core.config import ApproximatorConfig
from repro.errors import ConfigurationError, SimulationError
from repro.fullsystem import FullSystemConfig, FullSystemSimulator
from repro.sim.trace import LoadEvent, Trace


def synthetic_trace(
    threads=4, loads_per_thread=50, gap=20, stride_blocks=True, approximable=True,
    value=5.0,
):
    """A simple multi-threaded trace with per-thread streaming addresses."""
    events = []
    for i in range(loads_per_thread):
        for tid in range(threads):
            addr = (tid << 20) | (i * 64 if stride_blocks else 0)
            events.append(
                LoadEvent(
                    tid=tid, pc=0x400 + 8 * tid, addr=addr, value=value,
                    is_float=True, approximable=approximable, gap=gap,
                )
            )
    return Trace(events)


class TestBaselineReplay:
    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            FullSystemSimulator().run(Trace())

    def test_counts_match_trace(self):
        trace = synthetic_trace()
        result = FullSystemSimulator().run(trace)
        assert result.loads == len(trace)
        assert result.instructions == trace.total_instructions

    def test_streaming_misses_fetch_one_to_one(self):
        trace = synthetic_trace()
        result = FullSystemSimulator().run(trace)
        assert result.raw_misses == result.fetches
        assert result.covered_misses == 0

    def test_repeated_block_hits_after_first(self):
        trace = synthetic_trace(stride_blocks=False, loads_per_thread=20)
        result = FullSystemSimulator().run(trace)
        assert result.raw_misses == 4  # one compulsory miss per core

    def test_cycles_at_least_width_limited(self):
        trace = synthetic_trace()
        result = FullSystemSimulator().run(trace)
        per_core_instr = trace.total_instructions / 4
        assert result.cycles >= per_core_instr / 4

    def test_miss_latency_includes_noc_and_l2(self):
        trace = synthetic_trace()
        result = FullSystemSimulator().run(trace)
        # Minimum: 2 routers each way + L2 latency.
        assert result.average_miss_latency > 10

    def test_energy_breakdown_populated(self):
        result = FullSystemSimulator().run(synthetic_trace())
        assert result.energy.l1_nj > 0
        assert result.energy.l2_nj > 0
        assert result.energy.total_nj > result.energy.miss_path_nj


class TestApproximateReplay:
    def lva_config(self, degree=0):
        return FullSystemConfig(
            approximate=True,
            approximator=ApproximatorConfig(
                approximation_degree=degree, apply_confidence_to_floats=False
            ),
        )

    def test_constant_values_get_covered(self):
        trace = synthetic_trace(value=5.0)
        result = FullSystemSimulator(self.lva_config()).run(trace)
        assert result.covered_misses > 0

    def test_speedup_over_baseline(self):
        trace = synthetic_trace(gap=4)
        baseline = FullSystemSimulator().run(trace)
        lva = FullSystemSimulator(self.lva_config()).run(trace)
        assert lva.speedup_over(baseline) > 0

    def test_degree_reduces_fetches(self):
        trace = synthetic_trace()
        d0 = FullSystemSimulator(self.lva_config(0)).run(trace)
        d8 = FullSystemSimulator(self.lva_config(8)).run(trace)
        assert d8.fetches < d0.fetches

    def test_degree_saves_energy(self):
        trace = synthetic_trace()
        baseline = FullSystemSimulator().run(trace)
        d8 = FullSystemSimulator(self.lva_config(8)).run(trace)
        assert d8.energy_savings_over(baseline) > 0

    def test_covered_misses_have_zero_latency_contribution(self):
        trace = synthetic_trace()
        baseline = FullSystemSimulator().run(trace)
        lva = FullSystemSimulator(self.lva_config()).run(trace)
        assert lva.average_miss_latency < baseline.average_miss_latency

    def test_non_approximable_trace_unaffected_by_lva(self):
        trace = synthetic_trace(approximable=False)
        baseline = FullSystemSimulator().run(trace)
        lva = FullSystemSimulator(self.lva_config()).run(trace)
        assert lva.covered_misses == 0
        assert lva.cycles == pytest.approx(baseline.cycles)

    def test_miss_edp_improves(self):
        trace = synthetic_trace()
        baseline = FullSystemSimulator().run(trace)
        lva = FullSystemSimulator(self.lva_config(8)).run(trace)
        assert lva.miss_edp < baseline.miss_edp


class TestConfigValidation:
    def test_core_mesh_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            FullSystemConfig(num_cores=8)

    def test_block_size_mismatch_rejected(self):
        from repro.mem.cache import CacheConfig

        with pytest.raises(ConfigurationError):
            FullSystemConfig(
                l1=CacheConfig(size_bytes=16 * 1024, block_bytes=32),
            )

    def test_resolved_approximator_defaults(self):
        config = FullSystemConfig()
        assert config.resolved_approximator().table_entries == 512


class TestThreadMapping:
    def test_threads_pinned_round_robin(self):
        trace = synthetic_trace(threads=4)
        sim = FullSystemSimulator()
        result = sim.run(trace)
        # All four cores did work.
        assert all(cycles > 0 for cycles in result.core_cycles)

    def test_more_threads_than_cores_fold(self):
        events = []
        for tid in range(8):
            events.append(
                LoadEvent(tid=tid, pc=0x400, addr=tid * 64, value=1.0,
                          is_float=True, approximable=False, gap=10)
            )
        result = FullSystemSimulator().run(Trace(events))
        assert result.loads == 8
