"""canneal-specific tests: annealing dynamics and cost accounting."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.frontend import PreciseMemory
from repro.workloads.canneal import Canneal


def run_small(**overrides):
    params = dict(Canneal.small_params())
    params.update(overrides)
    workload = Canneal(params)
    return workload, workload.execute(PreciseMemory(), seed=0)


class TestAnnealing:
    def test_annealing_reduces_cost(self):
        """The optimizer must actually optimize: more steps, lower cost."""
        _, short_cost = run_small(steps=20)
        _, long_cost = run_small(steps=2000)
        assert long_cost < short_cost

    def test_cost_positive(self):
        _, cost = run_small()
        assert cost > 0

    def test_too_many_blocks_rejected(self):
        with pytest.raises(WorkloadError):
            run_small(n_blocks=4096, grid_width=16, grid_height=16)

    def test_positions_stay_on_grid(self):
        workload = Canneal(Canneal.small_params())
        mem = PreciseMemory()
        workload.execute(mem, seed=0)
        region_x = mem.space.region("block_x")
        region_y = mem.space.region("block_y")
        n = workload.params["n_blocks"]
        for i in range(n):
            assert 0 <= mem.values[region_x.addr(i)] < workload.params["grid_width"]
            assert 0 <= mem.values[region_y.addr(i)] < workload.params["grid_height"]

    def test_swapped_positions_remain_a_permutation(self):
        """Swaps must never duplicate or lose grid cells."""
        workload = Canneal(Canneal.small_params())
        mem = PreciseMemory()
        workload.execute(mem, seed=0)
        region_x = mem.space.region("block_x")
        region_y = mem.space.region("block_y")
        n = workload.params["n_blocks"]
        positions = {
            (mem.values[region_x.addr(i)], mem.values[region_y.addr(i)])
            for i in range(n)
        }
        assert len(positions) == n  # still distinct cells


class TestCostFunction:
    def test_routing_cost_of_known_placement(self):
        workload = Canneal(Canneal.small_params())
        pos = np.array([[0, 0], [3, 4]])
        nets = np.array([[1], [0]])
        # Each block connects to the other: manhattan distance 7, twice.
        assert workload._routing_cost(pos, nets) == 14.0

    def test_identical_placement_zero_cost(self):
        workload = Canneal(Canneal.small_params())
        pos = np.array([[5, 5], [5, 5]])
        nets = np.array([[1], [0]])
        assert workload._routing_cost(pos, nets) == 0.0
