"""Cross-seed robustness: the paper averages 5 runs; shapes must not be a
single-seed fluke. These tests run two seeds at small scale and check the
*direction* of key effects holds for each."""

import pytest

from repro.core.config import ApproximatorConfig
from repro.sim.tracesim import Mode, TraceSimulator
from repro.workloads.registry import get_workload

SEEDS = (1, 2)


@pytest.mark.parametrize("seed", SEEDS)
class TestSeedRobustness:
    def test_lva_reduces_effective_mpki_canneal(self, seed):
        precise = TraceSimulator(Mode.PRECISE)
        get_workload("canneal", small=True).execute(precise, seed)
        p = precise.finish()
        lva = TraceSimulator(Mode.LVA)
        get_workload("canneal", small=True).execute(lva, seed)
        l = lva.finish()
        assert l.mpki < p.raw_mpki

    def test_degree_cuts_fetch_ratio_x264(self, seed):
        def fetch_ratio(degree):
            config = ApproximatorConfig(approximation_degree=degree)
            sim = TraceSimulator(Mode.LVA, approximator_config=config)
            get_workload("x264", small=True).execute(sim, seed)
            stats = sim.finish()
            return stats.fetches / max(stats.raw_misses, 1)

        assert fetch_ratio(8) < fetch_ratio(0)

    def test_infinite_window_maximises_coverage_blackscholes(self, seed):
        from repro.core.config import INFINITE_WINDOW

        def coverage(window):
            config = ApproximatorConfig(confidence_window=window)
            sim = TraceSimulator(Mode.LVA, approximator_config=config)
            get_workload("blackscholes", small=True).execute(sim, seed)
            return sim.finish().coverage

        assert coverage(INFINITE_WINDOW) >= coverage(0.10) >= coverage(0.0)
