"""blackscholes-specific tests: pricing maths and input redundancy."""

import math

import numpy as np
import pytest

from repro.sim.frontend import PreciseMemory
from repro.workloads.blackscholes import (
    _SPOTS,
    _SPOT_PROBS,
    Blackscholes,
    black_scholes_price,
)


class TestPricingFormula:
    def test_call_put_parity(self):
        spot, strike, rate, vol, time = 100.0, 95.0, 0.02, 0.25, 1.0
        call = black_scholes_price(spot, strike, rate, vol, time, True)
        put = black_scholes_price(spot, strike, rate, vol, time, False)
        forward = spot - strike * math.exp(-rate * time)
        assert call - put == pytest.approx(forward, abs=1e-9)

    def test_deep_in_the_money_call_near_intrinsic(self):
        price = black_scholes_price(200.0, 100.0, 0.0, 0.05, 0.1, True)
        assert price == pytest.approx(100.0, rel=0.01)

    def test_worthless_otm_put(self):
        price = black_scholes_price(200.0, 100.0, 0.0, 0.05, 0.1, False)
        assert price < 0.01

    def test_price_increases_with_volatility(self):
        low = black_scholes_price(100.0, 100.0, 0.02, 0.10, 1.0, True)
        high = black_scholes_price(100.0, 100.0, 0.02, 0.50, 1.0, True)
        assert high > low

    def test_degenerate_inputs_do_not_crash(self):
        assert black_scholes_price(0.0, 100.0, 0.02, 0.2, 1.0, True) >= 0.0
        assert black_scholes_price(100.0, 100.0, 0.02, 0.0, 0.0, True) >= 0.0


class TestInputRedundancy:
    """The paper's observation: two spot values cover ~98% of options."""

    def test_two_dominant_spot_values(self):
        order = np.argsort(_SPOT_PROBS)[::-1]
        assert _SPOT_PROBS[order[0]] + _SPOT_PROBS[order[1]] >= 0.95

    def test_probabilities_normalised(self):
        assert _SPOT_PROBS.sum() == pytest.approx(1.0)

    def test_generated_portfolio_uses_spot_set(self):
        workload = Blackscholes({"n_options": 64, "compute_cost": 10})
        mem = PreciseMemory()
        workload.execute(mem, seed=0)
        spot_region = mem.space.region("spot")
        spots = {mem.values[spot_region.addr(i)] for i in range(64)}
        assert spots <= set(float(s) for s in _SPOTS)


class TestOutputs:
    def test_prices_nonnegative(self):
        workload = Blackscholes.small()
        prices = workload.execute(PreciseMemory(), seed=0)
        assert all(price >= 0 for price in prices)

    def test_one_price_per_option(self):
        workload = Blackscholes({"n_options": 100, "compute_cost": 10})
        prices = workload.execute(PreciseMemory(), seed=0)
        assert len(prices) == 100
