"""Tests for the workload base-class helpers."""

import pytest

from repro.errors import WorkloadError
from repro.sim.frontend import PreciseMemory
from repro.sim.tracesim import Mode, TraceSimulator
from repro.workloads.base import run_precise, run_with_frontend
from repro.workloads.registry import get_workload


class TestRunHelpers:
    def test_run_precise_returns_output_and_instructions(self):
        workload = get_workload("swaptions", small=True)
        output, instructions = run_precise(workload, seed=2)
        assert len(output) == workload.params["n_swaptions"]
        assert instructions > 0

    def test_run_with_frontend_matches_execute(self):
        workload = get_workload("swaptions", small=True)
        via_helper = run_with_frontend(
            get_workload("swaptions", small=True), PreciseMemory(), seed=2
        )
        direct = workload.execute(PreciseMemory(), 2)
        assert workload.output_error(direct, via_helper) == 0.0

    def test_run_with_simulating_frontend(self):
        workload = get_workload("swaptions", small=True)
        sim = TraceSimulator(Mode.PRECISE)
        output = run_with_frontend(workload, sim, seed=2)
        assert sim.finish().loads > 0
        assert output


class TestParameterMerging:
    def test_small_params_overridable(self):
        workload = get_workload("swaptions", {"n_swaptions": 4}, small=True)
        assert workload.params["n_swaptions"] == 4
        # Other small defaults retained.
        assert workload.params["curve_points"] == 32

    def test_defaults_complete(self):
        for name in ("blackscholes", "canneal", "x264"):
            workload = get_workload(name)
            assert "compute_cost" in workload.params

    def test_unknown_param_raises_with_name(self):
        with pytest.raises(WorkloadError) as excinfo:
            get_workload("swaptions", {"bogus_knob": 1})
        assert "bogus_knob" in str(excinfo.value)

    def test_threads_default_four(self):
        assert get_workload("ferret", small=True).threads == 4
