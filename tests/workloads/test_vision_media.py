"""bodytrack and x264 specific tests: tracking quality, motion search."""

import math

import numpy as np

from repro.sim.frontend import PreciseMemory
from repro.workloads.bodytrack import Bodytrack
from repro.workloads.x264 import X264


class TestBodytrack:
    def test_tracker_follows_the_body(self):
        """Estimates should stay near the ground-truth path."""
        workload = Bodytrack(Bodytrack.small_params())
        estimates = workload.execute(PreciseMemory(), seed=0)
        for t, (ex, ey) in enumerate(estimates):
            tx, ty = workload._true_path(t)
            distance = math.hypot(ex - tx, ey - ty)
            diagonal = math.hypot(workload.params["width"], workload.params["height"])
            assert distance < 0.35 * diagonal, (t, distance)

    def test_one_estimate_per_timestep(self):
        workload = Bodytrack(Bodytrack.small_params())
        estimates = workload.execute(PreciseMemory(), seed=0)
        assert len(estimates) == workload.params["timesteps"]

    def test_rendered_images_are_8bit(self):
        workload = Bodytrack(Bodytrack.small_params())
        rng = np.random.default_rng(0)
        image = workload._render(rng, (20.0, 20.0))
        assert image.min() >= 0 and image.max() <= 255

    def test_body_brighter_than_background(self):
        workload = Bodytrack(Bodytrack.small_params())
        rng = np.random.default_rng(0)
        centre = (32.0, 24.0)
        image = workload._render(rng, centre)
        body_pixel = image[int(centre[1]), int(centre[0])]
        corner_pixel = image[0, 0]
        assert body_pixel > corner_pixel + 100


class TestX264:
    def test_motion_search_finds_global_motion(self):
        """With low noise, the residual PSNR must beat the zero-MV case by
        finding the synthetic global motion."""
        workload = X264(X264.small_params())
        result = workload.execute(PreciseMemory(), seed=0)
        assert result["psnr"] > 25.0  # good prediction

    def test_bits_positive(self):
        workload = X264(X264.small_params())
        result = workload.execute(PreciseMemory(), seed=0)
        assert result["bits"] > 0

    def test_output_keys(self):
        workload = X264(X264.small_params())
        result = workload.execute(PreciseMemory(), seed=0)
        assert set(result) == {"psnr", "bits"}

    def test_sequence_frames_clip_to_8bit(self):
        workload = X264(X264.small_params())
        frames = workload._sequence(np.random.default_rng(0))
        assert len(frames) == workload.params["frames"]
        for frame in frames:
            assert frame.min() >= 0 and frame.max() <= 255

    def test_consecutive_frames_are_shifted_copies(self):
        """The synthetic motion model: frame f ~ frame f-1 shifted."""
        workload = X264(X264.small_params())
        frames = workload._sequence(np.random.default_rng(0))
        a, b = frames[0].astype(float), frames[1].astype(float)
        # Shift a by the known global delta (dx=+2, dy=+1 between f=0,1).
        shifted = np.roll(np.roll(a, 1, axis=0), 2, axis=1)
        unshifted_err = np.abs(b - a).mean()
        shifted_err = np.abs(b - shifted).mean()
        assert shifted_err < unshifted_err
