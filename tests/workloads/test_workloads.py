"""Cross-cutting tests over all seven PARSEC-substitute workloads.

These use the reduced (``small``) instances so the whole module stays fast;
full-scale behaviour is exercised by the benchmark harness.
"""

import pytest

from repro.sim.frontend import PreciseMemory
from repro.sim.tracesim import Mode, TraceSimulator
from repro.workloads.base import PCTable
from repro.workloads.registry import WORKLOADS, get_workload, workload_names
from repro.errors import WorkloadError

ALL = workload_names()


@pytest.fixture(scope="module")
def precise_outputs():
    """Precise outputs of every small workload, computed once."""
    outputs = {}
    for name in ALL:
        workload = get_workload(name, small=True)
        mem = PreciseMemory()
        outputs[name] = (workload, workload.execute(mem, seed=7), mem.instructions)
    return outputs


class TestRegistry:
    def test_all_seven_benchmarks_present(self):
        assert set(ALL) == {
            "blackscholes", "bodytrack", "canneal", "ferret",
            "fluidanimate", "swaptions", "x264",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("nonexistent")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("canneal", {"definitely_not_a_param": 1})

    def test_param_override(self):
        workload = get_workload("canneal", {"steps": 10}, small=True)
        assert workload.params["steps"] == 10

    def test_datatype_annotations_match_paper(self):
        floats = {"blackscholes", "ferret", "fluidanimate", "swaptions"}
        for name, cls in WORKLOADS.items():
            assert cls.float_data == (name in floats)


@pytest.mark.parametrize("name", ALL)
class TestDeterminism:
    def test_same_seed_same_output(self, name, precise_outputs):
        workload, output, _ = precise_outputs[name]
        rerun = get_workload(name, small=True).execute(PreciseMemory(), seed=7)
        assert workload.output_error(output, rerun) == 0.0

    def test_zero_error_against_itself(self, name, precise_outputs):
        workload, output, _ = precise_outputs[name]
        assert workload.output_error(output, output) == 0.0


@pytest.mark.parametrize("name", ALL)
class TestSimulatedExecution:
    def test_precise_simulation_matches_reference(self, name, precise_outputs):
        workload, reference, instructions = precise_outputs[name]
        sim = TraceSimulator(Mode.PRECISE)
        output = get_workload(name, small=True).execute(sim, seed=7)
        assert workload.output_error(reference, output) == 0.0
        # The precise simulator counts the same instructions as the
        # functional reference.
        assert sim.instructions == instructions

    def test_lva_error_bounded(self, name, precise_outputs):
        workload, reference, _ = precise_outputs[name]
        sim = TraceSimulator(Mode.LVA)
        output = get_workload(name, small=True).execute(sim, seed=7)
        error = workload.output_error(reference, output)
        assert 0.0 <= error <= 1.0

    def test_lva_never_increases_effective_mpki(self, name, precise_outputs):
        del precise_outputs
        precise = TraceSimulator(Mode.PRECISE)
        get_workload(name, small=True).execute(precise, seed=7)
        precise_stats = precise.finish()
        lva = TraceSimulator(Mode.LVA)
        get_workload(name, small=True).execute(lva, seed=7)
        lva_stats = lva.finish()
        # Control-flow divergence can shift instruction counts slightly, so
        # compare per-instruction rates with a small tolerance.
        assert lva_stats.mpki <= precise_stats.raw_mpki * 1.05

    def test_loads_touch_annotated_data(self, name, precise_outputs):
        del precise_outputs
        sim = TraceSimulator(Mode.LVA)
        get_workload(name, small=True).execute(sim, seed=7)
        stats = sim.finish()
        assert stats.approx_loads > 0
        assert stats.static_approx_pcs


class TestPCTable:
    def test_sites_stable_and_distinct(self):
        table = PCTable(3)
        a = table.site("alpha")
        b = table.site("beta")
        assert a != b
        assert table.site("alpha") == a

    def test_workload_id_namespaces(self):
        assert PCTable(1).site("x") != PCTable(2).site("x")


class TestErrorMetrics:
    def test_blackscholes_counts_prices_over_1_percent(self):
        workload = get_workload("blackscholes", small=True)
        precise = [100.0, 100.0, 100.0, 100.0]
        approx = [100.5, 102.0, 100.0, 97.0]  # two beyond 1%
        assert workload.output_error(precise, approx) == pytest.approx(0.5)

    def test_swaptions_mean_relative_error(self):
        workload = get_workload("swaptions", small=True)
        assert workload.output_error([1.0, 2.0], [1.1, 2.0]) == pytest.approx(0.05)

    def test_canneal_relative_cost_error(self):
        workload = get_workload("canneal", small=True)
        assert workload.output_error(1000.0, 1100.0) == pytest.approx(0.1)

    def test_ferret_intersection_metric(self):
        workload = get_workload("ferret", small=True)
        precise = [{1, 2, 3, 4}]
        approx = [{1, 2, 9, 10}]
        assert workload.output_error(precise, approx) == pytest.approx(0.5)

    def test_fluidanimate_cell_mismatch_fraction(self):
        workload = get_workload("fluidanimate", small=True)
        assert workload.output_error([1, 2, 3, 4], [1, 2, 9, 9]) == pytest.approx(0.5)

    def test_bodytrack_distance_normalised(self):
        workload = get_workload("bodytrack", small=True)
        assert workload.output_error([(0.0, 0.0)], [(0.0, 0.0)]) == 0.0
        assert workload.output_error([(0.0, 0.0)], [(30.0, 40.0)]) > 0

    def test_x264_psnr_and_bits_weighted(self):
        workload = get_workload("x264", small=True)
        precise = {"psnr": 40.0, "bits": 1000.0}
        approx = {"psnr": 36.0, "bits": 1100.0}
        assert workload.output_error(precise, approx) == pytest.approx(
            0.5 * 0.1 + 0.5 * 0.1
        )
