"""ferret, fluidanimate and swaptions specific behaviours."""

import numpy as np
import pytest

from repro.sim.frontend import PreciseMemory
from repro.workloads.ferret import Ferret
from repro.workloads.fluidanimate import Fluidanimate
from repro.workloads.swaptions import Swaptions, black_swaption_price


class TestFerret:
    def test_topk_sets_have_requested_size(self):
        workload = Ferret(Ferret.small_params())
        results = workload.execute(PreciseMemory(), seed=0)
        assert len(results) == workload.params["queries"]
        for result in results:
            assert len(result) == workload.params["top_k"]

    def test_results_index_into_database(self):
        workload = Ferret(Ferret.small_params())
        results = workload.execute(PreciseMemory(), seed=0)
        n = workload.params["database_size"]
        for result in results:
            assert all(0 <= idx < n for idx in result)

    def test_search_is_cluster_aware(self):
        """Query results should be enriched for the query's own cluster —
        the search finds similar images, not random ones."""
        params = dict(Ferret.small_params())
        params.update({"database_size": 256, "queries": 16, "clusters": 4})
        workload = Ferret(params)

        # Recompute the generator's cluster assignment deterministically.
        rng = np.random.default_rng(9)
        dims = workload.params["dimensions"]
        clusters = workload.params["clusters"]
        n = workload.params["database_size"]
        rng.uniform(0.3, 1.5, size=dims)
        rng.normal(0, 0.15, size=(clusters, dims))
        assignment = rng.integers(0, clusters, size=n)

        results = Ferret(params).execute(PreciseMemory(), seed=9)
        rng2 = np.random.default_rng(9)
        rng2.uniform(0.3, 1.5, size=dims)
        rng2.normal(0, 0.15, size=(clusters, dims))
        assignment2 = rng2.integers(0, clusters, size=n)
        assert (assignment == assignment2).all()  # reconstruction sound

        rng2.normal(0, 0.07, size=(n, dims))
        query_clusters = rng2.integers(0, clusters, size=workload.params["queries"])

        match_fraction = []
        for q, result in enumerate(results):
            same = sum(1 for idx in result if assignment[idx] == query_clusters[q])
            match_fraction.append(same / len(result))
        # Far above the 1/clusters = 25% chance level, on average.
        assert np.mean(match_fraction) > 0.5


class TestFluidanimate:
    def test_cells_in_grid_range(self):
        workload = Fluidanimate(Fluidanimate.small_params())
        cells = workload.execute(PreciseMemory(), seed=0)
        grid = max(int(1.0 / workload.params["smoothing"]), 1)
        assert all(0 <= cell < grid * grid for cell in cells)

    def test_gravity_pulls_fluid_down(self):
        """Mean height must drop relative to the initial configuration
        (the dam break starts collapsing under gravity)."""
        params = dict(Fluidanimate.small_params())
        workload = Fluidanimate(params)
        mem = PreciseMemory()
        workload.execute(mem, seed=0)
        region_y = mem.space.region("py")
        n = workload.params["particles"]
        final_mean_y = np.mean([mem.values[region_y.addr(i)] for i in range(n)])
        # Reconstruct the initial y draw with the same seed/order.
        rng = np.random.default_rng(0)
        rng.uniform(8.05, 8.55, size=n)  # px drawn first
        initial_y = rng.uniform(8.05, 8.95, size=n)
        assert final_mean_y < initial_y.mean()

    def test_densities_published_nonnegative(self):
        workload = Fluidanimate(Fluidanimate.small_params())
        mem = PreciseMemory()
        workload.execute(mem, seed=0)
        region_rho = mem.space.region("rho")
        n = workload.params["particles"]
        assert all(mem.values[region_rho.addr(i)] >= 0 for i in range(n))


class TestSwaptions:
    def test_black_formula_monotone_in_vol(self):
        low = black_swaption_price(0.03, 0.03, 0.10, 2.0, 10.0)
        high = black_swaption_price(0.03, 0.03, 0.40, 2.0, 10.0)
        assert high > low

    def test_deep_itm_swaption_near_intrinsic(self):
        annuity = 10.0
        price = black_swaption_price(0.06, 0.01, 0.05, 0.5, annuity)
        assert price == pytest.approx(annuity * 0.05, rel=0.05)

    def test_prices_positive(self):
        workload = Swaptions(Swaptions.small_params())
        prices = workload.execute(PreciseMemory(), seed=0)
        assert all(price >= 0 for price in prices)
        assert len(prices) == workload.params["n_swaptions"]

    def test_curve_is_heavily_reused(self):
        """The defining property for the paper: near-zero MPKI because the
        curve fits in cache and is re-read constantly."""
        from repro.sim.tracesim import Mode, TraceSimulator

        sim = TraceSimulator(Mode.PRECISE)
        Swaptions(Swaptions.small_params()).execute(sim, seed=0)
        stats = sim.finish()
        assert stats.raw_mpki < 1.0
        assert stats.loads > 10 * stats.raw_misses
