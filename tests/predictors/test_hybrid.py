"""Unit behaviour of the tournament hybrid (repro.predictors.hybrid)."""

from __future__ import annotations

from repro.core.config import ApproximatorConfig
from repro.predictors.hybrid import CHOOSER_MIN, HybridPredictor


def _drive(hybrid, pc, value):
    """One miss round-trip with an immediate (delay-free) training."""
    decision = hybrid.on_miss(pc, is_float=True, addr=0)
    covered = False
    if decision.token is not None:
        covered = hybrid.train(decision.token, value)
    return decision, covered


class TestArbitration:
    def test_defaults_to_lva(self):
        hybrid = HybridPredictor()
        decision, _ = _drive(hybrid, 0x40, 1.0)
        assert hybrid.stats.lva_selected == 1
        assert hybrid.stats.lvp_selected == 0
        assert decision.fetch

    def test_chooser_switches_to_lvp_when_lva_is_wrong(self):
        """Alternating {10, 1000}: the LHB average is always far outside
        the 10% window (LVA wrong) while the exact value is always in the
        oracle snapshot once both values have been seen (LVP right)."""
        hybrid = HybridPredictor()
        values = [10.0, 1000.0] * 16
        for value in values:
            _drive(hybrid, 0x80, value)
        assert hybrid.stats.lvp_selected > 0
        assert hybrid._chooser[0x80] == CHOOSER_MIN
        # LVP-driven correct oracle predictions were reported as covered.
        assert hybrid.stats.lvp_correct_trainings > hybrid.stats.lva_correct_trainings

    def test_lvp_choice_covers_only_on_correct_oracle(self):
        hybrid = HybridPredictor()
        hybrid._chooser[0x80] = CHOOSER_MIN  # force the LVP side
        seen_covered = []
        for value in [10.0, 1000.0] * 8:
            decision, covered = _drive(hybrid, 0x80, value)
            assert decision.value is None  # LVP side never clobbers
            seen_covered.append(covered)
        assert any(seen_covered)

    def test_stable_stream_stays_with_lva_and_approximates(self):
        hybrid = HybridPredictor()
        for _ in range(16):
            _drive(hybrid, 0xC0, 5.0)
        assert hybrid.stats.lvp_selected == 0
        assert hybrid.stats.approximations > 0

    def test_both_components_train_regardless_of_choice(self):
        hybrid = HybridPredictor()
        hybrid._chooser[0x40] = CHOOSER_MIN  # LVP drives...
        for value in (1.0, 2.0, 3.0):
            _drive(hybrid, 0x40, value)
        # ...but the LVA component's table still learned the stream.
        assert hybrid.lva.stats.trainings == 3
        assert hybrid.lvp.stats.lookups == 3

    def test_reset_clears_components_and_chooser(self):
        hybrid = HybridPredictor(ApproximatorConfig(lhb_size=2))
        for value in [10.0, 1000.0] * 8:
            _drive(hybrid, 0x80, value)
        hybrid.reset()
        assert hybrid.stats.lookups == 0
        assert hybrid._chooser == {}
        assert hybrid.allocated_entries == 0
