"""The predictor registry contract (repro.predictors).

Every registered predictor — current and future — must satisfy the same
observable contract when driven through the standard pipeline: stats are
deterministic, rollback predictors have zero output error, unknown names
fail with an inventory, and no two predictors can share a cache entry.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import predictors
from repro.api import Simulation
from repro.core.config import ApproximatorConfig
from repro.errors import ConfigurationError
from repro.experiments.common import technique_disk_key
from repro.predictors import MissPredictor
from repro.sim.tracesim import Mode, TraceSimulator

#: Smallest workload in the registry — keeps the parametrized matrix cheap.
WORKLOAD = "swaptions"

ALL = predictors.available_predictors()


def _run(name: str, seed: int = 0):
    return (
        Simulation.builder()
        .workload(WORKLOAD, small=True)
        .predictor(name)
        .seed(seed)
        .compare_precise()
        .run()
    )


class TestRegistryShape:
    def test_builtin_predictors_are_registered(self):
        assert {"lva", "lvp", "clp", "hybrid"} <= set(ALL)

    @pytest.mark.parametrize("name", ALL)
    def test_every_entry_satisfies_the_protocol(self, name):
        built = predictors.create(name)
        assert isinstance(built, MissPredictor)
        assert isinstance(built.config, ApproximatorConfig)
        assert built.allocated_entries == 0
        built.reset()

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError) as excinfo:
            predictors.create("definitely-not-registered")
        message = str(excinfo.value)
        for name in ALL:
            assert name in message

    def test_unknown_name_fails_at_the_builder_too(self):
        with pytest.raises(ConfigurationError, match="available"):
            Simulation.builder().workload(WORKLOAD).predictor("nope")

    def test_duplicate_registration_rejected(self):
        info = predictors.get_info("lva")
        with pytest.raises(ConfigurationError, match="already registered"):
            predictors.register_predictor(info)


class TestRegistryContract:
    @pytest.mark.parametrize("name", ALL)
    def test_deterministic_stats_across_two_seeded_runs(self, name):
        first = _run(name, seed=3)
        second = _run(name, seed=3)
        assert first.stats == second.stats
        assert first.mpki == second.mpki
        assert first.coverage == second.coverage
        assert first.output_error == second.output_error

    @pytest.mark.parametrize(
        "name",
        [n for n in ALL if predictors.get_info(n).zero_output_error],
    )
    def test_rollback_predictors_have_zero_output_error(self, name):
        assert _run(name).output_error == 0.0

    def test_lvp_and_clp_declare_zero_output_error(self):
        assert predictors.get_info("lvp").zero_output_error
        assert predictors.get_info("clp").zero_output_error

    @pytest.mark.parametrize("name", ALL)
    def test_cache_keys_differ_across_predictor_names(self, name):
        keys = {
            technique_disk_key(
                WORKLOAD,
                Mode.PREDICTOR,
                ApproximatorConfig(predictor=other),
                4,
                0,
                True,
                (),
            )
            for other in ALL
        }
        assert len(keys) == len(ALL)
        # ... and the override key component splits again from all of them.
        overridden = technique_disk_key(
            WORKLOAD,
            Mode.PREDICTOR,
            ApproximatorConfig(predictor=name),
            4,
            0,
            True,
            (),
            predictor_override="clp",
        )
        assert overridden not in keys


class TestModeResolution:
    def test_fixed_modes_pin_their_historical_names(self):
        assert TraceSimulator(Mode.LVA).predictor_name == "lva"
        assert TraceSimulator(Mode.LVP).predictor_name == "lvp"
        assert TraceSimulator(Mode.PRECISE).predictor_name is None

    def test_predictor_mode_reads_the_config_field(self):
        sim = TraceSimulator(
            Mode.PREDICTOR,
            approximator_config=ApproximatorConfig(predictor="clp"),
        )
        assert sim.predictor_name == "clp"
        assert sim.generic_predictor is not None
        assert sim.approximator is None and sim.predictor is None

    def test_env_override_retargets_predictor_mode_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREDICTOR", "hybrid")
        assert TraceSimulator(Mode.PREDICTOR).predictor_name == "hybrid"
        assert TraceSimulator(Mode.LVA).predictor_name == "lva"
        assert predictors.active_override("lva") == ""
        assert predictors.active_override("predictor") == "hybrid"

    def test_result_summary_names_the_predictor(self):
        result = _run("clp")
        assert result.predictor == "clp"
        assert "predictor[clp]" in result.summary()

    def test_fixed_mode_summary_is_unchanged(self):
        result = (
            Simulation.builder()
            .workload(WORKLOAD, small=True)
            .approximator()
            .run()
        )
        assert result.summary().startswith(f"{WORKLOAD}/lva:")


class TestBitIdentityWithFixedModes:
    @pytest.mark.parametrize("fixed,name", [(Mode.LVA, "lva"), (Mode.LVP, "lvp")])
    def test_registry_resolution_matches_hardcoded_mode(self, fixed, name):
        from repro.experiments.common import run_technique

        direct = run_technique(WORKLOAD, fixed, small=True)
        registry = run_technique(
            WORKLOAD,
            Mode.PREDICTOR,
            config=ApproximatorConfig(predictor=name),
            small=True,
        )
        assert dataclasses.asdict(direct) == dataclasses.asdict(registry)
