"""The repro.core.predictor deprecation shims.

The LVP implementation moved to repro.predictors.lvp; the old module
must keep serving every public name — warning exactly once per name and
returning the very object the registry serves.
"""

from __future__ import annotations

import warnings

import pytest

import repro.core.predictor as shim_module
from repro.predictors import lvp


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    saved = set(shim_module._warned)
    shim_module._warned.clear()
    yield
    shim_module._warned.clear()
    shim_module._warned.update(saved)


class TestShims:
    @pytest.mark.parametrize("name", shim_module._MOVED)
    def test_shim_warns_exactly_once_and_returns_registry_object(self, name):
        with pytest.warns(DeprecationWarning, match=name):
            first = getattr(shim_module, name)
        assert first is getattr(lvp, name)
        # Second access: same object, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert getattr(shim_module, name) is first

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            shim_module.NoSuchThing

    def test_package_reexports_do_not_warn(self):
        """`repro` and `repro.core` bind the new home at import time."""
        import repro
        import repro.core

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert repro.IdealizedLoadValuePredictor is lvp.IdealizedLoadValuePredictor
            assert repro.core.PredictionDecision is lvp.PredictionDecision

    def test_legacy_builder_form_warns(self):
        from repro.api import Simulation

        builder = Simulation.builder().workload("swaptions", small=True)
        with pytest.warns(DeprecationWarning, match="registry name"):
            builder.predictor()
        assert builder._mode_name == "lvp"

    def test_legacy_positional_config_form_warns(self):
        from repro.api import Simulation
        from repro.core.config import ApproximatorConfig

        config = ApproximatorConfig(ghb_size=2)
        builder = Simulation.builder().workload("swaptions", small=True)
        with pytest.warns(DeprecationWarning):
            builder.predictor(config)
        assert builder._mode_name == "lvp"
        assert builder._config is config
