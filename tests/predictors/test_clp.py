"""Unit behaviour of the cache-level predictor (repro.predictors.clp)."""

from __future__ import annotations

from repro.core.config import ApproximatorConfig
from repro.predictors.clp import (
    CLP_BLOCK_BITS,
    CLP_L2_BLOCKS,
    LEVEL_L2,
    LEVEL_MEMORY,
    CacheLevelPredictor,
)

BLOCK = 1 << CLP_BLOCK_BITS


def _drive(clp, pc, addr):
    """One miss round-trip: probe, then train with an arbitrary value."""
    decision = clp.on_miss(pc, is_float=False, addr=addr)
    covered = clp.train(decision.token, 0)
    return decision, covered


class TestHierarchyModel:
    def test_first_touch_fills_from_memory_then_hits_l2(self):
        clp = CacheLevelPredictor()
        first, _ = _drive(clp, pc=0x40, addr=0x1000)
        assert first.token.actual_level == LEVEL_MEMORY
        again, _ = _drive(clp, pc=0x40, addr=0x1000)
        assert again.token.actual_level == LEVEL_L2
        assert clp.stats.memory_fills == 1
        assert clp.stats.l2_hits == 1

    def test_l2_is_lru_bounded(self):
        clp = CacheLevelPredictor()
        clp.on_miss(0x40, False, addr=0)
        # Evict block 0 by filling the whole modelled L2 with other blocks.
        for i in range(1, CLP_L2_BLOCKS + 1):
            clp.on_miss(0x40, False, addr=i * BLOCK)
        refetch = clp.on_miss(0x40, False, addr=0)
        assert refetch.token.actual_level == LEVEL_MEMORY


class TestPredictions:
    def test_cold_entry_does_not_predict(self):
        clp = CacheLevelPredictor()
        decision = clp.on_miss(0x40, False, addr=0x1000)
        assert not decision.predicted
        assert decision.token.predicted_level is None
        assert clp.stats.cold_misses == 1

    def test_history_majority_predicts_and_counts_coverage(self):
        clp = CacheLevelPredictor()
        _drive(clp, 0x40, 0x1000)  # memory; trains history [MEMORY]
        decision, covered = _drive(clp, 0x40, 0x1000)  # actually L2 now
        # One MEMORY observation in history -> predicted MEMORY, actual L2.
        assert decision.token.predicted_level == LEVEL_MEMORY
        assert not covered
        # History now [MEMORY, L2]; tie predicts the deeper level.
        decision, _ = _drive(clp, 0x40, 0x1000)
        assert decision.token.predicted_level == LEVEL_MEMORY
        # After enough L2 observations the majority flips and predicts right.
        decision, covered = _drive(clp, 0x40, 0x1000)
        assert decision.token.predicted_level == LEVEL_L2
        assert decision.token.actual_level == LEVEL_L2
        assert covered
        assert clp.stats.correct >= 1

    def test_never_returns_a_value(self):
        clp = CacheLevelPredictor()
        for i in range(32):
            decision = clp.on_miss(0x40 + 8 * i, bool(i % 2), addr=0x2000 + i * BLOCK)
            assert decision.value is None
            assert decision.fetch
            clp.train(decision.token, 1.5 * i)

    def test_reset_clears_everything(self):
        clp = CacheLevelPredictor(ApproximatorConfig(lhb_size=2))
        _drive(clp, 0x40, 0x1000)
        assert clp.allocated_entries == 1
        clp.reset()
        assert clp.allocated_entries == 0
        assert clp.stats.lookups == 0
        decision = clp.on_miss(0x40, False, addr=0x1000)
        assert decision.token.actual_level == LEVEL_MEMORY  # L2 cleared too
