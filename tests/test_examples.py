"""Smoke tests: the lightweight example scripts must run end-to-end.

The heavier examples (full design-space sweeps, full-system replays) are
exercised by the benchmark harness; here we run the quick ones as real
subprocesses so import errors, API drift or print regressions surface.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestQuickExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "coverage" in out
        assert "degree 16" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py")
        assert "stencil" in out.lower()
        assert "baseline" in out

    def test_annotation_audit(self, tmp_path):
        out = run_example("annotation_audit.py")
        assert "address-like" in out
        assert "annotation audit" in out

    def test_figure1_bodytrack(self, tmp_path):
        out = run_example("figure1_bodytrack.py", str(tmp_path))
        assert "output error" in out
        assert (tmp_path / "figure1_precise.pgm").exists()
        assert (tmp_path / "figure1_approximate.pgm").exists()
        header = (tmp_path / "figure1_precise.pgm").read_text().splitlines()[0]
        assert header == "P2"
