"""Capstone checks of the paper's central claims (Sections I and III).

Each test encodes one sentence of the paper as an executable assertion,
at small scale so the whole module runs in seconds.
"""

import pytest

from repro import (
    ApproximatorConfig,
    INFINITE_WINDOW,
    Mode,
    TraceSimulator,
    get_workload,
)
from repro.core.approximator import LoadValueApproximator
from repro.sim.frontend import PreciseMemory


class TestNoRollbacks:
    """'Since inexactness is acceptable, rollbacks are eliminated.'"""

    def test_inexact_values_flow_into_output_without_reexecution(self):
        workload = get_workload("canneal", small=True)
        reference = workload.execute(PreciseMemory(), 3)
        sim = TraceSimulator(Mode.LVA)
        approx = get_workload("canneal", small=True).execute(sim, 3)
        stats = sim.finish()
        # Approximations happened, the program ran to completion, and the
        # output (possibly different) is still a valid placement cost.
        assert stats.covered_misses > 0
        assert approx > 0
        assert workload.output_error(reference, approx) < 1.0

    def test_approximator_never_requests_reexecution(self):
        # The decision object has no rollback channel at all: the only
        # outputs are (value, fetch, token). The decision is a slots
        # dataclass (no __dict__), so enumerate its declared fields.
        import dataclasses

        approx = LoadValueApproximator()
        decision = approx.on_miss(0x400, True)
        names = {f.name for f in dataclasses.fields(decision)}
        assert names == {"approximated", "value", "fetch", "token"}


class TestCoverageVsPrediction:
    """'Load value approximation achieves greater coverage by employing
    relaxed confidence windows.'"""

    def test_lva_covers_more_than_idealized_lvp_on_floats(self):
        def coverage(mode):
            sim = TraceSimulator(mode)
            get_workload("fluidanimate", small=True).execute(sim, 3)
            return sim.finish().coverage

        assert coverage(Mode.LVA) > coverage(Mode.LVP)


class TestFetchDecoupling:
    """'Load value approximation eliminates the one-to-one ratio of cache
    misses to cache fetches.'"""

    def test_traditional_prediction_is_pinned_to_one_to_one(self):
        sim = TraceSimulator(Mode.LVP)
        get_workload("canneal", small=True).execute(sim, 3)
        stats = sim.finish()
        assert stats.fetches == stats.raw_misses

    def test_degree_breaks_the_ratio(self):
        config = ApproximatorConfig(approximation_degree=8)
        sim = TraceSimulator(Mode.LVA, approximator_config=config)
        get_workload("canneal", small=True).execute(sim, 3)
        stats = sim.finish()
        assert stats.fetches < stats.raw_misses

    def test_degree_ratio_approaches_one_over_degree_plus_one(self):
        config = ApproximatorConfig(
            approximation_degree=4, apply_confidence_to_ints=False
        )
        sim = TraceSimulator(Mode.LVA, approximator_config=config)
        get_workload("canneal", small=True).execute(sim, 3)
        stats = sim.finish()
        covered_fetch_ratio = 1 - stats.fetches_avoided / max(stats.covered_misses, 1)
        assert covered_fetch_ratio == pytest.approx(1 / 5, abs=0.1)


class TestPerformanceErrorSpectrum:
    """'Relaxed confidence windows create a performance-error tradeoff.'"""

    def test_spectrum_endpoints(self):
        def point(window):
            workload = get_workload("blackscholes", small=True)
            reference = workload.execute(PreciseMemory(), 3)
            config = ApproximatorConfig(confidence_window=window)
            sim = TraceSimulator(Mode.LVA, approximator_config=config)
            output = get_workload("blackscholes", small=True).execute(sim, 3)
            stats = sim.finish()
            return stats.mpki, workload.output_error(reference, output)

        strict_mpki, strict_error = point(0.0)
        relaxed_mpki, relaxed_error = point(INFINITE_WINDOW)
        assert relaxed_mpki <= strict_mpki   # performance end
        assert relaxed_error >= strict_error  # error end
