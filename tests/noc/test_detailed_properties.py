"""Further detailed-NoC behaviour: conservation, stats, VC plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.detailed import DetailedMeshNetwork, DetailedNocConfig


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 6)),
        min_size=1,
        max_size=25,
    )
)
def test_every_packet_delivered(packets):
    """Flit conservation: nothing is ever dropped or duplicated."""
    net = DetailedMeshNetwork()
    for src, dst, size in packets:
        net.inject(src, dst, size)
    stats = net.run(max_cycles=20_000)
    assert stats.delivered == stats.injected == len(packets)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
        min_size=1,
        max_size=20,
    )
)
def test_latency_at_least_pipeline_minimum(pairs):
    """No packet beats the router-pipeline lower bound."""
    net = DetailedMeshNetwork()
    ids = [net.inject(src, dst, 3) for src, dst in pairs]
    net.run(max_cycles=20_000)
    for (src, dst), pid in zip(pairs, ids):
        latency = net.packet_latency(pid)
        hops = net.topology.hop_count(src, dst)
        minimum = net.config.router_latency * (hops + 1)
        assert latency >= minimum


def test_flit_hops_equals_size_times_distance():
    net = DetailedMeshNetwork(DetailedNocConfig(width=3, height=3))
    net.inject(0, 8, size_flits=7)  # 4 hops
    net.run()
    assert net.stats.flit_hops == 7 * 4


def test_average_latency_stat():
    net = DetailedMeshNetwork()
    a = net.inject(0, 1, 2)
    b = net.inject(2, 3, 2)
    net.run()
    expected = (net.packet_latency(a) + net.packet_latency(b)) / 2
    assert net.stats.average_latency == pytest.approx(expected)


def test_more_vcs_do_not_hurt_throughput():
    """Extra virtual channels should never slow completion of a batch."""

    def completion_cycle(vcs):
        net = DetailedMeshNetwork(DetailedNocConfig(vcs=vcs, buffer_depth=2))
        rng = np.random.default_rng(7)
        for _ in range(24):
            src, dst = rng.integers(0, 4, 2)
            net.inject(int(src), int(dst), 4, time=0)
        net.run(max_cycles=50_000)
        return net.cycle

    assert completion_cycle(4) <= completion_cycle(1) * 1.2


def test_packet_latency_none_until_delivered():
    net = DetailedMeshNetwork()
    pid = net.inject(0, 3, 4)
    assert net.packet_latency(pid) is None
    net.run()
    assert net.packet_latency(pid) is not None

    assert net.packet_latency(999) is None  # unknown id
