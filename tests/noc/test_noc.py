"""Tests for the mesh topology, links and network timing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.noc.network import MeshNetwork, NocConfig
from repro.noc.router import Link
from repro.noc.topology import MeshTopology


class TestTopology:
    def test_2x2_coords(self):
        mesh = MeshTopology(2, 2)
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(1) == (1, 0)
        assert mesh.coords(2) == (0, 1)
        assert mesh.coords(3) == (1, 1)

    def test_node_at_roundtrip(self):
        mesh = MeshTopology(4, 3)
        for node in range(mesh.num_nodes):
            assert mesh.node_at(*mesh.coords(node)) == node

    def test_route_x_before_y(self):
        mesh = MeshTopology(3, 3)
        route = mesh.route(0, 8)  # (0,0) -> (2,2)
        assert route == [(0, 1), (1, 2), (2, 5), (5, 8)]

    def test_route_to_self_is_empty(self):
        assert MeshTopology(2, 2).route(3, 3) == []

    def test_hop_count_is_manhattan(self):
        mesh = MeshTopology(4, 4)
        assert mesh.hop_count(0, 15) == 6
        assert mesh.hop_count(5, 6) == 1

    def test_route_length_equals_hop_count(self):
        mesh = MeshTopology(4, 4)
        for src in range(16):
            for dst in range(16):
                assert len(mesh.route(src, dst)) == mesh.hop_count(src, dst)

    def test_bad_node_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshTopology(2, 2).coords(4)


class TestLink:
    def test_uncontended_transfer(self):
        link = Link()
        assert link.transfer(10, 5) == 15

    def test_queueing_behind_earlier_packet(self):
        link = Link()
        link.transfer(10, 5)          # occupies [10, 15)
        assert link.transfer(12, 2) == 17
        assert link.stats.queueing_cycles == 3

    def test_low_priority_waits_for_both_classes(self):
        link = Link()
        link.transfer(0, 10)                      # high: [0, 10)
        assert link.transfer(0, 2, low_priority=True) == 12

    def test_high_priority_ignores_low(self):
        link = Link()
        link.transfer(0, 10, low_priority=True)   # low:  [0, 10)
        assert link.transfer(0, 2) == 2           # high sails through


class TestNetwork:
    def test_local_delivery_costs_one_router(self):
        net = MeshNetwork()
        timings = net.send(0, 0, departure=0, flits=5)
        assert timings.latency == 3

    def test_one_hop_latency(self):
        net = MeshNetwork()
        # injection router (3) + hop router (3) + serialization (flits)
        timings = net.send(0, 1, departure=0, flits=5)
        assert timings.latency == 3 + 3 + 5

    def test_two_hop_latency(self):
        net = MeshNetwork()
        timings = net.send(0, 3, departure=0, flits=5)
        assert timings.latency == 3 + 3 + 3 + 5

    def test_contention_increases_latency(self):
        net = MeshNetwork()
        first = net.send(0, 1, departure=0, flits=8)
        second = net.send(0, 1, departure=0, flits=8)
        assert second.latency > first.latency

    def test_flit_hops_accumulate(self):
        net = MeshNetwork()
        net.send(0, 3, departure=0, flits=5)  # 2 hops x 5 flits
        assert net.stats.flit_hops == 10

    def test_data_flits_for_64b_block(self):
        config = NocConfig(flit_bytes=32)
        assert config.data_flits(64) == 3  # head + 2 payload

    def test_request_reply_roundtrip(self):
        net = MeshNetwork()
        timings = net.request_reply(0, 3, departure=0)
        one_way_control = 3 + 3 + 3 + 1
        one_way_data = 3 + 3 + 3 + net.config.data_flits(64)
        assert timings.latency == one_way_control + one_way_data

    def test_reset(self):
        net = MeshNetwork()
        net.send(0, 1, 0, 4)
        net.reset()
        assert net.stats.packets == 0
        assert net.send(0, 1, 0, 4).latency == 3 + 3 + 4

    @settings(max_examples=25)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 1000)),
            min_size=1,
            max_size=50,
        )
    )
    def test_arrival_never_before_minimum(self, sends):
        net = MeshNetwork()
        for src, dst, departure in sends:
            timings = net.send(src, dst, departure, flits=4)
            minimum = 3 * (1 + net.topology.hop_count(src, dst))
            if src != dst:
                minimum += 4
            assert timings.latency >= minimum
