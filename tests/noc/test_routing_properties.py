"""Property tests on mesh routing invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.noc.topology import MeshTopology

mesh_dims = st.tuples(st.integers(1, 6), st.integers(1, 6))


@given(mesh_dims, st.data())
def test_route_is_connected_path(dims, data):
    """Consecutive links share a node; the path starts at src, ends at dst."""
    width, height = dims
    mesh = MeshTopology(width, height)
    src = data.draw(st.integers(0, mesh.num_nodes - 1))
    dst = data.draw(st.integers(0, mesh.num_nodes - 1))
    route = mesh.route(src, dst)
    if not route:
        assert src == dst
        return
    assert route[0][0] == src
    assert route[-1][1] == dst
    for (a, b), (c, _) in zip(route, route[1:]):
        assert b == c


@given(mesh_dims, st.data())
def test_every_hop_is_a_mesh_neighbour(dims, data):
    width, height = dims
    mesh = MeshTopology(width, height)
    src = data.draw(st.integers(0, mesh.num_nodes - 1))
    dst = data.draw(st.integers(0, mesh.num_nodes - 1))
    for a, b in mesh.route(src, dst):
        ax, ay = mesh.coords(a)
        bx, by = mesh.coords(b)
        assert abs(ax - bx) + abs(ay - by) == 1


@given(mesh_dims, st.data())
def test_route_never_revisits_a_node(dims, data):
    """XY dimension-order routing is minimal: no node appears twice."""
    width, height = dims
    mesh = MeshTopology(width, height)
    src = data.draw(st.integers(0, mesh.num_nodes - 1))
    dst = data.draw(st.integers(0, mesh.num_nodes - 1))
    route = mesh.route(src, dst)
    visited = [src] + [b for _, b in route]
    assert len(visited) == len(set(visited))


@given(mesh_dims, st.data())
def test_route_length_is_manhattan_distance(dims, data):
    width, height = dims
    mesh = MeshTopology(width, height)
    src = data.draw(st.integers(0, mesh.num_nodes - 1))
    dst = data.draw(st.integers(0, mesh.num_nodes - 1))
    assert len(mesh.route(src, dst)) == mesh.hop_count(src, dst)
