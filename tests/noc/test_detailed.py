"""Tests for the flit-level detailed NoC model."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.noc.detailed import (
    DetailedMeshNetwork,
    DetailedNocConfig,
    EAST,
    LOCAL,
    NORTH,
    SOUTH,
    WEST,
)
from repro.noc.network import MeshNetwork


class TestSinglePacket:
    def test_delivery(self):
        net = DetailedMeshNetwork()
        pid = net.inject(0, 3, size_flits=5)
        stats = net.run()
        assert stats.delivered == 1
        assert net.packet_latency(pid) is not None

    def test_local_delivery(self):
        net = DetailedMeshNetwork()
        net.inject(2, 2, size_flits=1)
        assert net.run().delivered == 1

    def test_unloaded_latency_close_to_fast_model(self):
        """Calibration: the analytical model should track the detailed one
        for a single unloaded packet within a small margin."""
        detailed = DetailedMeshNetwork()
        pid = detailed.inject(0, 3, size_flits=5)
        detailed.run()
        detailed_latency = detailed.packet_latency(pid)

        fast = MeshNetwork()
        fast_latency = fast.send(0, 3, 0, 5).latency

        assert abs(detailed_latency - fast_latency) <= 6

    def test_flit_hops_counted(self):
        net = DetailedMeshNetwork()
        net.inject(0, 3, size_flits=4)  # 2 hops x 4 flits
        net.run()
        assert net.stats.flit_hops == 8

    def test_latency_grows_with_distance(self):
        near = DetailedMeshNetwork(DetailedNocConfig(width=4, height=4))
        a = near.inject(0, 1, 4)
        near.run()
        far = DetailedMeshNetwork(DetailedNocConfig(width=4, height=4))
        b = far.inject(0, 15, 4)
        far.run()
        assert far.packet_latency(b) > near.packet_latency(a)


class TestContention:
    def test_two_packets_one_link_serialise(self):
        net = DetailedMeshNetwork()
        first = net.inject(0, 1, size_flits=8)
        second = net.inject(0, 1, size_flits=8)
        net.run()
        assert net.packet_latency(second) > net.packet_latency(first)

    def test_wormhole_packets_do_not_interleave(self):
        """With one VC, a granted output carries a whole packet before the
        next may begin — both still arrive, in order."""
        config = DetailedNocConfig(vcs=1, buffer_depth=2)
        net = DetailedMeshNetwork(config)
        net.inject(0, 3, size_flits=6)
        net.inject(1, 3, size_flits=6)
        stats = net.run()
        assert stats.delivered == 2

    def test_heavy_load_saturates(self):
        """Offered load beyond capacity inflates average latency."""
        light = DetailedMeshNetwork()
        for i in range(4):
            light.inject(i % 4, (i + 1) % 4, 4, time=i * 40)
        light_stats = light.run()

        heavy = DetailedMeshNetwork()
        for i in range(64):
            heavy.inject(i % 4, (i + 2) % 4, 4, time=0)
        heavy_stats = heavy.run(max_cycles=100_000)

        assert heavy_stats.delivered == 64
        assert heavy_stats.average_latency > light_stats.average_latency

    def test_no_flits_lost_under_pressure(self):
        net = DetailedMeshNetwork(DetailedNocConfig(buffer_depth=1, vcs=1))
        for i in range(32):
            net.inject(0, 3, size_flits=3, time=0)
        stats = net.run(max_cycles=50_000)
        assert stats.delivered == 32


class TestRoutingPorts:
    def test_output_port_directions(self):
        net = DetailedMeshNetwork(DetailedNocConfig(width=3, height=3))
        centre = 4  # (1, 1)
        assert net._output_port(centre, 5) == EAST   # (2,1)
        assert net._output_port(centre, 3) == WEST   # (0,1)
        assert net._output_port(centre, 7) == SOUTH  # (1,2)
        assert net._output_port(centre, 1) == NORTH  # (1,0)
        assert net._output_port(centre, 4) == LOCAL

    def test_x_before_y(self):
        net = DetailedMeshNetwork(DetailedNocConfig(width=3, height=3))
        # from (0,0) to (2,2): go EAST first.
        assert net._output_port(0, 8) == EAST


class TestValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            DetailedNocConfig(vcs=0)
        with pytest.raises(ConfigurationError):
            DetailedNocConfig(buffer_depth=0)

    def test_injecting_in_past_rejected(self):
        net = DetailedMeshNetwork()
        net.inject(0, 1, 1)
        net.run(max_cycles=20)
        with pytest.raises(SimulationError):
            net.inject(0, 1, 1, time=0)

    def test_zero_flit_packet_rejected(self):
        with pytest.raises(ConfigurationError):
            DetailedMeshNetwork().inject(0, 1, 0)
