"""LVA009 — no in-place writes into mmap-backed arrays.

The taint source is ``np.load(..., mmap_mode=...)`` or a configured
provider (``app.store:Store.get``); the taint survives views (names,
subscripts, ``reshape``/``T``) and dies at copies (``np.array``,
arithmetic). Writes through any tainted value — subscript stores,
augmented assignment, mutating methods, ``np.copyto``-family calls —
are violations.
"""

from __future__ import annotations

import textwrap
from typing import Dict, List

from repro.analysis import AnalysisConfig, check_sources
from repro.analysis.core import Violation

SELECT = frozenset({"LVA009"})

CONFIG = AnalysisConfig(
    sim_packages=("app.sim",),
    worker_modules=("app.pool",),
    kernel_modules=("app.kernels",),
    flow_entry_points=(),
    flow_exempt_modules=(),
    mmap_providers=("app.store:Store.get",),
    envspec_module="app.envspec",
    env_prefix="APP_",
    env_registry=(("APP_UNUSED", "neutral", "t", ""),),
)

STORE = """\
    class Store:
        def get(self, key):
            return None
    """


def run(sources: Dict[str, str]) -> List[Violation]:
    return check_sources(
        {module: textwrap.dedent(source) for module, source in sources.items()},
        config=CONFIG,
        select=SELECT,
    )


class TestDirectMmapLoads:
    def test_subscript_store_flagged(self):
        violations = run(
            {
                "app.reader": """\
                    import numpy as np

                    def patch(path):
                        arr = np.load(path, mmap_mode="r")
                        arr[0] = 1.0
                        return arr
                    """,
            }
        )
        assert len(violations) == 1
        violation = violations[0]
        assert violation.rule_id == "LVA009"
        assert violation.line == 5
        assert "materialize a copy" in violation.message

    def test_augmented_assignment_flagged(self):
        violations = run(
            {
                "app.reader": """\
                    import numpy as np

                    def bump(path):
                        arr = np.load(path, mmap_mode="r")
                        arr[3] += 1.0
                    """,
            }
        )
        assert len(violations) == 1

    def test_mutating_method_flagged(self):
        violations = run(
            {
                "app.reader": """\
                    import numpy as np

                    def wipe(path):
                        arr = np.load(path, mmap_mode="r")
                        arr.fill(0.0)
                    """,
            }
        )
        assert len(violations) == 1

    def test_write_through_view_flagged(self):
        violations = run(
            {
                "app.reader": """\
                    import numpy as np

                    def patch(path):
                        arr = np.load(path, mmap_mode="r")
                        view = arr.reshape(-1)
                        view[0] = 1.0
                    """,
            }
        )
        assert len(violations) == 1

    def test_np_copyto_into_mapped_destination_flagged(self):
        violations = run(
            {
                "app.reader": """\
                    import numpy as np

                    def overwrite(path, values):
                        arr = np.load(path, mmap_mode="r")
                        np.copyto(arr, values)
                    """,
            }
        )
        assert len(violations) == 1

    def test_plain_load_without_mmap_clean(self):
        violations = run(
            {
                "app.reader": """\
                    import numpy as np

                    def patch(path):
                        arr = np.load(path)
                        arr[0] = 1.0
                    """,
            }
        )
        assert violations == []

    def test_copy_sheds_the_taint(self):
        violations = run(
            {
                "app.reader": """\
                    import numpy as np

                    def patch(path):
                        arr = np.load(path, mmap_mode="r")
                        out = np.array(arr)
                        out[0] = 1.0
                        shifted = arr + 1.0
                        shifted[1] = 2.0
                        return out, shifted
                    """,
            }
        )
        assert violations == []


class TestProviderTaint:
    def test_store_get_result_is_mapped(self):
        violations = run(
            {
                "app.store": STORE,
                "app.reader": """\
                    from app.store import Store

                    def patch(key):
                        store = Store()
                        cols = store.get(key)
                        cols[0] = 1.0
                    """,
            }
        )
        assert len(violations) == 1
        assert violations[0].path == "<app.reader>"

    def test_taint_crosses_function_boundaries(self):
        violations = run(
            {
                "app.store": STORE,
                "app.loader": """\
                    from app.store import Store

                    def fetch(key):
                        return Store().get(key)
                    """,
                "app.reader": """\
                    from app.loader import fetch

                    def patch(key):
                        cols = fetch(key)
                        cols[0] = 1.0
                    """,
            }
        )
        assert len(violations) == 1
        assert violations[0].path == "<app.reader>"

    def test_reading_is_clean(self):
        violations = run(
            {
                "app.store": STORE,
                "app.reader": """\
                    from app.store import Store

                    def total(key):
                        cols = Store().get(key)
                        return cols.sum()
                    """,
            }
        )
        assert violations == []
