"""LVA006 fixture tests: guarded hook calls, no module API on the hot path."""

from __future__ import annotations

import textwrap

from repro.analysis import check_source


def _hits(source: str, module: str = "repro.sim.snippet"):
    violations = check_source(textwrap.dedent(source), module=module)
    return [(v.line, v.rule_id) for v in violations if v.rule_id == "LVA006"]


class TestGuardedHookCalls:
    def test_unguarded_hook_call_fires(self):
        assert _hits(
            """\
            class TraceSimulator:
                def _serve_load(self, pc, addr):
                    self._tel.on_load(self.stats)
            """
        ) == [(3, "LVA006")]

    def test_is_not_none_guard_is_clean(self):
        assert (
            _hits(
                """\
                class TraceSimulator:
                    def _serve_load(self, pc, addr):
                        if self._tel is not None:
                            self._tel.on_load(self.stats)
                """
            )
            == []
        )

    def test_truthiness_guard_is_clean(self):
        assert (
            _hits(
                """\
                class TraceSimulator:
                    def _serve_load(self, pc, addr):
                        if self._tel:
                            self._tel.on_load(self.stats)
                """
            )
            == []
        )

    def test_conjunction_guard_is_clean(self):
        assert (
            _hits(
                """\
                class TraceSimulator:
                    def _fetch(self, addr):
                        if dropped and self._tel is not None:
                            self._tel.on_fault("fetch_drop", addr)
                """
            )
            == []
        )

    def test_call_in_else_branch_fires(self):
        assert _hits(
            """\
            class TraceSimulator:
                def _serve_load(self, pc, addr):
                    if self._tel is not None:
                        pass
                    else:
                        self._tel.on_load(self.stats)
            """
        ) == [(6, "LVA006")]

    def test_guard_on_other_attribute_fires(self):
        assert _hits(
            """\
            class TraceSimulator:
                def _serve_load(self, pc, addr):
                    if self.recorder is not None:
                        self._tel.on_load(self.stats)
            """
        ) == [(4, "LVA006")]

    def test_nested_guard_carries_into_inner_blocks(self):
        assert (
            _hits(
                """\
                class TraceSimulator:
                    def _serve_load(self, pc, addr):
                        if self._tel is not None:
                            for _ in range(2):
                                self._tel.on_load(self.stats)
                """
            )
            == []
        )

    def test_non_hot_method_is_exempt(self):
        # __init__ and miss-path helpers may touch the hook freely.
        assert (
            _hits(
                """\
                class TraceSimulator:
                    def finish(self):
                        self._tel.finish(self.stats)
                """
            )
            == []
        )

    def test_other_attributes_are_not_hooks(self):
        assert (
            _hits(
                """\
                class TraceSimulator:
                    def _serve_load(self, pc, addr):
                        self.stats.loads += 1
                        self.l1.access(addr)
                """
            )
            == []
        )

    def test_outside_hotpath_packages_is_exempt(self):
        assert (
            _hits(
                """\
                class TraceSimulator:
                    def _serve_load(self, pc, addr):
                        self._tel.on_load(self.stats)
                """,
                module="repro.experiments.snippet",
            )
            == []
        )


class TestModuleApiOnHotPath:
    def test_imported_function_call_fires(self):
        assert _hits(
            """\
            from repro.telemetry import sim_hook


            class TraceSimulator:
                def _serve_load(self, pc, addr):
                    hook = sim_hook()
                    return hook
            """
        ) == [(6, "LVA006")]

    def test_module_attribute_call_fires(self):
        assert _hits(
            """\
            from repro import telemetry


            class TraceSimulator:
                def _serve_load(self, pc, addr):
                    telemetry.metrics().counter("sim.loads").add(1)
            """
        ) == [(6, "LVA006")]

    def test_resolving_hook_in_init_is_clean(self):
        assert (
            _hits(
                """\
                from repro.telemetry import sim_hook


                class TraceSimulator:
                    def __init__(self):
                        self._tel = sim_hook()

                    def _serve_load(self, pc, addr):
                        if self._tel is not None:
                            self._tel.on_load(self.stats)
                """
            )
            == []
        )

    def test_unrelated_import_is_clean(self):
        assert (
            _hits(
                """\
                from repro.core.approximator import LoadValueApproximator


                class TraceSimulator:
                    def _serve_load(self, pc, addr):
                        return LoadValueApproximator()
                """
            )
            == []
        )
