"""LVA004 fixture tests: worker safety across the process-pool boundary."""

from __future__ import annotations

import textwrap

from repro.analysis import check_source


def _hits(source: str, module: str = "repro.experiments.sweep"):
    violations = check_source(textwrap.dedent(source), module=module)
    return [(v.line, v.rule_id) for v in violations if v.rule_id == "LVA004"]


class TestSubmitTargets:
    def test_lambda_to_submit_fires(self):
        assert _hits(
            """\
            def run(pool, points):
                return [pool.submit(lambda p: p.run(), pt) for pt in points]
            """
        ) == [(2, "LVA004")]

    def test_nested_function_to_submit_fires(self):
        assert _hits(
            """\
            def run(pool, points):
                def work(point):
                    return point.run()
                return [pool.submit(work, pt) for pt in points]
            """
        ) == [(4, "LVA004")]

    def test_module_level_function_to_submit_is_clean(self):
        assert (
            _hits(
                """\
                def work(point):
                    return point.run()


                def run(pool, points):
                    return [pool.submit(work, pt) for pt in points]
                """
            )
            == []
        )

    def test_lambda_to_map_fires(self):
        assert _hits(
            """\
            def run(pool, points):
                return list(pool.map(lambda p: p.run(), points))
            """
        ) == [(2, "LVA004")]

    def test_lambda_initializer_fires(self):
        assert _hits(
            """\
            from concurrent.futures import ProcessPoolExecutor


            def run():
                return ProcessPoolExecutor(initializer=lambda: None)
            """
        ) == [(5, "LVA004")]

    def test_module_level_initializer_is_clean(self):
        assert (
            _hits(
                """\
                from concurrent.futures import ProcessPoolExecutor


                def _init_worker():
                    pass


                def run():
                    return ProcessPoolExecutor(initializer=_init_worker)
                """
            )
            == []
        )

    def test_submit_checked_in_every_module(self):
        # The picklability half of the rule applies everywhere, not just
        # in the configured worker modules.
        assert _hits(
            """\
            def run(pool, points):
                return [pool.submit(lambda p: p.run(), pt) for pt in points]
            """,
            module="repro.experiments.fig7",
        ) == [(2, "LVA004")]


class TestWorkerEntries:
    def test_global_in_worker_entry_fires(self):
        assert _hits(
            """\
            _CACHE = {}


            def _run_point_worker(point):
                global _CACHE
                _CACHE = {}
                return point
            """
        ) == [(5, "LVA004")]

    def test_global_outside_worker_module_is_exempt(self):
        assert (
            _hits(
                """\
                _CACHE = {}


                def _run_point_worker(point):
                    global _CACHE
                    _CACHE = {}
                    return point
                """,
                module="repro.experiments.runner",
            )
            == []
        )

    def test_non_entry_function_may_use_global(self):
        assert (
            _hits(
                """\
                _CACHE = {}


                def reset_cache():
                    global _CACHE
                    _CACHE = {}
                """
            )
            == []
        )

    def test_read_only_worker_entry_is_clean(self):
        assert (
            _hits(
                """\
                _TABLE = {"a": 1}


                def _run_point_worker(point):
                    return _TABLE.get(point, 0)
                """
            )
            == []
        )
