"""Report determinism: violations sort by (path, line, col, rule id).

Two findings at the same location must order by rule id; files order
lexicographically; and repeated runs over the same tree produce
byte-identical reports (the SARIF artifact and the CI diff depend on
this).
"""

from __future__ import annotations

import textwrap

from repro.analysis import check_sources, render_text
from repro.analysis.core import Violation

#: One module with violations on several lines, plus a second module
#: that sorts *before* it by name.
SOURCES = {
    "proj.b_mod": textwrap.dedent(
        """\
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class Point:
            workload: str
            seed: int


        def point_disk_key(point: Point) -> tuple:
            return (point.workload,)


        def other_disk_key(point: Point) -> tuple:
            return (point.seed,)
        """
    ),
    "proj.a_mod": textwrap.dedent(
        """\
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class Spot:
            alpha: str
            beta: int


        def spot_disk_key(spot: Spot) -> tuple:
            return (spot.alpha,)
        """
    ),
}


def test_violations_sorted_by_path_line_col_rule():
    violations = check_sources(SOURCES)
    assert violations == sorted(violations, key=Violation.sort_key)
    paths = [v.path for v in violations]
    assert paths == sorted(paths)
    # Both key functions in b_mod report, line-ordered.
    b_lines = [v.line for v in violations if v.path == "<proj.b_mod>"]
    assert b_lines == sorted(b_lines)
    assert len(b_lines) == 2


def test_repeated_runs_are_byte_identical():
    first = render_text(check_sources(SOURCES))
    second = render_text(check_sources(dict(reversed(list(SOURCES.items())))))
    assert first == second


def test_rule_id_breaks_ties_at_same_location():
    a = Violation("LVA003", "p.py", 4, 1, "m")
    b = Violation("LVA001", "p.py", 4, 1, "m")
    assert sorted([a, b], key=Violation.sort_key) == [b, a]
