"""Unit tests for the whole-program skeleton (``repro.analysis.flow.graphs``).

Small synthetic universes, built straight from source strings, pin the
resolution machinery the flow rules stand on: alias-aware symbol and
constant resolution, call-graph construction (functions, methods,
constructors), reachability with parent chains, and env-read
classification (literal / constant / dynamic / external).
"""

from __future__ import annotations

import textwrap
from typing import Dict, List

from repro.analysis.core import ModuleInfo
from repro.analysis.flow.graphs import ProjectGraph, pseudo_function, short_name


def graph_of(sources: Dict[str, str]) -> ProjectGraph:
    infos: List[ModuleInfo] = [
        ModuleInfo.from_source(textwrap.dedent(source), module, f"<{module}>")
        for module, source in sources.items()
    ]
    return ProjectGraph(infos)


class TestSymbolResolution:
    def test_function_through_import_alias_chain(self):
        graph = graph_of(
            {
                "app.impl": "def work():\n    return 1\n",
                "app.shim": "from app.impl import work as do_work\n",
                "app.use": "from app.shim import do_work\n",
            }
        )
        assert graph.resolve_symbol("app.use", "do_work") == (
            "func",
            "app.impl:work",
        )

    def test_from_package_import_submodule(self):
        graph = graph_of(
            {
                "app": "",
                "app.sub": "def f():\n    pass\n",
                "app.use": "from app import sub\n",
            }
        )
        assert graph.resolve_symbol("app.use", "sub") == ("module", "app.sub")

    def test_string_constant_follows_reexport(self):
        graph = graph_of(
            {
                "app.envspec": 'MODE_ENV = "APP_MODE"\n',
                "app.shim": "from app.envspec import MODE_ENV\nALIAS = MODE_ENV\n",
            }
        )
        assert graph.resolve_string_constant("app.shim", "ALIAS") == (
            "APP_MODE",
            "app.envspec",
        )

    def test_string_constant_from_declare_call(self):
        graph = graph_of(
            {
                "app.envspec": (
                    "def _declare(name, kind):\n"
                    "    return name\n"
                    'MODE_ENV = _declare("APP_MODE", "keyed")\n'
                ),
            }
        )
        assert graph.resolve_string_constant("app.envspec", "MODE_ENV") == (
            "APP_MODE",
            "app.envspec",
        )


class TestCallGraph:
    UNIVERSE = {
        "app.util": (
            "def helper():\n"
            "    return 1\n"
        ),
        "app.obj": (
            "class Engine:\n"
            "    def run(self):\n"
            "        return self.step()\n"
            "    def step(self):\n"
            "        return 2\n"
        ),
        "app.main": (
            "from app.util import helper\n"
            "from app.obj import Engine\n"
            "\n"
            "def entry():\n"
            "    engine = Engine()\n"
            "    helper()\n"
            "    return engine.run()\n"
        ),
    }

    def test_function_and_method_edges_resolve(self):
        graph = graph_of(self.UNIVERSE)
        reachable, parents = graph.reachable_from(["app.main:entry"])
        assert "app.util:helper" in reachable
        assert "app.obj:Engine.run" in reachable
        assert "app.obj:Engine.step" in reachable

    def test_call_chain_renders_parent_links(self):
        graph = graph_of(self.UNIVERSE)
        _reachable, parents = graph.reachable_from(["app.main:entry"])
        chain = graph.call_chain(parents, "app.obj:Engine.step")
        assert chain == "app.main.entry -> app.obj.Engine.run -> app.obj.Engine.step"

    def test_constructor_resolves_to_init(self):
        graph = graph_of(
            {
                "app.obj": (
                    "class Thing:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                ),
                "app.use": (
                    "from app.obj import Thing\n"
                    "def make():\n"
                    "    return Thing()\n"
                ),
            }
        )
        reachable, _parents = graph.reachable_from(["app.use:make"])
        assert "app.obj:Thing.__init__" in reachable

    def test_module_body_is_a_pseudo_function(self):
        graph = graph_of({"app.top": "import os\nVALUE = 1\n"})
        assert pseudo_function("app.top") in graph.functions


class TestEnvReads:
    def test_classification_of_read_sources(self):
        graph = graph_of(
            {
                "app.envspec": 'MODE_ENV = "APP_MODE"\n',
                "app.cfg": (
                    "import os\n"
                    "from app.envspec import MODE_ENV\n"
                    "from outside.mod import OTHER_ENV\n"
                    "\n"
                    "def read_mode():\n"
                    '    return os.environ.get(MODE_ENV, "fast")\n'
                    "\n"
                    "def read_other():\n"
                    "    return os.environ.get(OTHER_ENV)\n"
                    "\n"
                    "def read_lit():\n"
                    '    return os.environ["APP_LIT"]\n'
                    "\n"
                    "def read_dyn(name):\n"
                    "    return os.getenv(name)\n"
                ),
            }
        )
        by_func = {read.func: read for read in graph.env_reads}
        mode = by_func["app.cfg:read_mode"]
        assert (mode.var, mode.source, mode.declared_in) == (
            "APP_MODE",
            "constant",
            "app.envspec",
        )
        assert by_func["app.cfg:read_other"].source == "external"
        lit = by_func["app.cfg:read_lit"]
        assert (lit.var, lit.source) == ("APP_LIT", "literal")
        assert by_func["app.cfg:read_dyn"].source == "dynamic"


def test_short_name_rendering():
    assert short_name("app.obj:Engine.run") == "app.obj.Engine.run"
    assert short_name("app.top:<module>") == "app.top"
