"""LVA008 — interprocedural determinism along worker-reachable paths.

Synthetic universes with a worker module (``app.pool``), kernel module
(``app.kernels``), simulation package (``app.sim``) and flow-exempt
telemetry (``app.tel``) pin the reachability semantics: which functions
count as roots, which modules are skipped (LVA001 territory, exempt
packages), and that messages carry the call chain.
"""

from __future__ import annotations

import textwrap
from typing import Dict, List

from repro.analysis import AnalysisConfig, check_sources
from repro.analysis.core import Violation

SELECT = frozenset({"LVA008"})

CONFIG = AnalysisConfig(
    sim_packages=("app.sim",),
    host_allowlist=(),
    worker_modules=("app.pool",),
    worker_entry_patterns=("_run_", "_worker"),
    kernel_modules=("app.kernels",),
    kernel_fn_suffixes=("_kernel",),
    flow_entry_points=("app.engine:Engine.run",),
    flow_exempt_modules=("app.tel",),
    envspec_module="app.envspec",
    env_prefix="APP_",
    env_registry=(("APP_UNUSED", "neutral", "t", ""),),
)


def run(sources: Dict[str, str]) -> List[Violation]:
    return check_sources(
        {module: textwrap.dedent(source) for module, source in sources.items()},
        config=CONFIG,
        select=SELECT,
    )


WALLCLOCK_HELPER = """\
    import time

    def helper():
        return time.perf_counter()
    """


class TestReachability:
    def test_worker_entry_reaches_helper_in_another_module(self):
        violations = run(
            {
                "app.util": WALLCLOCK_HELPER,
                "app.pool": """\
                    from app.util import helper

                    def _run_point(point):
                        return helper()
                    """,
            }
        )
        assert len(violations) == 1
        violation = violations[0]
        assert violation.rule_id == "LVA008"
        assert violation.path == "<app.util>"
        assert "worker-reachable path" in violation.message
        assert "reachable via app.pool._run_point -> app.util.helper" in (
            violation.message
        )

    def test_kernel_batch_function_is_a_root(self):
        violations = run(
            {
                "app.util": WALLCLOCK_HELPER,
                "app.kernels": """\
                    from app.util import helper

                    def replay_kernel(columns):
                        return helper()
                    """,
            }
        )
        assert len(violations) == 1
        assert "app.kernels.replay_kernel" in violations[0].message

    def test_configured_entry_method_is_a_root(self):
        violations = run(
            {
                "app.util": WALLCLOCK_HELPER,
                "app.engine": """\
                    from app.util import helper

                    class Engine:
                        def run(self, trace):
                            return helper()
                    """,
            }
        )
        assert len(violations) == 1
        assert "app.engine.Engine.run" in violations[0].message

    def test_unreachable_helper_not_flagged(self):
        violations = run(
            {
                "app.util": WALLCLOCK_HELPER,
                "app.pool": """\
                    def _run_point(point):
                        return point
                    """,
            }
        )
        assert violations == []


class TestScopeGates:
    def test_sim_modules_left_to_lva001(self):
        # The construct IS a violation there — but LVA001's, not LVA008's.
        violations = run(
            {
                "app.sim.core": WALLCLOCK_HELPER,
                "app.pool": """\
                    from app.sim.core import helper

                    def _run_point(point):
                        return helper()
                    """,
            }
        )
        assert violations == []

    def test_flow_exempt_modules_skipped(self):
        violations = run(
            {
                "app.tel": WALLCLOCK_HELPER,
                "app.pool": """\
                    from app.tel import helper

                    def _run_point(point):
                        return helper()
                    """,
            }
        )
        assert violations == []

    def test_supervisor_methods_are_not_worker_entries(self):
        # Pool workers must be picklable module-level functions; a
        # *method* matching the pattern is host-side supervision and may
        # legitimately use wall-clock timeouts.
        violations = run(
            {
                "app.util": WALLCLOCK_HELPER,
                "app.pool": """\
                    from app.util import helper

                    class Sweep:
                        def _run_serial(self):
                            return helper()
                    """,
            }
        )
        assert violations == []


class TestConstructCoverage:
    def test_unseeded_randomness_flagged_on_worker_path(self):
        violations = run(
            {
                "app.util": """\
                    import random

                    def jitter():
                        return random.random()
                    """,
                "app.pool": """\
                    from app.util import jitter

                    def _run_point(point):
                        return point + jitter()
                    """,
            }
        )
        assert len(violations) == 1
        assert "random" in violations[0].message

    def test_suppression_applies_at_the_offending_line(self):
        violations = run(
            {
                "app.util": """\
                    import time

                    def helper():
                        return time.perf_counter()  # lva: ignore[LVA008]
                    """,
                "app.pool": """\
                    from app.util import helper

                    def _run_point(point):
                        return helper()
                    """,
            }
        )
        assert violations == []
