"""The framework must handle modern Python syntax, not just the subset
the repo happens to use today: ``match`` statements, walrus
assignments, PEP 604 unions, and parenthesized context managers all
parse, lint without crashing, and stay transparent to the flow
analysis (an env read inside a ``match`` arm is still an env read).
"""

from __future__ import annotations

import textwrap
from typing import Dict, List

from repro.analysis import AnalysisConfig, check_sources
from repro.analysis.core import Violation

CONFIG = AnalysisConfig(
    sim_packages=("app.sim",),
    worker_modules=("app.pool",),
    kernel_modules=("app.kernels",),
    flow_entry_points=(),
    flow_exempt_modules=(),
    key_function_markers=("cache_key",),
    mmap_providers=(),
    envspec_module="app.envspec",
    env_prefix="APP_",
    env_registry=(
        ("APP_MODE", "keyed", "", "app.modern.cache_key"),
        ("APP_DIR", "neutral", "tests/test_dir.py", ""),
    ),
)

ENVSPEC = 'MODE_ENV = "APP_MODE"\nDIR_ENV = "APP_DIR"\n'


def run(sources: Dict[str, str], select=None) -> List[Violation]:
    merged = {"app.envspec": ENVSPEC}
    merged.update(
        {module: textwrap.dedent(source) for module, source in sources.items()}
    )
    return check_sources(merged, config=CONFIG, select=select)


class TestParsesClean:
    def test_match_statement(self):
        violations = run(
            {
                "app.modern": """\
                    import os

                    from app.envspec import MODE_ENV

                    def pick(kind):
                        match kind:
                            case "fast":
                                return 1
                            case {"mode": value}:
                                return value
                            case [first, *rest]:
                                return first
                            case _:
                                return 0

                    def cache_key(point):
                        return (os.environ.get(MODE_ENV), point)
                    """,
            }
        )
        assert violations == []

    def test_walrus_and_union_types(self):
        violations = run(
            {
                "app.modern": """\
                    import os

                    from app.envspec import MODE_ENV

                    def read(default: str | None = None) -> str | None:
                        if (value := os.environ.get(MODE_ENV)) is not None:
                            return value
                        return default

                    def cache_key(point):
                        return (read(), point)
                    """,
            }
        )
        assert violations == []

    def test_parenthesized_context_managers(self):
        violations = run(
            {
                "app.modern": """\
                    import os

                    from app.envspec import MODE_ENV

                    def copy(src, dst):
                        with (
                            open(src) as fin,
                            open(dst, "w") as fout,
                        ):
                            fout.write(fin.read())

                    def cache_key(point):
                        return (os.environ.get(MODE_ENV), point)
                    """,
            }
        )
        assert violations == []


class TestFlowSeesThroughModernSyntax:
    def test_env_read_inside_match_arm_detected(self):
        violations = run(
            {
                "app.modern": """\
                    import os

                    def pick(kind):
                        match kind:
                            case "env":
                                return os.environ.get("APP_SURPRISE")
                            case _:
                                return None
                    """,
            },
            select=frozenset({"LVA007"}),
        )
        assert len(violations) == 1
        assert "APP_SURPRISE" in violations[0].message

    def test_taint_flows_through_walrus(self):
        violations = run(
            {
                "app.modern": """\
                    import os

                    from app.envspec import DIR_ENV

                    def cache_key(point):
                        if (root := os.environ.get(DIR_ENV)) is None:
                            root = "/tmp"
                        return (root, point)
                    """,
            },
            select=frozenset({"LVA007"}),
        )
        assert any("APP_DIR taints" in v.message for v in violations), [
            v.render() for v in violations
        ]

    def test_suppression_comment_inside_match_block(self):
        violations = run(
            {
                "app.modern": """\
                    import os

                    def pick(kind):
                        match kind:
                            case "env":
                                return os.environ.get("APP_SURPRISE")  # lva: ignore[LVA007]
                            case _:
                                return None
                    """,
            },
            select=frozenset({"LVA007"}),
        )
        assert violations == []
