"""Incremental linting: content-hash cache + dependency-cone re-checks.

A small on-disk package is linted through
:func:`repro.analysis.run_paths_incremental` and the claims pinned are:

* equivalence — the incremental report always matches the full
  :func:`run_paths` report over the same tree;
* minimality — an unchanged tree re-analyzes nothing, and a single-file
  edit re-analyzes exactly that file plus its transitive reverse
  importers;
* safety — fingerprint changes (different rule selection) and cache
  corruption discard the cache instead of mixing results.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_paths, run_paths_incremental

#: Violates LVA002 in any module: a key function ignoring a field.
BAD_KEY = textwrap.dedent(
    """\
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class Point:
        workload: str
        seed: int


    def point_disk_key(point: Point) -> tuple:
        return (point.workload,)
    """
)

GOOD_KEY = BAD_KEY.replace(
    "return (point.workload,)", "return (point.workload, point.seed)"
)


@pytest.fixture()
def tree(tmp_path):
    """proj/a.py (violation) <- proj/b.py (imports a); proj/c.py is free."""
    pkg = tmp_path / "proj"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text(BAD_KEY)
    (pkg / "b.py").write_text("from proj.a import Point\n\nUSES = Point\n")
    (pkg / "c.py").write_text("VALUE = 1\n")
    return tmp_path


def lint(tree: Path, **kwargs):
    return run_paths_incremental(
        [str(tree)], tree / ".lva-cache.json", **kwargs
    )


def test_first_run_analyzes_everything_and_matches_full_run(tree):
    result = lint(tree)
    assert len(result.analyzed) == 4
    assert result.reused == []
    assert result.violations == run_paths([str(tree)])
    assert any(v.rule_id == "LVA002" for v in result.violations)


def test_unchanged_tree_reuses_everything(tree):
    lint(tree)
    result = lint(tree)
    assert result.analyzed == []
    assert len(result.reused) == 4
    # Cached violations are still reported.
    assert any(v.rule_id == "LVA002" for v in result.violations)
    assert result.violations == run_paths([str(tree)])


def test_leaf_edit_reanalyzes_only_that_file(tree):
    lint(tree)
    (tree / "proj" / "c.py").write_text("VALUE = 2\n")
    result = lint(tree)
    assert [Path(p).name for p in result.analyzed] == ["c.py"]
    assert len(result.reused) == 3
    assert result.violations == run_paths([str(tree)])


def test_edit_propagates_to_reverse_importers(tree):
    lint(tree)
    (tree / "proj" / "a.py").write_text(GOOD_KEY)
    result = lint(tree)
    assert sorted(Path(p).name for p in result.analyzed) == ["a.py", "b.py"]
    assert [Path(p).name for p in result.reused] == ["__init__.py", "c.py"]
    # The fix clears the cached violation.
    assert result.violations == []
    assert run_paths([str(tree)]) == []


def test_deleted_file_drops_from_cache_and_report(tree):
    lint(tree)
    (tree / "proj" / "b.py").unlink()
    (tree / "proj" / "a.py").write_text(GOOD_KEY)
    result = lint(tree)
    assert result.violations == []
    assert all(Path(p).name != "b.py" for p in result.reused)


def test_new_file_is_analyzed(tree):
    lint(tree)
    (tree / "proj" / "d.py").write_text(BAD_KEY)
    result = lint(tree)
    assert [Path(p).name for p in result.analyzed] == ["d.py"]
    assert any("d.py" in v.path for v in result.violations)


def test_fingerprint_mismatch_discards_cache(tree):
    lint(tree)
    result = lint(tree, select=frozenset({"LVA001"}))
    # Different rule selection: nothing may be served from the old cache.
    assert len(result.analyzed) == 4
    assert result.violations == []


def test_corrupt_cache_degrades_to_full_run(tree):
    lint(tree)
    (tree / ".lva-cache.json").write_text("{not json")
    result = lint(tree)
    assert len(result.analyzed) == 4
    assert result.violations == run_paths([str(tree)])


def test_cache_file_layout_is_stable_json(tree):
    lint(tree)
    data = json.loads((tree / ".lva-cache.json").read_text())
    assert data["version"] == 1
    assert set(data) == {"version", "fingerprint", "files"}
    entry = next(iter(data["files"].values()))
    assert set(entry) == {"sha256", "module", "violations"}


def test_suppression_edit_recchecks_the_file(tree):
    lint(tree)
    suppressed = BAD_KEY.replace(
        "def point_disk_key(point: Point) -> tuple:",
        "def point_disk_key(point: Point) -> tuple:  # lva: ignore[LVA002]",
    )
    (tree / "proj" / "a.py").write_text(suppressed)
    result = lint(tree)
    assert result.violations == []
