"""Stale-suppression detection (``lva-lint --stale-ignores``, LVA900).

A ``# lva: ignore[...]`` that silences nothing is debt: it hides the
fact that the underlying violation was fixed (or never existed) and
will happily mask a *future* unrelated violation on the same line.
"""

from __future__ import annotations

import textwrap

from repro.analysis.cli import main
from repro.analysis.core import ModuleInfo
from repro.analysis.engine import (
    STALE_IGNORE_RULE_ID,
    run_modules_raw,
    stale_suppressions,
)

#: Line 10 really violates LVA002; the suppression there is live.
SUPPRESSED_BAD_KEY = textwrap.dedent(
    """\
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class Point:
        workload: str
        seed: int


    def point_disk_key(point: Point) -> tuple:  # lva: ignore[LVA002]
        return (point.workload,)
    """
)


def stale_for(source: str, module: str = "proj.mod"):
    info = ModuleInfo.from_source(source, module, f"<{module}>")
    raw = run_modules_raw([info])
    return stale_suppressions([info], raw)


class TestDetection:
    def test_live_suppression_is_not_stale(self):
        assert stale_for(SUPPRESSED_BAD_KEY) == []

    def test_suppression_on_clean_line_is_stale(self):
        stale = stale_for("VALUE = 1  # lva: ignore[LVA002]\n")
        (violation,) = stale
        assert violation.rule_id == STALE_IGNORE_RULE_ID
        assert violation.line == 1
        assert "LVA002" in violation.message
        assert "stale suppression" in violation.message

    def test_blanket_suppression_on_clean_line_is_stale(self):
        stale = stale_for("VALUE = 1  # lva: ignore\n")
        (violation,) = stale
        assert "stale blanket suppression" in violation.message

    def test_partially_stale_list_names_only_dead_rules(self):
        source = SUPPRESSED_BAD_KEY.replace(
            "# lva: ignore[LVA002]", "# lva: ignore[LVA002, LVA003]"
        )
        (violation,) = stale_for(source)
        assert "LVA003" in violation.message
        assert "LVA002" not in violation.message

    def test_clean_file_without_suppressions_reports_nothing(self):
        assert stale_for("VALUE = 1\n") == []


class TestCLI:
    def test_stale_ignore_fails_the_run(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("VALUE = 1  # lva: ignore[LVA001]\n")
        assert main([str(target), "--stale-ignores"]) == 1
        out = capsys.readouterr().out
        assert STALE_IGNORE_RULE_ID in out

    def test_without_flag_stale_ignores_pass(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("VALUE = 1  # lva: ignore[LVA001]\n")
        assert main([str(target), "--no-summary"]) == 0

    def test_staleness_judged_against_full_rule_set(self, tmp_path):
        # The suppression is live for LVA002 even when --select excludes
        # LVA002 from the report: dormant, not stale.
        target = tmp_path / "mod.py"
        target.write_text(SUPPRESSED_BAD_KEY)
        assert (
            main([str(target), "--select", "LVA001", "--stale-ignores", "--no-summary"])
            == 0
        )
