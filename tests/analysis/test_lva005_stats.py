"""LVA005 fixture tests: counters written <-> counters declared."""

from __future__ import annotations

import textwrap

from repro.analysis import check_source, check_sources


def _hits(source: str, module: str = "repro.sim.snippet"):
    violations = check_source(textwrap.dedent(source), module=module)
    return [(v.line, v.rule_id) for v in violations if v.rule_id == "LVA005"]


class TestUndeclaredWrites:
    def test_write_to_undeclared_counter_fires(self):
        # 'missess' (typo) is not a FooStats field; 'hits' keeps the
        # declared counter satisfied so only the typo fires.
        hits = _hits(
            """\
            from dataclasses import dataclass


            @dataclass(slots=True)
            class FooStats:
                hits: int = 0


            class Foo:
                def __init__(self):
                    self.stats = FooStats()

                def touch(self):
                    self.stats.hits += 1
                    self.stats.missess += 1
            """
        )
        assert hits == [(15, "LVA005")]

    def test_message_names_class_and_counter(self):
        violations = check_source(
            textwrap.dedent(
                """\
                from dataclasses import dataclass


                @dataclass(slots=True)
                class FooStats:
                    hits: int = 0


                class Foo:
                    def __init__(self):
                        self.stats = FooStats()

                    def touch(self):
                        self.stats.hits += 1
                        self.stats.missess += 1
                """
            ),
            module="repro.sim.snippet",
        )
        (violation,) = [v for v in violations if v.rule_id == "LVA005"]
        assert "FooStats" in violation.message
        assert "'missess'" in violation.message

    def test_alias_write_to_unknown_counter_fires(self):
        # Hot paths hoist `stats = self.stats`; alias writes are checked
        # against the union of all known Stats fields.
        hits = _hits(
            """\
            from dataclasses import dataclass


            @dataclass(slots=True)
            class FooStats:
                hits: int = 0


            class Foo:
                def __init__(self):
                    self.stats = FooStats()

                def touch(self):
                    stats = self.stats
                    stats.hits += 1
                    stats.bogus += 1
            """
        )
        assert hits == [(16, "LVA005")]

    def test_declared_writes_are_clean(self):
        assert (
            _hits(
                """\
                from dataclasses import dataclass


                @dataclass(slots=True)
                class FooStats:
                    hits: int = 0
                    samples: list = None

                class Foo:
                    def __init__(self):
                        self.stats = FooStats()

                    def touch(self):
                        self.stats.hits += 1
                        self.stats.samples.append(1)
                """
            )
            == []
        )


class TestNeverWrittenCounters:
    def test_declared_but_never_written_fires_at_declaration(self):
        hits = _hits(
            """\
            from dataclasses import dataclass


            @dataclass(slots=True)
            class FooStats:
                hits: int = 0
                misses: int = 0


            class Foo:
                def __init__(self):
                    self.stats = FooStats()

                def touch(self):
                    self.stats.hits += 1
            """
        )
        assert hits == [(7, "LVA005")]

    def test_write_in_another_module_satisfies_declaration(self):
        # Declarations and write sites are cross-referenced project-wide,
        # mirroring stats.py vs. tracesim.py/hierarchy.py in the repo.
        violations = check_sources(
            {
                "repro.sim.stats_snippet": textwrap.dedent(
                    """\
                    from dataclasses import dataclass


                    @dataclass(slots=True)
                    class BarStats:
                        loads: int = 0
                    """
                ),
                "repro.sim.engine_snippet": textwrap.dedent(
                    """\
                    from repro.sim.stats_snippet import BarStats


                    class Engine:
                        def __init__(self):
                            self.stats = BarStats()

                        def step(self):
                            self.stats.loads += 1
                    """
                ),
            }
        )
        assert [v for v in violations if v.rule_id == "LVA005"] == []

    def test_non_counter_fields_need_no_writes(self):
        # Only int/float fields demand a write site; str/list metadata
        # fields do not.
        assert (
            _hits(
                """\
                from dataclasses import dataclass


                @dataclass(slots=True)
                class FooStats:
                    hits: int = 0
                    label: str = ""


                class Foo:
                    def __init__(self):
                        self.stats = FooStats()

                    def touch(self):
                        self.stats.hits += 1
                """
            )
            == []
        )

    def test_outside_stats_packages_is_exempt(self):
        assert (
            _hits(
                """\
                from dataclasses import dataclass


                @dataclass(slots=True)
                class ReportStats:
                    rows: int = 0
                """,
                module="repro.experiments.snippet",
            )
            == []
        )
