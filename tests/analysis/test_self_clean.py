"""The repo-wide gate: ``lva-lint src/`` must be clean at HEAD.

This is the pytest-collectable form of the CI lint job — any new
violation in the source tree fails the suite with the full lint report.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import render_text, run_paths
from repro.analysis.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_source_tree_exists():
    assert (REPO_SRC / "repro").is_dir()


def test_lva_lint_src_is_clean():
    violations = run_paths([str(REPO_SRC)])
    assert violations == [], "\n" + render_text(violations)


def test_cli_on_src_exits_zero(capsys):
    assert main([str(REPO_SRC)]) == 0
    assert "clean" in capsys.readouterr().out
