"""The repo-wide gate: ``lva-lint src/`` must be clean at HEAD.

This is the pytest-collectable form of the CI lint job — any new
violation in the source tree fails the suite with the full lint report.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import render_text, run_paths
from repro.analysis.cli import main
from repro.analysis.engine import load_modules, discover_files, run_modules_raw, stale_suppressions

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src"
REPO_TESTS = REPO_ROOT / "tests"
REPO_BENCHMARKS = REPO_ROOT / "benchmarks"


def test_source_tree_exists():
    assert (REPO_SRC / "repro").is_dir()


def test_lva_lint_src_is_clean():
    violations = run_paths([str(REPO_SRC)])
    assert violations == [], "\n" + render_text(violations)


def test_lva_lint_tests_are_clean():
    """The flow rules (LVA007-009) hold over the test tree too."""
    violations = run_paths([str(REPO_TESTS)])
    assert violations == [], "\n" + render_text(violations)


def test_lva_lint_benchmarks_are_clean():
    violations = run_paths([str(REPO_BENCHMARKS)])
    assert violations == [], "\n" + render_text(violations)


def test_no_stale_suppressions_in_src():
    """Every '# lva: ignore' in src/ still silences a live violation."""
    infos, _errors = load_modules(discover_files([str(REPO_SRC)]))
    raw = run_modules_raw(infos)
    stale = stale_suppressions(infos, raw)
    assert stale == [], "\n" + render_text(stale)


def test_cli_on_src_exits_zero(capsys):
    assert main([str(REPO_SRC)]) == 0
    assert "clean" in capsys.readouterr().out
