"""LVA001 fixture tests: determinism violations in simulation code."""

from __future__ import annotations

import textwrap

from repro.analysis import check_source


def _lint(source: str, module: str = "repro.sim.snippet"):
    return check_source(textwrap.dedent(source), module=module)


def _hits(source: str, module: str = "repro.sim.snippet"):
    return [
        (v.line, v.rule_id) for v in _lint(source, module) if v.rule_id == "LVA001"
    ]


class TestUnseededRandom:
    def test_module_level_random_call_fires(self):
        hits = _hits(
            """\
            import random

            def roll():
                return random.random()
            """
        )
        assert hits == [(4, "LVA001")]

    def test_random_seed_fires(self):
        assert _hits(
            """\
            import random
            random.seed(7)
            """
        ) == [(2, "LVA001")]

    def test_from_import_fires(self):
        assert _hits(
            """\
            from random import randint

            def roll():
                return randint(1, 6)
            """
        ) == [(4, "LVA001")]

    def test_seeded_random_instance_is_clean(self):
        assert (
            _hits(
                """\
                import random

                def make_rng(seed):
                    return random.Random(seed)
                """
            )
            == []
        )

    def test_system_random_fires(self):
        assert _hits(
            """\
            import random
            RNG = random.SystemRandom()
            """
        ) == [(2, "LVA001")]


class TestClocksAndEntropy:
    def test_time_time_fires(self):
        assert _hits(
            """\
            import time

            def stamp():
                return time.time()
            """
        ) == [(4, "LVA001")]

    def test_perf_counter_from_import_fires(self):
        assert _hits(
            """\
            from time import perf_counter

            def stamp():
                return perf_counter()
            """
        ) == [(4, "LVA001")]

    def test_datetime_now_fires(self):
        assert _hits(
            """\
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        ) == [(4, "LVA001")]

    def test_dotted_datetime_now_fires(self):
        assert _hits(
            """\
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        ) == [(4, "LVA001")]

    def test_os_urandom_and_uuid4_fire(self):
        assert _hits(
            """\
            import os
            import uuid

            def entropy():
                return os.urandom(8), uuid.uuid4()
            """
        ) == [(5, "LVA001"), (5, "LVA001")]

    def test_id_call_fires(self):
        assert _hits(
            """\
            def key_of(obj):
                return id(obj)
            """
        ) == [(2, "LVA001")]


class TestSetIteration:
    def test_set_literal_iteration_fires(self):
        assert _hits(
            """\
            def walk():
                for x in {1, 2, 3}:
                    yield x
            """
        ) == [(2, "LVA001")]

    def test_set_call_in_comprehension_fires(self):
        assert _hits(
            """\
            def walk(items):
                return [x for x in set(items)]
            """
        ) == [(2, "LVA001")]

    def test_sorted_set_is_clean(self):
        assert (
            _hits(
                """\
                def walk(items):
                    return [x for x in sorted(set(items))]
                """
            )
            == []
        )

    def test_annotated_set_attribute_iteration_fires(self):
        assert _hits(
            """\
            from typing import Set

            class Directory:
                sharers: Set[int]

                def broadcast(self):
                    for core in self.sharers:
                        yield core
            """
        ) == [(7, "LVA001")]

    def test_membership_test_is_clean(self):
        assert (
            _hits(
                """\
                from typing import Set

                class Directory:
                    sharers: Set[int]

                    def holds(self, core):
                        return core in self.sharers
                """
            )
            == []
        )


class TestScopeAndSuppression:
    BAD = """\
    import random

    def roll():
        return random.random()
    """

    def test_every_sim_package_is_in_scope(self):
        for module in (
            "repro.sim.x",
            "repro.mem.x",
            "repro.noc.x",
            "repro.fullsystem.x",
            "repro.prefetch.x",
            "repro.workloads.x",
            "repro.faults.memory",
        ):
            assert _hits(self.BAD, module=module), module

    def test_host_side_allowlist_is_exempt(self):
        assert _hits(self.BAD, module="repro.experiments.sweep") == []
        assert _hits(self.BAD, module="repro.experiments.runner") == []
        assert _hits(self.BAD, module="repro.experiments.fig4") == []

    def test_line_suppression_silences_named_rule(self):
        assert (
            _hits(
                """\
                import random

                def roll():
                    return random.random()  # lva: ignore[LVA001]
                """
            )
            == []
        )

    def test_suppression_for_other_rule_does_not_silence(self):
        assert _hits(
            """\
            import random

            def roll():
                return random.random()  # lva: ignore[LVA003]
            """
        ) == [(4, "LVA001")]

    def test_blanket_suppression_silences(self):
        assert (
            _hits(
                """\
                import random

                def roll():
                    return random.random()  # lva: ignore
                """
            )
            == []
        )
