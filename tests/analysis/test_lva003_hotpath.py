"""LVA003 fixture tests: slots dataclasses and allocation-free hot methods."""

from __future__ import annotations

import textwrap

from repro.analysis import check_source


def _hits(source: str, module: str = "repro.mem.snippet"):
    violations = check_source(textwrap.dedent(source), module=module)
    return [(v.line, v.rule_id) for v in violations if v.rule_id == "LVA003"]


class TestSlotsDataclasses:
    def test_dataclass_without_slots_fires_at_class_line(self):
        assert _hits(
            """\
            from dataclasses import dataclass


            @dataclass
            class LineState:
                tag: int
                dirty: bool
            """
        ) == [(5, "LVA003")]

    def test_dataclass_call_without_slots_fires(self):
        assert _hits(
            """\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class LineState:
                tag: int
            """
        ) == [(5, "LVA003")]

    def test_slots_true_is_clean(self):
        assert (
            _hits(
                """\
                from dataclasses import dataclass


                @dataclass(frozen=True, slots=True)
                class LineState:
                    tag: int
                """
            )
            == []
        )

    def test_plain_class_is_not_required_to_slot(self):
        assert (
            _hits(
                """\
                class LineState:
                    def __init__(self, tag):
                        self.tag = tag
                """
            )
            == []
        )

    def test_outside_hotpath_packages_is_exempt(self):
        assert (
            _hits(
                """\
                from dataclasses import dataclass


                @dataclass
                class ReportRow:
                    label: str
                """,
                module="repro.experiments.snippet",
            )
            == []
        )


class TestHotMethodAllocations:
    def test_list_comprehension_in_hot_method_fires(self):
        assert _hits(
            """\
            class SetAssociativeCache:
                def access(self, addr):
                    ways = [w for w in self.ways if w.valid]
                    return ways
            """
        ) == [(3, "LVA003")]

    def test_lambda_in_hot_method_fires(self):
        assert _hits(
            """\
            class SetAssociativeCache:
                def probe(self, addr):
                    pick = min(self.ways, key=lambda w: w.age)
                    return pick
            """
        ) == [(3, "LVA003")]

    def test_generator_expression_in_hot_method_fires(self):
        assert _hits(
            """\
            class TwoLevelHierarchy:
                def load(self, addr):
                    return sum(w.age for w in self.ways)
            """
        ) == [(3, "LVA003")]

    def test_nested_function_in_hot_method_fires(self):
        assert _hits(
            """\
            class MSHRFile:
                def lookup(self, addr):
                    def score(entry):
                        return entry.age
                    return score
            """
        ) == [(3, "LVA003")]

    def test_plain_loop_in_hot_method_is_clean(self):
        assert (
            _hits(
                """\
                class SetAssociativeCache:
                    def access(self, addr):
                        for way in self.ways:
                            if way.tag == addr:
                                return way
                        return None
                """
            )
            == []
        )

    def test_non_hot_method_may_use_comprehensions(self):
        # Per-miss / setup methods are allowed to allocate.
        assert (
            _hits(
                """\
                class SetAssociativeCache:
                    def snapshot(self):
                        return [w.tag for w in self.ways]
                """
            )
            == []
        )

    def test_same_method_name_on_other_class_is_clean(self):
        # hot_methods are qualified Class.method names, not bare names.
        assert (
            _hits(
                """\
                class Trace:
                    def load(self, path):
                        return [line for line in open(path)]
                """
            )
            == []
        )


class TestBatchMethods:
    """The predictor batch contract: ``*_batch`` methods in hot-path
    packages take scalar columns and must never read event fields,
    though they may loop (the scalar fallbacks iterate by design)."""

    MODULE = "repro.predictors.snippet"

    def test_event_field_read_in_batch_method_fires(self):
        assert _hits(
            """\
            class StridePredictor:
                def on_miss_batch(self, events):
                    return [self.on_miss(e.pc, e.is_float) for e in events]
            """,
            module=self.MODULE,
        ) == [(3, "LVA003"), (3, "LVA003")]

    def test_event_field_read_in_train_batch_fires(self):
        assert _hits(
            """\
            class StridePredictor:
                def train_batch(self, tokens, events):
                    covered = 0
                    for i in range(len(tokens)):
                        covered += self.train(tokens[i], events[i].value)
                    return covered
            """,
            module=self.MODULE,
        ) == [(5, "LVA003")]

    def test_scalar_fallback_loop_is_clean(self):
        # The ScalarBatchFallback shape: plain columns in, a loop over
        # the scalar API — loops are explicitly allowed here.
        assert (
            _hits(
                """\
                class ScalarBatchFallback:
                    def on_miss_batch(self, pcs, float_flags, addrs):
                        out = []
                        for i in range(len(pcs)):
                            out.append(self.on_miss(pcs[i], float_flags[i], addrs[i]))
                        return out

                    def train_batch(self, tokens, actuals):
                        covered = 0
                        for i in range(len(tokens)):
                            covered += 1 if self.train(tokens[i], actuals[i]) else 0
                        return covered
                """,
                module=self.MODULE,
            )
            == []
        )

    def test_non_batch_method_may_read_event_fields(self):
        # Only the *_batch suffix carries the column contract; scalar
        # entry points legitimately take an event-shaped argument.
        assert (
            _hits(
                """\
                class Recorder:
                    def observe(self, event):
                        self.last_pc = event.pc
                """,
                module=self.MODULE,
            )
            == []
        )

    def test_batch_methods_outside_hotpath_packages_are_exempt(self):
        assert (
            _hits(
                """\
                class ReportBuilder:
                    def rows_batch(self, events):
                        return [e.pc for e in events]
                """,
                module="repro.experiments.snippet",
            )
            == []
        )


class TestKernelFunctions:
    """The batch contract of the vectorized replay kernels: functions
    named ``*_kernel``/``*_span(s)`` in kernel modules must be
    whole-column numpy passes."""

    MODULE = "repro.sim.kernels"

    def test_per_event_loop_in_kernel_fires(self):
        assert _hits(
            """\
            def decompose_addr_kernel(addrs, offset_bits):
                out = []
                for a in addrs:
                    out.append(a >> offset_bits)
                return out
            """,
            module=self.MODULE,
        ) == [(3, "LVA003")]

    def test_while_loop_in_kernel_fires(self):
        assert _hits(
            """\
            def segment_spans_kernel(is_store):
                i = 0
                while i < len(is_store):
                    i += 1
            """,
            module=self.MODULE,
        ) == [(3, "LVA003")]

    def test_comprehension_in_kernel_fires(self):
        assert _hits(
            """\
            def load_ordinal_kernel(is_store):
                return [not s for s in is_store]
            """,
            module=self.MODULE,
        ) == [(2, "LVA003")]

    def test_event_field_read_in_kernel_fires(self):
        assert _hits(
            """\
            def window_denominator_span(events, window):
                return events[0].value * window
            """,
            module=self.MODULE,
        ) == [(2, "LVA003")]

    def test_whole_column_numpy_pass_is_clean(self):
        assert (
            _hits(
                """\
                import numpy as np


                def decompose_addr_kernel(addr, offset_bits, index_mask, index_bits):
                    block = addr >> offset_bits
                    return block & index_mask, block >> index_bits
                """,
                module=self.MODULE,
            )
            == []
        )

    def test_non_kernel_function_may_loop(self):
        # The scalar flat cores and rebuild helpers iterate by design;
        # only the suffix-named batch functions carry the contract.
        assert (
            _hits(
                """\
                def _lva_flat(sim, miss):
                    total = 0
                    for value in miss["val"]:
                        total += value
                    return total
                """,
                module=self.MODULE,
            )
            == []
        )

    def test_kernel_names_outside_kernel_modules_are_exempt(self):
        assert (
            _hits(
                """\
                def resize_kernel(rows):
                    return [r for r in rows]
                """,
                module="repro.mem.cache",
            )
            == []
        )
