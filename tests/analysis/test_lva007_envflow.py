"""LVA007 — env-influence soundness, against synthetic universes.

Each fixture declares its own envspec module (``app.envspec``) and
registry rows via ``AnalysisConfig.env_registry``, then checks that:

* reads resolve statically to envspec constants (no literals, no
  re-declared constants, no dynamic keys, no unregistered variables);
* ``keyed`` variables provably reach a cache-key function;
* ``neutral`` / ``capture-only`` variables provably do not, and carry a
  pinning-test pointer.
"""

from __future__ import annotations

import textwrap
from typing import Dict, List

from repro.analysis import AnalysisConfig, check_sources
from repro.analysis.core import Violation

SELECT = frozenset({"LVA007"})

CONFIG = AnalysisConfig(
    sim_packages=("app.sim",),
    worker_modules=("app.pool",),
    kernel_modules=("app.kernels",),
    flow_entry_points=(),
    flow_exempt_modules=(),
    key_function_markers=("cache_key", "disk_key"),
    mmap_providers=(),
    envspec_module="app.envspec",
    env_prefix="APP_",
    env_registry=(
        ("APP_MODE", "keyed", "", "app.keys.cache_key"),
        ("APP_DIR", "neutral", "tests/test_dir.py", ""),
        ("APP_LOG", "capture-only", "tests/test_log.py", ""),
        ("APP_BAD", "neutral", "", ""),
    ),
)

ENVSPEC = textwrap.dedent(
    """\
    MODE_ENV = "APP_MODE"
    DIR_ENV = "APP_DIR"
    LOG_ENV = "APP_LOG"
    BAD_ENV = "APP_BAD"
    """
)


def run(sources: Dict[str, str]) -> List[Violation]:
    merged = {"app.envspec": ENVSPEC}
    merged.update(
        {module: textwrap.dedent(source) for module, source in sources.items()}
    )
    return check_sources(merged, config=CONFIG, select=SELECT)


def messages(violations: List[Violation]) -> str:
    return "\n".join(v.render() for v in violations)


#: A keyed read that reaches the key function — the sanctioned shape.
KEYED_OK = {
    "app.keys": """\
        import os
        from app.envspec import MODE_ENV

        def read_mode():
            return os.environ.get(MODE_ENV, "fast")

        def cache_key(point):
            return (read_mode(), point)
        """,
}


class TestReadResolution:
    def test_sanctioned_shape_is_clean(self):
        assert run(KEYED_OK) == []

    def test_literal_read_flagged(self):
        violations = run(
            {
                "app.keys": """\
                    import os

                    def cache_key(point):
                        return (os.environ.get("APP_MODE"), point)
                    """,
            }
        )
        assert len(violations) == 1
        assert "string literal" in violations[0].message
        assert violations[0].rule_id == "LVA007"

    def test_unregistered_variable_flagged(self):
        violations = run(
            {
                "app.other": """\
                    import os

                    def read():
                        return os.environ.get("APP_SURPRISE")
                    """,
            }
        )
        assert len(violations) == 1
        assert "not declared in app.envspec" in violations[0].message

    def test_redeclared_constant_flagged(self):
        violations = run(
            {
                "app.keys": KEYED_OK["app.keys"],
                "app.rogue": """\
                    import os

                    DIR_ENV = "APP_DIR"

                    def read_dir():
                        return os.environ.get(DIR_ENV)
                    """,
            }
        )
        assert len(violations) == 1
        assert "declared in app.rogue, not app.envspec" in violations[0].message

    def test_dynamic_key_flagged(self):
        violations = run(
            {
                "app.other": """\
                    import os

                    def read(name):
                        return os.getenv(name)
                    """,
            }
        )
        assert len(violations) == 1
        assert "cannot resolve statically" in violations[0].message

    def test_non_prefixed_variables_ignored(self):
        violations = run(
            {
                "app.other": """\
                    import os

                    def read():
                        return os.environ.get("HOME")
                    """,
            }
        )
        assert violations == []

    def test_reads_inside_envspec_module_exempt(self):
        # The registry module may bootstrap-read its own constants.
        merged = {
            "app.envspec": ENVSPEC
            + "import os\n\ndef read():\n    return os.environ.get(MODE_ENV)\n"
        }
        assert check_sources(merged, config=CONFIG, select=SELECT) == []


class TestClassificationSoundness:
    def test_keyed_must_reach_key_function(self):
        violations = run(
            {
                "app.keys": """\
                    import os
                    from app.envspec import MODE_ENV

                    def read_mode():
                        return os.environ.get(MODE_ENV, "fast")

                    def cache_key(point):
                        return (point,)
                    """,
            }
        )
        assert len(violations) == 1, messages(violations)
        assert "never provably reaches" in violations[0].message
        assert "app.keys.cache_key" in violations[0].message

    def test_neutral_must_not_reach_key_function(self):
        violations = run(
            {
                "app.keys": KEYED_OK["app.keys"],
                "app.leak": """\
                    import os
                    from app.envspec import DIR_ENV

                    def read_dir():
                        return os.environ.get(DIR_ENV, "/tmp")

                    def disk_key(point):
                        return (read_dir(), point)
                    """,
            }
        )
        assert len(violations) == 1, messages(violations)
        assert "neutral env var APP_DIR taints" in violations[0].message
        assert "app.leak.disk_key" in violations[0].message

    def test_capture_only_must_not_reach_key_function(self):
        violations = run(
            {
                "app.keys": KEYED_OK["app.keys"],
                "app.leak": """\
                    import os
                    from app.envspec import LOG_ENV

                    def log_path():
                        return os.environ.get(LOG_ENV, "")

                    def cache_key(point):
                        return (log_path(), point)
                    """,
            }
        )
        assert any("capture-only env var APP_LOG taints" in v.message for v in violations), (
            messages(violations)
        )

    def test_taint_tracked_through_intermediate_module(self):
        violations = run(
            {
                "app.cfg": """\
                    import os
                    from app.envspec import DIR_ENV

                    def read_dir():
                        return os.environ.get(DIR_ENV, "/tmp")
                    """,
                "app.keys": textwrap.dedent(KEYED_OK["app.keys"])
                + "\nfrom app.cfg import read_dir\n\n\n"
                "def disk_key(point):\n    return (read_dir(), point)\n",
            }
        )
        assert any("APP_DIR taints" in v.message for v in violations), (
            messages(violations)
        )

    def test_missing_pinning_test_flagged(self):
        violations = run(
            {
                "app.keys": KEYED_OK["app.keys"],
                "app.other": """\
                    import os
                    from app.envspec import BAD_ENV

                    def read_bad():
                        return os.environ.get(BAD_ENV)
                    """,
            }
        )
        assert len(violations) == 1, messages(violations)
        assert "no pinning test" in violations[0].message


class TestSuppression:
    def test_inline_ignore_silences_the_read(self):
        merged = {
            "app.envspec": ENVSPEC,
            "app.other": textwrap.dedent(
                """\
                import os

                def read():
                    return os.environ.get("APP_SURPRISE")  # lva: ignore[LVA007]
                """
            ),
        }
        assert check_sources(merged, config=CONFIG, select=SELECT) == []
