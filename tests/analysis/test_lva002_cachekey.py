"""LVA002 fixture tests: cache-key functions must cover every point field."""

from __future__ import annotations

import textwrap

from repro.analysis import check_source, check_sources


def _hits(source: str, module: str = "repro.experiments.snippet"):
    violations = check_source(textwrap.dedent(source), module=module)
    return [(v.line, v.rule_id) for v in violations if v.rule_id == "LVA002"]


POINT = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    workload: str
    mode: str
    seed: int
    faults: str
"""


class TestOmittedField:
    def test_deliberately_omitted_field_fires_at_def_line(self):
        # 'faults' is deliberately left out of the key — the seeded bad
        # snippet from the acceptance criteria. The violation anchors at
        # the function definition line.
        hits = _hits(
            POINT
            + """\


def point_disk_key(point: Point) -> tuple:
    return (point.workload, point.mode, point.seed)
"""
        )
        assert hits == [(12, "LVA002")]

    def test_message_names_function_field_and_class(self):
        violations = check_source(
            textwrap.dedent(
                POINT
                + """\


def point_disk_key(point: Point) -> tuple:
    return (point.workload, point.mode, point.seed)
"""
            ),
            module="repro.experiments.snippet",
        )
        (violation,) = [v for v in violations if v.rule_id == "LVA002"]
        assert "point_disk_key" in violation.message
        assert "'faults'" in violation.message
        assert "Point" in violation.message

    def test_two_omitted_fields_fire_twice(self):
        hits = _hits(
            POINT
            + """\


def point_cache_key(point: Point) -> tuple:
    return (point.workload, point.seed)
"""
        )
        assert hits == [(12, "LVA002"), (12, "LVA002")]

    def test_complete_key_is_clean(self):
        assert (
            _hits(
                POINT
                + """\


def point_disk_key(point: Point) -> tuple:
    return (point.workload, point.mode, point.seed, point.faults)
"""
            )
            == []
        )


class TestIndirection:
    def test_helper_forwarding_counts_reads(self):
        # The key function forwards the point into a same-module helper;
        # reads inside the helper count toward coverage.
        assert (
            _hits(
                POINT
                + """\


def _technique_fields(p: Point) -> tuple:
    return (p.mode, p.faults)


def point_disk_key(point: Point) -> tuple:
    return (point.workload, point.seed) + _technique_fields(point)
"""
            )
            == []
        )

    def test_helper_forwarding_still_flags_missing_field(self):
        assert _hits(
            POINT
            + """\


def _technique_fields(p: Point) -> tuple:
    return (p.mode,)


def point_disk_key(point: Point) -> tuple:
    return (point.workload, point.seed) + _technique_fields(point)
"""
        ) == [(16, "LVA002")]

    def test_escape_to_external_callable_covers_all_fields(self):
        # Passing the whole point to an unknown callable (wholesale
        # canonicalisation, like diskcache._canonical) counts as coverage.
        assert (
            _hits(
                POINT
                + """\
from repro.experiments.diskcache import point_key


def point_disk_key(point: Point) -> str:
    return point_key("k", point)
"""
            )
            == []
        )

    def test_dataclass_in_another_module_is_indexed(self):
        violations = check_sources(
            {
                "repro.experiments.points": textwrap.dedent(POINT),
                "repro.experiments.keys": textwrap.dedent(
                    """\
                    def point_disk_key(point: "Point") -> tuple:
                        return (point.workload, point.mode, point.seed)
                    """
                ),
            }
        )
        hits = [
            (v.path, v.line) for v in violations if v.rule_id == "LVA002"
        ]
        assert hits == [("<repro.experiments.keys>", 1)]


class TestScope:
    def test_non_key_function_is_ignored(self):
        assert (
            _hits(
                POINT
                + """\


def summarise(point: Point) -> tuple:
    return (point.workload,)
"""
            )
            == []
        )

    def test_unannotated_parameter_is_ignored(self):
        assert (
            _hits(
                POINT
                + """\


def point_disk_key(point) -> tuple:
    return (point.workload,)
"""
            )
            == []
        )

    def test_suppression_comment_silences(self):
        assert (
            _hits(
                POINT
                + """\


def precise_disk_key(point: Point) -> tuple:  # lva: ignore[LVA002]
    return (point.workload, point.seed)
"""
            )
            == []
        )
