"""Seeded-bug corpus: each flow rule catches its planted violation.

A miniature repo shaped like the real one (envspec module, sweep worker
module, trace store) with three deliberately planted bugs:

* an undeclared-influence bug — a ``neutral`` env var's value leaks
  into ``point_disk_key`` (LVA007);
* a determinism bug — a worker entry calls a host-side helper that
  reads the wall clock (LVA008);
* a write into a memory-mapped trace column (LVA009).

The buggy corpus must produce exactly the three planted findings; the
fixed corpus must be clean. This is the end-to-end proof that the rules
detect the failure modes they were built for, not just their fixture
shapes.
"""

from __future__ import annotations

import dataclasses
import textwrap
from typing import Dict, List

from repro.analysis import DEFAULT_CONFIG, check_sources
from repro.analysis.core import Violation

SELECT = frozenset({"LVA007", "LVA008", "LVA009"})

CONFIG = dataclasses.replace(
    DEFAULT_CONFIG,
    env_registry=(
        ("REPRO_SCALE", "neutral", "tests/experiments/test_scale.py", ""),
    ),
)

#: The registry module: one neutral variable, declared once.
ENVSPEC = """\
    SCALE_ENV = "REPRO_SCALE"
    """

#: The trace store (matches DEFAULT_CONFIG's mmap provider).
TRACESTORE = """\
    class TraceStore:
        def get(self, key):
            return None
    """

BUGGY = {
    "repro.envspec": ENVSPEC,
    "repro.experiments.tracestore": TRACESTORE,
    # Bug 1 (LVA007): the neutral scale factor flows into the disk key.
    "repro.experiments.scale": """\
        import os

        from repro.envspec import SCALE_ENV

        def read_scale():
            return float(os.environ.get(SCALE_ENV, "1.0"))

        def point_disk_key(point):
            return (point.workload, point.seed, read_scale())
        """,
    # Bug 2 (LVA008): the worker entry's helper reads the wall clock.
    "repro.experiments.helpers": """\
        import time

        def stamp_result(result):
            result.finished_at = time.time()
            return result
        """,
    "repro.experiments.sweep": """\
        from repro.experiments.helpers import stamp_result

        def _run_point(point):
            return stamp_result(point)
        """,
    # Bug 3 (LVA009): patching a column loaded from the shared store.
    "repro.experiments.repair": """\
        from repro.experiments.tracestore import TraceStore

        def zero_gaps(key):
            columns = TraceStore().get(key)
            columns[0] = 0
            return columns
        """,
}

FIXED = {
    "repro.envspec": ENVSPEC,
    "repro.experiments.tracestore": TRACESTORE,
    # Fix 1: the key no longer depends on the scale factor.
    "repro.experiments.scale": """\
        import os

        from repro.envspec import SCALE_ENV

        def read_scale():
            return float(os.environ.get(SCALE_ENV, "1.0"))

        def point_disk_key(point):
            return (point.workload, point.seed)
        """,
    # Fix 2: timestamps happen outside the worker path.
    "repro.experiments.helpers": """\
        def stamp_result(result, now):
            result.finished_at = now
            return result
        """,
    "repro.experiments.sweep": """\
        from repro.experiments.helpers import stamp_result

        def _run_point(point):
            return point
        """,
    # Fix 3: write into a materialized copy.
    "repro.experiments.repair": """\
        import numpy as np

        from repro.experiments.tracestore import TraceStore

        def zero_gaps(key):
            columns = np.array(TraceStore().get(key))
            columns[0] = 0
            return columns
        """,
}


def run(sources: Dict[str, str]) -> List[Violation]:
    return check_sources(
        {module: textwrap.dedent(source) for module, source in sources.items()},
        config=CONFIG,
        select=SELECT,
    )


def test_each_planted_bug_is_caught():
    violations = run(BUGGY)
    report = "\n".join(v.render() for v in violations)
    by_rule = {v.rule_id: v for v in violations}
    assert set(by_rule) == {"LVA007", "LVA008", "LVA009"}, report
    assert len(violations) == 3, report

    env = by_rule["LVA007"]
    assert env.path == "<repro.experiments.scale>"
    assert "REPRO_SCALE taints" in env.message
    assert "point_disk_key" in env.message

    det = by_rule["LVA008"]
    assert det.path == "<repro.experiments.helpers>"
    assert "time.time()" in det.message
    assert "_run_point" in det.message

    mmap = by_rule["LVA009"]
    assert mmap.path == "<repro.experiments.repair>"
    assert mmap.line == 5


def test_fixed_corpus_is_clean():
    violations = run(FIXED)
    assert violations == [], "\n".join(v.render() for v in violations)
