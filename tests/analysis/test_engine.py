"""Engine-level tests: module naming, suppressions, CLI exit codes."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import check_source, rule_ids, run_paths
from repro.analysis.cli import main
from repro.analysis.engine import SYNTAX_RULE_ID, discover_files, module_name_for

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A snippet that violates LVA002 in any module (the rule has no
#: package scope gate), so tmp_path files trigger it.
BAD_KEY = textwrap.dedent(
    """\
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class Point:
        workload: str
        seed: int


    def point_disk_key(point: Point) -> tuple:
        return (point.workload,)
    """
)

CLEAN = "VALUE = 1\n"


class TestModuleNaming:
    def test_walks_up_through_packages(self):
        path = REPO_ROOT / "src" / "repro" / "mem" / "cache.py"
        assert module_name_for(path) == "repro.mem.cache"

    def test_package_init_names_the_package(self):
        path = REPO_ROOT / "src" / "repro" / "analysis" / "__init__.py"
        assert module_name_for(path) == "repro.analysis"

    def test_bare_file_is_its_stem(self, tmp_path):
        target = tmp_path / "scratch.py"
        target.write_text(CLEAN)
        assert module_name_for(target) == "scratch"


class TestDiscovery:
    def test_directories_expand_recursively_and_sorted(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text(CLEAN)
        (tmp_path / "a.py").write_text(CLEAN)
        (tmp_path / "notes.txt").write_text("not python")
        files = discover_files([str(tmp_path)])
        names = [path.name for path, _display in files]
        assert names == ["a.py", "b.py"]

    def test_explicit_file_and_directory_dedupe(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text(CLEAN)
        files = discover_files([str(tmp_path), str(target)])
        assert len(files) == 1


class TestSyntaxErrors:
    def test_unparseable_file_reports_lva000(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        violations = run_paths([str(target)])
        assert [v.rule_id for v in violations] == [SYNTAX_RULE_ID]
        assert violations[0].line == 1

    def test_syntax_error_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        assert main([str(target)]) == 1
        assert "LVA000" in capsys.readouterr().out


class TestCLI:
    def test_clean_file_exits_zero_with_summary(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN)
        assert main([str(target)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "1 files checked" in out

    def test_violations_exit_one_and_render_location(self, tmp_path, capsys):
        target = tmp_path / "keys.py"
        target.write_text(BAD_KEY)
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "LVA002" in out
        assert "keys.py:10:" in out

    def test_no_files_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "empty")]) == 2
        assert "no Python files" in capsys.readouterr().err

    def test_select_other_rule_skips_violation(self, tmp_path):
        target = tmp_path / "keys.py"
        target.write_text(BAD_KEY)
        assert main([str(target), "--select", "LVA003", "--no-summary"]) == 0

    def test_ignore_silences_violation(self, tmp_path):
        target = tmp_path / "keys.py"
        target.write_text(BAD_KEY)
        assert main([str(target), "--ignore", "LVA002", "--no-summary"]) == 0

    def test_rule_ids_are_case_insensitive(self, tmp_path):
        target = tmp_path / "keys.py"
        target.write_text(BAD_KEY)
        assert main([str(target), "--ignore", "lva002", "--no-summary"]) == 0

    def test_list_rules_prints_all(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "LVA001",
            "LVA002",
            "LVA003",
            "LVA004",
            "LVA005",
            "LVA006",
        ):
            assert rule_id in out


class TestRegistry:
    def test_all_rules_registered(self):
        assert list(rule_ids()) == [
            "LVA001",
            "LVA002",
            "LVA003",
            "LVA004",
            "LVA005",
            "LVA006",
            "LVA007",
            "LVA008",
            "LVA009",
        ]

    def test_violation_render_format(self):
        (violation,) = check_source(
            "import random\nrandom.seed(1)\n", module="repro.sim.snippet"
        )
        assert violation.render() == (
            "<repro.sim.snippet>:2:1: LVA001 " + violation.message
        )
