"""SARIF 2.1.0 output (``lva-lint --sarif``)."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import check_source, render_sarif, rule_ids, to_sarif
from repro.analysis.cli import main
from repro.analysis.engine import STALE_IGNORE_RULE_ID, SYNTAX_RULE_ID

BAD_KEY = textwrap.dedent(
    """\
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class Point:
        workload: str
        seed: int


    def point_disk_key(point: Point) -> tuple:
        return (point.workload,)
    """
)


def test_log_shape_and_result_fields():
    violations = check_source(BAD_KEY, module="proj.keys")
    log = to_sarif(violations)
    assert log["version"] == "2.1.0"
    assert "sarif-2.1.0" in log["$schema"]
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "lva-lint"

    (result,) = run["results"]
    assert result["ruleId"] == "LVA002"
    assert result["level"] == "error"
    assert result["message"]["text"]
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "<proj.keys>"
    assert location["region"]["startLine"] == 10
    assert location["region"]["startColumn"] == 1


def test_driver_rules_cover_registry_and_pseudo_rules():
    log = to_sarif([])
    (run,) = log["runs"]
    listed = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert set(rule_ids()) <= listed
    assert SYNTAX_RULE_ID in listed
    assert STALE_IGNORE_RULE_ID in listed


def test_render_is_stable_and_parseable():
    violations = check_source(BAD_KEY, module="proj.keys")
    first = render_sarif(violations)
    second = render_sarif(list(reversed(violations)))
    assert first == second
    assert json.loads(first)["version"] == "2.1.0"


def test_cli_writes_sarif_file(tmp_path, capsys):
    target = tmp_path / "keys.py"
    target.write_text(BAD_KEY)
    out = tmp_path / "lint.sarif"
    assert main([str(target), "--sarif", str(out), "--no-summary"]) == 1
    log = json.loads(out.read_text())
    assert [r["ruleId"] for r in log["runs"][0]["results"]] == ["LVA002"]


def test_cli_clean_tree_writes_empty_results(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("VALUE = 1\n")
    out = tmp_path / "lint.sarif"
    assert main([str(target), "--sarif", str(out), "--no-summary"]) == 0
    assert json.loads(out.read_text())["runs"][0]["results"] == []
