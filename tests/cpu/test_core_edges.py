"""Edge-condition tests for the core timing model."""

import pytest

from repro.cpu.core import CoreConfig, CoreTimingModel


class TestAdvanceChunking:
    def test_advance_zero_is_noop(self):
        core = CoreTimingModel()
        core.advance(0)
        assert core.clock == 0.0
        assert core.stats.instructions == 0

    def test_advance_negative_is_noop(self):
        core = CoreTimingModel()
        core.advance(-5)
        assert core.clock == 0.0

    def test_long_advance_stalls_midstream_behind_miss(self):
        """A miss must stall the window partway through a long slug of
        work, not let the whole slug slide past."""
        core = CoreTimingModel(CoreConfig(width=4, rob_entries=8))
        core.issue_load(1000)
        core.advance(10_000)
        # The ROB admits only 8 instructions before waiting at cycle ~1000;
        # total = stall + remaining compute.
        total = core.finish()
        assert total >= 1000 + (10_000 - 8) / 4 - 1

    def test_work_after_miss_completion_not_stalled(self):
        core = CoreTimingModel(CoreConfig(width=4, rob_entries=8))
        core.issue_load(2)  # resolves almost immediately
        core.advance(400)
        assert core.finish() == pytest.approx(0.25 + 400 / 4, abs=3)


class TestFinish:
    def test_finish_waits_for_last_miss(self):
        core = CoreTimingModel()
        core.issue_load(500)
        assert core.finish() >= 500

    def test_finish_idempotent(self):
        core = CoreTimingModel()
        core.issue_load(100)
        first = core.finish()
        assert core.finish() == first

    def test_finish_without_events(self):
        assert CoreTimingModel().finish() == 0.0


class TestMixedStreams:
    def test_interleaved_hits_and_misses(self):
        core = CoreTimingModel(CoreConfig(width=4, rob_entries=32))
        for i in range(20):
            core.issue_load(0 if i % 2 else 30)
            core.advance(10)
        total = core.finish()
        # Sanity corridor: more than pure compute, less than full
        # serialization of every miss.
        compute_only = (20 * 11) / 4
        serialized = compute_only + 10 * 30
        assert compute_only < total < serialized

    def test_nonblocking_mixed_with_blocking(self):
        blocking = CoreTimingModel()
        mixed = CoreTimingModel()
        for _ in range(10):
            blocking.issue_load(50)
            mixed.issue_load(50, blocking=False)
            blocking.advance(5)
            mixed.advance(5)
        assert mixed.finish() < blocking.finish()
