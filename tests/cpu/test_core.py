"""Tests for the out-of-order core timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import CoreConfig, CoreTimingModel
from repro.errors import ConfigurationError


class TestThroughput:
    def test_width_limited_ipc(self):
        core = CoreTimingModel(CoreConfig(width=4))
        core.advance(400)
        assert core.finish() == pytest.approx(100.0)

    def test_hit_loads_cost_issue_slot_only(self):
        core = CoreTimingModel(CoreConfig(width=4))
        for _ in range(8):
            core.issue_load(0)
        assert core.finish() == pytest.approx(2.0)


class TestMissOverlap:
    def test_single_miss_fully_exposed_when_no_work(self):
        core = CoreTimingModel()
        core.issue_load(100)
        assert core.finish() == pytest.approx(100.25)

    def test_miss_latency_hidden_by_following_work(self):
        # ROB of 32 lets up to 32 instructions slide past the miss... but
        # the core still waits for the miss at finish().
        core = CoreTimingModel(CoreConfig(width=4, rob_entries=32))
        core.issue_load(20)
        core.advance(200)
        # The first 32 instrs overlap with the miss; once the window fills the
        # core stalls until cycle ~20, then runs the rest.
        total = core.finish()
        assert total < 0.25 + 20 + 200 / 4  # strictly better than serial
        assert total >= 200 / 4  # cannot beat pure compute throughput

    def test_rob_stall_on_back_to_back_misses(self):
        core = CoreTimingModel(CoreConfig(width=4, rob_entries=4))
        for _ in range(8):
            core.issue_load(100)
        # With a 4-entry window, misses resolve in waves; far more than one
        # latency must be exposed.
        assert core.finish() > 150

    def test_two_misses_overlap_within_window(self):
        core = CoreTimingModel(CoreConfig(width=4, rob_entries=32))
        core.issue_load(100)
        core.issue_load(100)
        # Both fit in the window: total ~ 100, not 200.
        assert core.finish() < 110

    def test_nonblocking_load_never_stalls(self):
        core = CoreTimingModel()
        for _ in range(100):
            core.issue_load(500, blocking=False)
        assert core.finish() == pytest.approx(25.0)

    def test_stall_cycles_recorded(self):
        core = CoreTimingModel(CoreConfig(width=4, rob_entries=4))
        core.issue_load(100)
        core.advance(100)
        core.finish()
        assert core.stats.stall_cycles > 0


class TestStats:
    def test_instruction_count(self):
        core = CoreTimingModel()
        core.advance(10)
        core.issue_load(5)
        core.issue_load(0)
        assert core.stats.instructions == 12

    def test_average_miss_latency(self):
        core = CoreTimingModel()
        core.issue_load(100)
        core.issue_load(50)
        assert core.stats.average_miss_latency == pytest.approx(75.0)

    def test_hits_not_counted_as_misses(self):
        core = CoreTimingModel()
        core.issue_load(0)
        assert core.stats.load_misses == 0

    def test_reset(self):
        core = CoreTimingModel()
        core.issue_load(100)
        core.reset()
        assert core.clock == 0
        assert core.stats.instructions == 0


class TestValidation:
    def test_zero_width_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(width=0)

    def test_zero_rob_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(rob_entries=0)


class TestProperties:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 50)), max_size=60))
    def test_clock_monotonic(self, events):
        core = CoreTimingModel()
        previous = 0.0
        for is_load, amount in events:
            if is_load:
                core.issue_load(amount)
            else:
                core.advance(amount)
            assert core.clock >= previous
            previous = core.clock

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=40))
    def test_blocking_never_faster_than_nonblocking(self, latencies):
        blocking = CoreTimingModel()
        nonblocking = CoreTimingModel()
        for latency in latencies:
            blocking.issue_load(latency)
            nonblocking.issue_load(latency, blocking=False)
        assert blocking.finish() >= nonblocking.finish()

    @settings(max_examples=30)
    @given(st.lists(st.integers(1, 60), min_size=1, max_size=30))
    def test_total_at_least_issue_time(self, latencies):
        core = CoreTimingModel(CoreConfig(width=4))
        for latency in latencies:
            core.issue_load(latency)
        assert core.finish() >= len(latencies) / 4
