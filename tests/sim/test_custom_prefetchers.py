"""Plugging custom prefetchers into the phase-1 simulator."""


from repro.mem.cache import CacheConfig
from repro.prefetch.base import Prefetcher
from repro.prefetch.nextline import NextLinePrefetcher
from repro.sim.tracesim import Mode, TraceSimulator

TINY_L1 = CacheConfig(size_bytes=8 * 64, associativity=2, block_bytes=64)


def sequential_scan(sim, blocks=32):
    region = sim.space.alloc("x", blocks, itemsize=64)
    for i in range(blocks):
        sim.store(region.addr(i), float(i))
    for i in range(blocks):
        sim.load(0x400, region.addr(i))
    return sim.finish()


class TestNextLineInjection:
    def test_nextline_covers_sequential_scan(self):
        sim = TraceSimulator(
            Mode.PREFETCH,
            l1_config=TINY_L1,
            prefetcher=NextLinePrefetcher(degree=2),
        )
        stats = sequential_scan(sim)
        # Miss-triggered next-line with degree 2 converts the scan into a
        # miss every third block (32 blocks -> ~11 misses instead of 32).
        assert stats.raw_misses <= 12
        assert stats.prefetch_fetches > 0

    def test_degree_zero_prefetcher_is_precise_equivalent(self):
        with_pf = TraceSimulator(
            Mode.PREFETCH, l1_config=TINY_L1, prefetcher=NextLinePrefetcher(degree=0)
        )
        stats_pf = sequential_scan(with_pf)
        precise = TraceSimulator(Mode.PRECISE, l1_config=TINY_L1)
        stats_precise = sequential_scan(precise)
        assert stats_pf.raw_misses == stats_precise.raw_misses
        assert stats_pf.fetches == stats_precise.fetches


class _EveryBlockPrefetcher(Prefetcher):
    """A deliberately aggressive user-defined prefetcher."""

    def on_miss(self, pc, addr):
        base = self.block_of(addr)
        return self._record([base + (i + 1) * 64 for i in range(self.degree)])


class TestUserDefinedPrefetcher:
    def test_custom_class_accepted(self):
        sim = TraceSimulator(
            Mode.PREFETCH,
            l1_config=TINY_L1,
            prefetcher=_EveryBlockPrefetcher(degree=4),
        )
        stats = sequential_scan(sim)
        assert stats.prefetch_fetches > 0
        assert sim.prefetcher.stats.triggers == stats.raw_misses

    def test_useless_prefetches_counted_but_not_covered(self):
        """Prefetching a stream backwards fetches garbage: fetches rise,
        misses stay (the energy cost the paper charges prefetching with)."""

        class BackwardsPrefetcher(Prefetcher):
            def on_miss(self, pc, addr):
                base = self.block_of(addr)
                return self._record(
                    [base - (i + 1) * 64 for i in range(self.degree) if base >= (i + 1) * 64]
                )

        sim = TraceSimulator(
            Mode.PREFETCH, l1_config=TINY_L1, prefetcher=BackwardsPrefetcher(degree=4)
        )
        stats = sequential_scan(sim)
        precise = TraceSimulator(Mode.PRECISE, l1_config=TINY_L1)
        stats_precise = sequential_scan(precise)
        assert stats.fetches > stats_precise.fetches
        assert stats.raw_misses >= stats_precise.raw_misses
