"""Tests for the memory front-end (address space, value store, recording)."""

import pytest

from repro.errors import AddressError, ConfigurationError
from repro.sim.frontend import AddressSpace, PreciseMemory
from repro.sim.trace import TraceRecorder


class TestAddressSpace:
    def test_regions_are_page_aligned_and_disjoint(self):
        space = AddressSpace()
        a = space.alloc("a", 10)
        b = space.alloc("b", 10)
        assert a.base % AddressSpace.PAGE == 0
        assert b.base % AddressSpace.PAGE == 0
        assert b.base >= a.end

    def test_region_addressing(self):
        space = AddressSpace()
        region = space.alloc("x", 4, itemsize=8)
        assert region.addr(0) == region.base
        assert region.addr(3) == region.base + 24

    def test_custom_itemsize_stride(self):
        space = AddressSpace()
        region = space.alloc("aos", 4, itemsize=48)
        assert region.addr(1) - region.addr(0) == 48

    def test_out_of_bounds_rejected(self):
        region = AddressSpace().alloc("x", 4)
        with pytest.raises(AddressError):
            region.addr(4)
        with pytest.raises(AddressError):
            region.addr(-1)

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("x", 1)
        with pytest.raises(ConfigurationError):
            space.alloc("x", 1)

    def test_lookup_by_name(self):
        space = AddressSpace()
        region = space.alloc("x", 1)
        assert space.region("x") is region

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressSpace().alloc("x", 0)


class TestPreciseMemory:
    def test_store_load_roundtrip(self):
        mem = PreciseMemory()
        region = mem.space.alloc("x", 4)
        mem.store(region.addr(2), 3.75)
        assert mem.load(0x400, region.addr(2)) == 3.75

    def test_load_approx_returns_precise_value(self):
        mem = PreciseMemory()
        region = mem.space.alloc("x", 1)
        mem.store(region.addr(0), 42)
        assert mem.load_approx(0x400, region.addr(0), is_float=False) == 42

    def test_unwritten_address_rejected(self):
        mem = PreciseMemory()
        with pytest.raises(AddressError):
            mem.load(0x400, 0xDEAD000)

    def test_instruction_accounting(self):
        mem = PreciseMemory()
        region = mem.space.alloc("x", 1)
        mem.store(region.addr(0), 1.0)     # 1 instruction
        mem.load(0x400, region.addr(0))    # 1 instruction
        mem.advance(10)                    # 10 instructions
        assert mem.instructions == 12

    def test_thread_tracking(self):
        mem = PreciseMemory()
        assert mem.thread == 0
        mem.set_thread(3)
        assert mem.thread == 3


class TestRecording:
    def test_loads_recorded_with_gaps(self):
        recorder = TraceRecorder()
        mem = PreciseMemory(recorder=recorder)
        region = mem.space.alloc("x", 2)
        mem.store(region.addr(0), 1.0)
        mem.store(region.addr(1), 2.0)
        mem.advance(5)
        mem.load_approx(0x400, region.addr(0))
        mem.set_thread(1)
        mem.load(0x404, region.addr(1))

        trace = recorder.trace
        assert len(trace) == 2
        first, second = trace.events
        # Stores count as (non-load) gap instructions for their thread.
        assert first.gap == 7
        assert first.approximable and first.value == 1.0 and first.tid == 0
        assert second.gap == 0
        assert not second.approximable and second.tid == 1

    def test_per_thread_split(self):
        recorder = TraceRecorder()
        mem = PreciseMemory(recorder=recorder)
        region = mem.space.alloc("x", 1)
        mem.store(region.addr(0), 1.0)
        for tid in (0, 1, 0, 2):
            mem.set_thread(tid)
            mem.load(0x400, region.addr(0))
        streams = recorder.trace.per_thread()
        assert {k: len(v) for k, v in streams.items()} == {0: 2, 1: 1, 2: 1}

    def test_total_instructions(self):
        recorder = TraceRecorder()
        mem = PreciseMemory(recorder=recorder)
        region = mem.space.alloc("x", 1)
        mem.store(region.addr(0), 1.0)
        mem.advance(9)
        mem.load(0x400, region.addr(0))
        assert recorder.trace.total_instructions == 11
