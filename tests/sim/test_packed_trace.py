"""Tests for the columnar PackedTrace representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.trace import TRACE_COLUMNS, LoadEvent, PackedTrace, Trace


def sample_events():
    return [
        LoadEvent(tid=0, pc=0x400, addr=0x1000, value=3.25, is_float=True,
                  approximable=True, gap=12),
        LoadEvent(tid=1, pc=0x404, addr=0x2000, value=-7, is_float=False,
                  approximable=False, gap=0),
        LoadEvent(tid=1, pc=0, addr=0x2040, value=0, is_float=False,
                  approximable=False, gap=3, is_store=True),
        LoadEvent(tid=3, pc=0x408, addr=0x3000, value=2**40, is_float=False,
                  approximable=True, gap=999),
        # A float-typed load whose precise value happens to be an int:
        # the value's Python type must survive packing independently of
        # the semantic is_float flag.
        LoadEvent(tid=0, pc=0x40C, addr=0x1040, value=5, is_float=True,
                  approximable=True, gap=1),
    ]


class TestRoundTrip:
    def test_pack_to_trace_is_lossless(self):
        original = Trace(sample_events())
        assert original.pack().to_trace().events == original.events

    def test_empty_trace_round_trips(self):
        packed = Trace().pack()
        assert len(packed) == 0
        assert packed.to_trace().events == []
        assert packed.total_instructions == 0

    def test_value_python_types_preserved(self):
        restored = Trace(sample_events()).pack().to_trace()
        assert isinstance(restored.events[0].value, float)
        assert isinstance(restored.events[1].value, int)
        assert restored.events[3].value == 2**40
        # is_float=True with an int value stays an int.
        assert restored.events[4].value == 5
        assert isinstance(restored.events[4].value, int)
        assert restored.events[4].is_float is True

    def test_store_events_preserved(self):
        restored = Trace(sample_events()).pack().to_trace()
        assert [e.is_store for e in restored.events] == [
            False, False, True, False, False,
        ]

    def test_total_instructions_match(self):
        trace = Trace(sample_events())
        assert trace.pack().total_instructions == trace.total_instructions

    def test_column_dtypes_are_canonical(self):
        packed = Trace(sample_events()).pack()
        for name, dtype in TRACE_COLUMNS:
            assert packed.columns()[name].dtype == np.dtype(dtype), name


class TestFromArrays:
    def test_casts_and_accepts_lists(self):
        packed = PackedTrace.from_arrays(
            {
                "tid": [0, 1],
                "pc": [1, 2],
                "addr": [16, 32],
                "value_f": [0.5, 0.0],
                "value_i": [0, 9],
                "value_is_int": [False, True],
                "is_float": [True, False],
                "approximable": [True, False],
                "gap": [0, 3],
                "is_store": [False, False],
            }
        )
        assert packed.value_list() == [0.5, 9]

    def test_legacy_columns_backfilled(self):
        """Files predating value_is_int/is_store load with the historical
        semantics: value type follows is_float, no stores."""
        packed = PackedTrace.from_arrays(
            {
                "tid": [0, 0],
                "pc": [1, 2],
                "addr": [16, 32],
                "value_f": [0.5, 7.0],
                "value_i": [0, 7],
                "is_float": [True, False],
                "approximable": [True, False],
                "gap": [0, 3],
            }
        )
        assert not packed.is_store.any()
        values = packed.value_list()
        assert isinstance(values[0], float) and isinstance(values[1], int)

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            PackedTrace.from_arrays(
                {
                    "tid": [0],
                    "pc": [1],
                    "addr": [16],
                    "value_f": [0.5],
                    "value_i": [0],
                    "value_is_int": [False],
                    "is_float": [True, False],  # ragged
                    "approximable": [True],
                    "gap": [0],
                    "is_store": [False],
                }
            )

    def test_missing_required_column_rejected(self):
        with pytest.raises(ValueError):
            PackedTrace.from_arrays({"is_float": [True]})


class TestViews:
    def test_event_tuples_match_events(self):
        trace = Trace(sample_events())
        tuples = trace.pack().event_tuples()
        assert tuples == [
            (e.pc, e.addr, e.value, e.is_float, e.approximable, e.gap, e.is_store)
            for e in trace.events
        ]

    def test_thread_order_is_first_appearance(self):
        assert Trace(sample_events()).pack().thread_order() == [0, 1, 3]

    def test_per_thread_matches_object_split(self):
        trace = Trace(sample_events())
        object_split = trace.per_thread()
        packed_split = trace.pack().per_thread()
        assert list(packed_split) == list(object_split)
        for tid, sub in packed_split.items():
            assert sub.to_trace().events == object_split[tid]

    def test_per_core_indices_concatenates_whole_streams(self):
        # tids 0, 1, 3 on 2 cores: core 0 <- tid 0; core 1 <- tid 1 then 3,
        # whole streams concatenated in first-appearance order.
        packed = Trace(sample_events()).pack()
        queues = packed.per_core_indices(2)
        assert list(queues) == [0, 1]
        assert queues[0].tolist() == [0, 4]
        assert queues[1].tolist() == [1, 2, 3]

    def test_select_reorders_rows(self):
        packed = Trace(sample_events()).pack()
        reversed_trace = packed.select(np.arange(len(packed))[::-1]).to_trace()
        assert reversed_trace.events == list(reversed(packed.to_trace().events))

    def test_nbytes_positive(self):
        assert Trace(sample_events()).pack().nbytes > 0


class TestTraceInit:
    def test_default_is_independent_empty_list(self):
        a, b = Trace(), Trace()
        a.append(sample_events()[0])
        assert len(a) == 1 and len(b) == 0

    def test_per_thread_preserves_interleaved_order(self):
        events = [
            LoadEvent(tid=i % 2, pc=i, addr=i * 64, value=i, is_float=False,
                      approximable=False, gap=0)
            for i in range(10)
        ]
        streams = Trace(events).per_thread()
        assert [e.pc for e in streams[0]] == [0, 2, 4, 6, 8]
        assert [e.pc for e in streams[1]] == [1, 3, 5, 7, 9]


class TestEdgeCaseTraces:
    """Degenerate traces must round-trip and replay identically on all
    three replay paths (empty, store-only, single-event)."""

    @staticmethod
    def _edge_traces():
        return {
            "empty": Trace(),
            "store_only": Trace([
                LoadEvent(tid=0, pc=0, addr=0x40 * i, value=0, is_float=False,
                          approximable=False, gap=i, is_store=True)
                for i in range(3)
            ]),
            "single_load": Trace([
                LoadEvent(tid=0, pc=0x400, addr=0x1000, value=1.5, is_float=True,
                          approximable=True, gap=7)
            ]),
            "single_store": Trace([
                LoadEvent(tid=0, pc=0, addr=0x1000, value=0, is_float=False,
                          approximable=False, gap=0, is_store=True)
            ]),
        }

    @pytest.mark.parametrize("name", ["empty", "store_only", "single_load",
                                      "single_store"])
    def test_round_trip(self, name):
        trace = self._edge_traces()[name]
        packed = trace.pack()
        assert len(packed) == len(trace)
        assert packed.to_trace().events == trace.events

    @pytest.mark.parametrize("name", ["empty", "store_only", "single_load",
                                      "single_store"])
    def test_replays_identically_on_all_paths(self, name, monkeypatch):
        from repro import Mode, TraceSimulator

        trace = self._edge_traces()[name]
        results = {}
        for path in ("object", "packed", "vector"):
            monkeypatch.setenv("REPRO_REPLAY_KERNEL", path)
            sim = TraceSimulator(Mode.LVA)
            results[path] = sim.replay(trace.pack())
        assert results["packed"] == results["object"]
        assert results["vector"] == results["object"]
