"""Behavioural tests for the phase-1 trace simulator."""


from repro.core.config import ApproximatorConfig
from repro.mem.cache import CacheConfig
from repro.sim.tracesim import Mode, TraceSimulator

TINY_L1 = CacheConfig(size_bytes=4 * 64, associativity=1, block_bytes=64)


def make_sim(mode=Mode.LVA, config=None, l1=TINY_L1, **kwargs):
    sim = TraceSimulator(mode, approximator_config=config, l1_config=l1, **kwargs)
    return sim


def fill_values(sim, region, values):
    for i, value in enumerate(values):
        sim.store(region.addr(i), value)


class TestPreciseMode:
    def test_every_miss_fetches(self):
        sim = make_sim(Mode.PRECISE)
        region = sim.space.alloc("x", 64)
        fill_values(sim, region, [float(i) for i in range(64)])
        for i in range(64):
            sim.load(0x400, region.addr(i))
        stats = sim.finish()
        assert stats.fetches == stats.raw_misses
        assert stats.covered_misses == 0

    def test_values_always_precise(self):
        sim = make_sim(Mode.PRECISE)
        region = sim.space.alloc("x", 8)
        fill_values(sim, region, [float(i) for i in range(8)])
        for i in range(8):
            assert sim.load_approx(0x400, region.addr(i)) == float(i)

    def test_spatial_locality_hits(self):
        sim = make_sim(Mode.PRECISE)
        region = sim.space.alloc("x", 8)  # one 64B block
        fill_values(sim, region, [1.0] * 8)
        for i in range(8):
            sim.load(0x400, region.addr(i))
        stats = sim.finish()
        assert stats.raw_misses == 1
        assert stats.loads == 8


class TestLVAMode:
    def test_covered_miss_returns_approximation(self):
        sim = make_sim(config=ApproximatorConfig(apply_confidence_to_floats=False))
        region = sim.space.alloc("x", 64, itemsize=64)  # one block each
        fill_values(sim, region, [10.0] * 64)
        returned = [sim.load_approx(0x400, region.addr(i)) for i in range(64)]
        stats = sim.finish()
        assert stats.covered_misses > 0
        # After the first (cold) miss, approximations serve 10.0 anyway.
        assert all(v == 10.0 for v in returned)

    def test_clobbered_value_visible_to_application(self):
        sim = make_sim(config=ApproximatorConfig(apply_confidence_to_floats=False))
        region = sim.space.alloc("x", 64, itemsize=64)
        values = [1.0, 2.0, 3.0, 4.0] + [100.0] * 60
        fill_values(sim, region, values)
        returned = [sim.load_approx(0x400, region.addr(i)) for i in range(64)]
        # The load of 100.0 at index 4 must have been approximated from the
        # LHB average of earlier values — visibly different from memory.
        assert returned[4] != 100.0

    def test_effective_mpki_counts_covered_as_hits(self):
        sim = make_sim(config=ApproximatorConfig(apply_confidence_to_ints=False))
        region = sim.space.alloc("x", 32, itemsize=64)
        fill_values(sim, region, [7] * 32)
        for i in range(32):
            sim.load_approx(0x400, region.addr(i), is_float=False)
        stats = sim.finish()
        assert stats.effective_misses == stats.raw_misses - stats.covered_misses
        assert stats.mpki < stats.raw_mpki

    def test_degree_zero_fetches_every_miss(self):
        sim = make_sim(config=ApproximatorConfig(apply_confidence_to_floats=False))
        region = sim.space.alloc("x", 32, itemsize=64)
        fill_values(sim, region, [5.0] * 32)
        for i in range(32):
            sim.load_approx(0x400, region.addr(i))
        stats = sim.finish()
        assert stats.fetches == stats.raw_misses
        assert stats.fetches_avoided == 0

    def test_degree_skips_fetches(self):
        config = ApproximatorConfig(
            approximation_degree=4, apply_confidence_to_floats=False
        )
        sim = make_sim(config=config)
        region = sim.space.alloc("x", 64, itemsize=64)
        fill_values(sim, region, [5.0] * 64)
        for i in range(64):
            sim.load_approx(0x400, region.addr(i))
        stats = sim.finish()
        assert stats.fetches_avoided > 0
        assert stats.fetches + stats.fetches_avoided == stats.raw_misses
        assert stats.fetches < stats.raw_misses / 2

    def test_skipped_fetch_leaves_block_uncached(self):
        config = ApproximatorConfig(
            approximation_degree=100,
            apply_confidence_to_floats=False,
            value_delay=0,  # train immediately so load 2 finds a warm entry
        )
        sim = make_sim(config=config)
        region = sim.space.alloc("x", 2, itemsize=64)
        fill_values(sim, region, [1.0, 1.0])
        sim.load_approx(0x400, region.addr(0))   # cold: fetch + train
        sim.load_approx(0x400, region.addr(1))   # approximated, no fetch
        assert not sim.l1.contains(region.addr(1))

    def test_non_approximable_loads_behave_precisely(self):
        sim = make_sim()
        region = sim.space.alloc("x", 32, itemsize=64)
        fill_values(sim, region, [float(i) for i in range(32)])
        returned = [sim.load(0x400, region.addr(i)) for i in range(32)]
        stats = sim.finish()
        assert returned == [float(i) for i in range(32)]
        assert stats.covered_misses == 0

    def test_static_pcs_only_count_approx_loads(self):
        sim = make_sim()
        region = sim.space.alloc("x", 2, itemsize=64)
        fill_values(sim, region, [1.0, 2.0])
        sim.load_approx(0x100, region.addr(0))
        sim.load(0x200, region.addr(1))
        stats = sim.finish()
        assert stats.static_approx_pcs == {0x100}


class TestValueDelaySemantics:
    def test_training_deferred_by_delay(self):
        config = ApproximatorConfig(value_delay=4, apply_confidence_to_floats=False)
        sim = make_sim(config=config)
        region = sim.space.alloc("x", 16, itemsize=64)
        fill_values(sim, region, [3.0] * 16)
        sim.load_approx(0x400, region.addr(0))   # miss, trains after 4 loads
        # Immediately after, the approximator is still cold for this PC.
        assert sim.approximator.stats.trainings == 0
        for i in range(1, 5):
            sim.load_approx(0x400, region.addr(i))
        assert sim.approximator.stats.trainings >= 1

    def test_finish_flushes_pending_trainings(self):
        config = ApproximatorConfig(value_delay=100)
        sim = make_sim(config=config)
        region = sim.space.alloc("x", 4, itemsize=64)
        fill_values(sim, region, [1.0] * 4)
        for i in range(4):
            sim.load_approx(0x400, region.addr(i))
        sim.finish()
        assert sim.approximator.stats.trainings == 4


class TestLVPMode:
    def test_always_fetches_one_to_one(self):
        sim = make_sim(Mode.LVP)
        region = sim.space.alloc("x", 32, itemsize=64)
        fill_values(sim, region, [9.0] * 32)
        for i in range(32):
            sim.load_approx(0x400, region.addr(i))
        stats = sim.finish()
        assert stats.fetches == stats.raw_misses

    def test_app_always_sees_precise_values(self):
        sim = make_sim(Mode.LVP)
        region = sim.space.alloc("x", 16, itemsize=64)
        fill_values(sim, region, [float(i) for i in range(16)])
        returned = [sim.load_approx(0x400, region.addr(i)) for i in range(16)]
        assert returned == [float(i) for i in range(16)]

    def test_exact_repeats_are_covered(self):
        sim = make_sim(Mode.LVP, config=ApproximatorConfig(value_delay=0))
        region = sim.space.alloc("x", 32, itemsize=64)
        fill_values(sim, region, [4.0] * 32)
        for i in range(32):
            sim.load_approx(0x400, region.addr(i))
        stats = sim.finish()
        assert stats.covered_misses > 0

    def test_unique_values_never_covered(self):
        sim = make_sim(Mode.LVP)
        region = sim.space.alloc("x", 32, itemsize=64)
        fill_values(sim, region, [float(i) * 1.1 for i in range(32)])
        for i in range(32):
            sim.load_approx(0x400, region.addr(i))
        stats = sim.finish()
        assert stats.covered_misses == 0


class TestPrefetchMode:
    def test_prefetches_increase_fetches(self):
        sim = make_sim(Mode.PREFETCH, prefetch_degree=4)
        region = sim.space.alloc("x", 64, itemsize=64)
        fill_values(sim, region, [1.0] * 64)
        for i in range(0, 64, 4):  # strided misses
            sim.load_approx(0x400, region.addr(i))
        stats = sim.finish()
        assert stats.prefetch_fetches > 0
        assert stats.fetches > stats.raw_misses

    def test_sequential_stream_gets_covered_by_prefetch(self):
        sim = make_sim(Mode.PREFETCH, prefetch_degree=4,
                       l1=CacheConfig(size_bytes=64 * 64, associativity=8))
        region = sim.space.alloc("x", 64, itemsize=64)
        fill_values(sim, region, [1.0] * 64)
        for i in range(64):
            sim.load(0x400, region.addr(i))
        stats = sim.finish()
        # Next-line/stride prefetching turns most of the stream into hits.
        assert stats.raw_misses < 20


class TestStores:
    def test_store_hit_dirties_without_fetch(self):
        sim = make_sim(Mode.PRECISE)
        region = sim.space.alloc("x", 8)
        fill_values(sim, region, [1.0] * 8)
        sim.load(0x400, region.addr(0))       # fetch the block
        fetches_before = sim.stats.fetches
        sim.store(region.addr(1), 9.0)
        assert sim.stats.fetches == fetches_before

    def test_streaming_store_invalidates(self):
        sim = make_sim(Mode.PRECISE)
        region = sim.space.alloc("x", 8)
        fill_values(sim, region, [1.0] * 8)
        sim.load(0x400, region.addr(0))
        assert sim.l1.contains(region.addr(0))
        sim.store(region.addr(0), 2.0, streaming=True)
        assert not sim.l1.contains(region.addr(0))
