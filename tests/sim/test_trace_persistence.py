"""Tests for trace save/load round-tripping."""


from repro.sim.trace import LoadEvent, Trace


def sample_trace():
    return Trace([
        LoadEvent(tid=0, pc=0x400, addr=0x1000, value=3.25, is_float=True,
                  approximable=True, gap=12),
        LoadEvent(tid=1, pc=0x404, addr=0x2000, value=-7, is_float=False,
                  approximable=False, gap=0),
        LoadEvent(tid=3, pc=0x408, addr=0x3000, value=2**40, is_float=False,
                  approximable=True, gap=999),
    ])


class TestRoundTrip:
    def test_events_identical_after_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.npz")
        original = sample_trace()
        original.save(path)
        restored = Trace.load(path)
        assert restored.events == original.events

    def test_value_types_preserved(self, tmp_path):
        path = str(tmp_path / "trace.npz")
        sample_trace().save(path)
        restored = Trace.load(path)
        assert isinstance(restored.events[0].value, float)
        assert isinstance(restored.events[1].value, int)

    def test_large_int_values_exact(self, tmp_path):
        path = str(tmp_path / "trace.npz")
        sample_trace().save(path)
        restored = Trace.load(path)
        assert restored.events[2].value == 2**40

    def test_total_instructions_preserved(self, tmp_path):
        path = str(tmp_path / "trace.npz")
        original = sample_trace()
        original.save(path)
        assert Trace.load(path).total_instructions == original.total_instructions

    def test_workload_trace_roundtrip(self, tmp_path):
        """A real captured trace replays identically after persistence."""
        from repro import FullSystemConfig, FullSystemSimulator, Mode, TraceRecorder, TraceSimulator, get_workload

        recorder = TraceRecorder()
        sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
        get_workload("swaptions", small=True).execute(sim, 3)
        sim.finish()

        path = str(tmp_path / "swaptions.npz")
        recorder.trace.save(path)
        restored = Trace.load(path)

        a = FullSystemSimulator(FullSystemConfig()).run(recorder.trace)
        b = FullSystemSimulator(FullSystemConfig()).run(restored)
        assert a.cycles == b.cycles
        assert a.raw_misses == b.raw_misses
