"""Unit tests for the phase-1 statistics container."""

import pytest

from repro.sim.stats import SimulationStats


class TestDerivedMetrics:
    def test_effective_misses(self):
        stats = SimulationStats(raw_misses=10, covered_misses=4)
        assert stats.effective_misses == 6

    def test_mpki(self):
        stats = SimulationStats(instructions=2000, raw_misses=10, covered_misses=4)
        assert stats.mpki == pytest.approx(3.0)
        assert stats.raw_mpki == pytest.approx(5.0)

    def test_zero_instructions_safe(self):
        stats = SimulationStats()
        assert stats.mpki == 0.0
        assert stats.raw_mpki == 0.0
        assert stats.fetches_per_kilo_instruction == 0.0

    def test_coverage(self):
        stats = SimulationStats(raw_misses=8, covered_misses=2)
        assert stats.coverage == 0.25

    def test_coverage_without_misses(self):
        assert SimulationStats().coverage == 0.0

    def test_fetches_per_ki(self):
        stats = SimulationStats(instructions=4000, fetches=8)
        assert stats.fetches_per_kilo_instruction == pytest.approx(2.0)

    def test_as_dict_roundtrip(self):
        stats = SimulationStats(
            instructions=1000, loads=10, raw_misses=5, covered_misses=2, fetches=3
        )
        stats.static_approx_pcs.update({1, 2, 3})
        payload = stats.as_dict()
        assert payload["effective_misses"] == 3
        assert payload["static_approx_pcs"] == 3
        assert payload["mpki"] == stats.mpki
