"""Tests for the vectorized replay kernels (`repro.sim.kernels`).

The vector path's contract is *bit-equality* with the scalar reference
interpreter: same `SimulationStats`, same cache counters, same technique
counters, on every eligible configuration — plus a warned, stats-identical
downgrade to the packed interpreter everywhere else.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import (
    ApproximatorConfig,
    Mode,
    TraceRecorder,
    TraceSimulator,
    get_workload,
    telemetry,
)
from repro.core.config import INFINITE_WINDOW
from repro.core.confidence import confidence_update_steps, confidence_update_steps_array
from repro.core.hashing import context_hash, context_hash_array, fold_array
from repro.errors import ConfigurationError
from repro.experiments.common import BASELINE_WORKLOADS
from repro.faults.memory import INJECT_ENV
from repro.mem.replacement import FIFOPolicy
from repro.mem.cache import SetAssociativeCache
from repro.sim import kernels
from repro.sim.trace import Trace

MODES = [Mode.PRECISE, Mode.LVA, Mode.LVP, Mode.PREFETCH]


@pytest.fixture(autouse=True)
def _fresh_warn_state():
    """Warn-once state is process-global; isolate it per test."""
    kernels.reset_downgrade_warnings()
    yield
    kernels.reset_downgrade_warnings()


@pytest.fixture(scope="module")
def traces():
    """One small captured trace (with stores) per baseline workload."""
    captured = {}
    for name in BASELINE_WORKLOADS:
        recorder = TraceRecorder(record_stores=True)
        sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
        get_workload(name, small=True).execute(sim, 3)
        sim.finish()
        captured[name] = recorder.trace
    return captured


def replay_on(trace, mode, path, monkeypatch, config=None):
    monkeypatch.setenv(kernels.ENV_KERNEL, path)
    sim = TraceSimulator(mode, approximator_config=config)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", kernels.ReplayDowngradeWarning)
        stats = sim.replay(trace.pack())
    monkeypatch.delenv(kernels.ENV_KERNEL)
    return stats, sim


def _assert_same_lva_tables(a_tech, b_tech):
    assert a_tech.stats == b_tech.stats
    assert a_tech.allocated_entries == b_tech.allocated_entries
    assert list(a_tech.ghb) == list(b_tech.ghb)
    for index, entry in a_tech._table.items():
        other = b_tech._table[index]
        assert entry.tag == other.tag
        assert entry.confidence.value == other.confidence.value
        assert entry.degree_counter == other.degree_counter
        assert list(entry.lhb) == list(other.lhb)


def assert_same_state(a_sim, b_sim):
    """Equality beyond SimulationStats: cache + technique counters."""
    assert a_sim.l1.stats == b_sim.l1.stats
    assert a_sim.instructions == b_sim.instructions
    for attr in ("approximator", "predictor"):
        a_tech, b_tech = getattr(a_sim, attr), getattr(b_sim, attr)
        assert (a_tech is None) == (b_tech is None)
        if a_tech is not None:
            _assert_same_lva_tables(a_tech, b_tech)
    g_a, g_b = a_sim.generic_predictor, b_sim.generic_predictor
    assert (g_a is None) == (g_b is None)
    if g_a is not None:
        assert g_a.stats == g_b.stats
        assert g_a.allocated_entries == g_b.allocated_entries
        if hasattr(g_a, "_l2"):  # clp: modelled-L2 contents in LRU order
            assert list(g_a._l2) == list(g_b._l2)
            assert {i: (e.tag, list(e.levels)) for i, e in g_a._table.items()} == {
                i: (e.tag, list(e.levels)) for i, e in g_b._table.items()
            }
        if hasattr(g_a, "_chooser"):  # hybrid: chooser + both components
            assert g_a._chooser == g_b._chooser
            _assert_same_lva_tables(g_a.lva, g_b.lva)
            assert g_a.lvp.stats == g_b.lvp.stats
    pf_a, pf_b = a_sim.prefetcher, b_sim.prefetcher
    assert (pf_a is None) == (pf_b is None)
    if pf_a is not None:
        assert pf_a.stats == pf_b.stats


class TestBitEquality:
    """The acceptance pin: vector == object on all workloads × modes."""

    @pytest.mark.parametrize("name", BASELINE_WORKLOADS)
    @pytest.mark.parametrize("mode", MODES)
    def test_vector_matches_object_reference(self, name, mode, traces, monkeypatch):
        trace = traces[name]
        ref_stats, ref_sim = replay_on(trace, mode, "object", monkeypatch)
        vec_stats, vec_sim = replay_on(trace, mode, "vector", monkeypatch)
        assert vec_stats == ref_stats
        assert_same_state(vec_sim, ref_sim)


SWEEP_CONFIGS = [
    ApproximatorConfig(),
    ApproximatorConfig(ghb_size=2),
    ApproximatorConfig(ghb_size=2, mantissa_drop_bits=8),
    ApproximatorConfig(confidence_window=INFINITE_WINDOW),
    ApproximatorConfig(confidence_window=0.0),
    ApproximatorConfig(confidence_step_max=3),
    ApproximatorConfig(apply_confidence_to_ints=True),
    ApproximatorConfig(apply_confidence_to_floats=False),
    ApproximatorConfig(lhb_size=1),
    ApproximatorConfig(compute_fn="last"),
    ApproximatorConfig(compute_fn="stride"),
    ApproximatorConfig(compute_fn="delta"),
    ApproximatorConfig(table_entries=64, tag_bits=8),
    ApproximatorConfig(value_delay=0),
    ApproximatorConfig(value_delay=9),
]


class TestConfigSweepEquality:
    """Vector equality across the phase-1 design space, both techniques."""

    @pytest.mark.parametrize("config", SWEEP_CONFIGS)
    @pytest.mark.parametrize("mode", [Mode.LVA, Mode.LVP])
    def test_vector_matches_packed(self, config, mode, traces, monkeypatch):
        trace = traces["swaptions"]
        ref_stats, ref_sim = replay_on(trace, mode, "packed", monkeypatch, config)
        vec_stats, vec_sim = replay_on(trace, mode, "vector", monkeypatch, config)
        assert vec_stats == ref_stats
        assert_same_state(vec_sim, ref_sim)


class TestDegreeBitEquality:
    """Degree-triggered fetch skips replay at vector speed, bit-identical
    (the interleaved LVA pass): all workloads × degrees 1-3."""

    @pytest.mark.parametrize("name", BASELINE_WORKLOADS)
    @pytest.mark.parametrize("degree", [1, 2, 3])
    def test_vector_matches_object(self, name, degree, traces, monkeypatch):
        config = ApproximatorConfig(approximation_degree=degree)
        trace = traces[name]
        ref_stats, ref_sim = replay_on(trace, Mode.LVA, "object", monkeypatch, config)
        vec_stats, vec_sim = replay_on(trace, Mode.LVA, "vector", monkeypatch, config)
        assert vec_stats == ref_stats
        assert_same_state(vec_sim, ref_sim)

    def test_degree_actually_skips_fetches_under_vector(self, traces, monkeypatch):
        """Canary: the pin above is vacuous if no fetch was ever skipped."""
        config = ApproximatorConfig(approximation_degree=2)
        stats, sim = replay_on(
            traces["x264"], Mode.LVA, "vector", monkeypatch, config
        )
        assert stats.fetches_avoided > 0
        assert sim.approximator.stats.fetches_skipped == stats.fetches_avoided
        assert stats.fetches < stats.raw_misses

    @pytest.mark.parametrize(
        "config",
        [
            ApproximatorConfig(approximation_degree=2, ghb_size=2),
            ApproximatorConfig(approximation_degree=2, value_delay=0),
            ApproximatorConfig(approximation_degree=2, value_delay=9),
            ApproximatorConfig(approximation_degree=2, apply_confidence_to_ints=True),
            ApproximatorConfig(approximation_degree=2, compute_fn="stride"),
            ApproximatorConfig(approximation_degree=2, lhb_size=1),
        ],
    )
    def test_degree_config_sweep(self, config, traces, monkeypatch):
        trace = traces["fluidanimate"]
        ref_stats, ref_sim = replay_on(trace, Mode.LVA, "object", monkeypatch, config)
        vec_stats, vec_sim = replay_on(trace, Mode.LVA, "vector", monkeypatch, config)
        assert vec_stats == ref_stats
        assert_same_state(vec_sim, ref_sim)


class TestPredictorZooBitEquality:
    """Every registry predictor replays through the vector kernel (flat
    cores for lva/lvp, the batch-contract driver for clp/hybrid),
    bit-identical on all workloads."""

    @pytest.mark.parametrize("name", BASELINE_WORKLOADS)
    @pytest.mark.parametrize("predictor", ["lva", "lvp", "clp", "hybrid"])
    def test_vector_matches_object(self, name, predictor, traces, monkeypatch):
        config = ApproximatorConfig(predictor=predictor)
        trace = traces[name]
        ref_stats, ref_sim = replay_on(
            trace, Mode.PREDICTOR, "object", monkeypatch, config
        )
        vec_stats, vec_sim = replay_on(
            trace, Mode.PREDICTOR, "vector", monkeypatch, config
        )
        assert vec_stats == ref_stats
        assert_same_state(vec_sim, ref_sim)

    @pytest.mark.parametrize("value_delay", [0, 9])
    @pytest.mark.parametrize("predictor", ["clp", "hybrid"])
    def test_batch_driver_run_slicing_across_delays(
        self, predictor, value_delay, traces, monkeypatch
    ):
        """The run-based batch driver's interleaving depends on the value
        delay; pin the extremes (immediate due vs. long in-flight runs)."""
        config = ApproximatorConfig(predictor=predictor, value_delay=value_delay)
        trace = traces["bodytrack"]
        ref_stats, ref_sim = replay_on(
            trace, Mode.PREDICTOR, "object", monkeypatch, config
        )
        vec_stats, vec_sim = replay_on(
            trace, Mode.PREDICTOR, "vector", monkeypatch, config
        )
        assert vec_stats == ref_stats
        assert_same_state(vec_sim, ref_sim)

    def test_hybrid_honors_degree_under_vector(self, traces, monkeypatch):
        """Hybrid inherits LVA's fetch skips: degree > 0 routes it through
        the interleaved generic pass, still bit-identical."""
        config = ApproximatorConfig(predictor="hybrid", approximation_degree=2)
        trace = traces["x264"]
        ref_stats, ref_sim = replay_on(
            trace, Mode.PREDICTOR, "object", monkeypatch, config
        )
        vec_stats, vec_sim = replay_on(
            trace, Mode.PREDICTOR, "vector", monkeypatch, config
        )
        assert vec_stats == ref_stats
        assert vec_stats.fetches_avoided > 0
        assert_same_state(vec_sim, ref_sim)

    def test_clp_covers_misses_under_vector(self, traces, monkeypatch):
        """Canary: correct level predictions count as covered misses."""
        config = ApproximatorConfig(predictor="clp")
        stats, sim = replay_on(
            traces["fluidanimate"], Mode.PREDICTOR, "vector", monkeypatch, config
        )
        assert stats.covered_misses > 0
        assert sim.generic_predictor.stats.correct == stats.covered_misses


class TestPrefetchBitEquality:
    """Prefetch fill injection replays at vector speed: the interleaved
    pass drives the real prefetcher and models usefulness flags."""

    def test_prefetch_actually_fires_under_vector(self, traces, monkeypatch):
        stats, sim = replay_on(traces["bodytrack"], Mode.PREFETCH, "vector", monkeypatch)
        assert stats.prefetch_fetches > 0
        assert sim.l1.stats.useful_prefetches > 0

    @pytest.mark.parametrize("degree", [1, 8])
    def test_prefetch_degree_sweep(self, degree, traces, monkeypatch):
        trace = traces["canneal"].pack()
        monkeypatch.setenv(kernels.ENV_KERNEL, "object")
        ref_sim = TraceSimulator(Mode.PREFETCH, prefetch_degree=degree)
        ref_stats = ref_sim.replay(trace)
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        vec_sim = TraceSimulator(Mode.PREFETCH, prefetch_degree=degree)
        vec_stats = vec_sim.replay(trace)
        assert vec_stats == ref_stats
        assert_same_state(vec_sim, ref_sim)

    def test_nextline_prefetcher_matches(self, traces, monkeypatch):
        from repro.prefetch.nextline import NextLinePrefetcher

        trace = traces["fluidanimate"].pack()
        monkeypatch.setenv(kernels.ENV_KERNEL, "object")
        ref_sim = TraceSimulator(Mode.PREFETCH, prefetcher=NextLinePrefetcher(degree=4))
        ref_stats = ref_sim.replay(trace)
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        vec_sim = TraceSimulator(Mode.PREFETCH, prefetcher=NextLinePrefetcher(degree=4))
        vec_stats = vec_sim.replay(trace)
        assert vec_stats == ref_stats
        assert_same_state(vec_sim, ref_sim)


class TestSmallTraceSelection:
    """Satellite: tiny traces auto-select the packed interpreter — the
    vector pipeline's fixed numpy setup dominates under a few hundred
    events — silently (both paths are bit-identical, so this is a
    heuristic, not a downgrade)."""

    def test_small_trace_auto_selects_packed(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_KERNEL, raising=False)
        sim = TraceSimulator(Mode.LVA)
        with warnings.catch_warnings():
            warnings.simplefilter("error", kernels.ReplayDowngradeWarning)
            assert kernels.select_path(sim, kernels.DEFAULT_VECTOR_MIN - 1) == "packed"
            assert kernels.select_path(sim, kernels.DEFAULT_VECTOR_MIN) == "vector"
            assert kernels.select_path(sim) == "vector"  # unknown length

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_KERNEL, raising=False)
        monkeypatch.setenv(kernels.ENV_VECTOR_MIN, "8")
        sim = TraceSimulator(Mode.LVA)
        assert kernels.select_path(sim, 8) == "vector"
        assert kernels.select_path(sim, 7) == "packed"

    def test_invalid_threshold_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VECTOR_MIN, "lots")
        with pytest.raises(ConfigurationError):
            kernels.vector_min_events()

    def test_forced_vector_bypasses_threshold(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        assert kernels.select_path(TraceSimulator(Mode.LVA), 4) == "vector"

    def test_default_selection_matches_forced_vector(self, traces, monkeypatch):
        """The swaptions small trace (the original regression) replays
        packed by default yet stays bit-identical to forced vector."""
        trace = traces["swaptions"]
        assert len(trace.pack()) < kernels.DEFAULT_VECTOR_MIN
        monkeypatch.delenv(kernels.ENV_KERNEL, raising=False)
        default_stats = TraceSimulator(Mode.LVA).replay(trace.pack())
        forced_stats, _ = replay_on(trace, Mode.LVA, "vector", monkeypatch)
        assert default_stats == forced_stats


class TestContinuationEquality:
    """The rebuilt architectural state must be indistinguishable: a second
    replay on the same simulator continues exactly like the scalar one."""

    @pytest.mark.parametrize("mode", [Mode.LVA, Mode.LVP])
    def test_second_replay_continues_identically(self, mode, traces, monkeypatch):
        first, second = traces["swaptions"], traces["blackscholes"]
        monkeypatch.setenv(kernels.ENV_KERNEL, "packed")
        scalar = TraceSimulator(mode)
        scalar.replay(first.pack())
        scalar_stats = scalar.replay(second.pack())
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        vector = TraceSimulator(mode)
        vector.replay(first.pack())
        with warnings.catch_warnings():
            # The second replay downgrades (state present) — expected.
            warnings.simplefilter("ignore", kernels.ReplayDowngradeWarning)
            vector_stats = vector.replay(second.pack())
        assert vector_stats == scalar_stats
        assert_same_state(vector, scalar)


class TestArrayOpParity:
    """The numpy array forms must be bit-identical to their scalar twins."""

    def test_fold_array_matches_scalar_fold(self, rng):
        from repro.core.hashing import _fold

        values = rng.integers(0, 2**63, size=256, dtype=np.uint64)
        for bits in (5, 9, 21):
            folded = fold_array(values, bits)
            for raw, out in zip(values.tolist(), folded.tolist()):
                assert out == _fold(raw, bits)

    def test_context_hash_array_matches_scalar(self, rng):
        pcs = rng.integers(0, 2**62, size=512, dtype=np.int64)
        for index_bits, tag_bits in ((9, 21), (6, 8), (0, 21), (12, 4)):
            idx, tag = context_hash_array(pcs, index_bits, tag_bits)
            for pc, i, t in zip(pcs.tolist(), idx.tolist(), tag.tolist()):
                assert (i, t) == context_hash(pc, (), index_bits, tag_bits)

    @pytest.mark.parametrize("window", [0.0, 0.1, 2.0, INFINITE_WINDOW])
    @pytest.mark.parametrize("step_max", [1, 3])
    def test_confidence_steps_array_matches_scalar(self, window, step_max, rng):
        approx = rng.normal(size=200) * 100
        actual = rng.normal(size=200) * 100
        # Exercise the boundary and degenerate branches explicitly.
        approx = np.concatenate([approx, [0.0, 1.1, 5.0, np.nan, 3.0, 1.0]])
        actual = np.concatenate([actual, [0.0, 1.0, 0.0, 1.0, np.nan, 1.0]])
        steps = confidence_update_steps_array(approx, actual, window, step_max)
        for a, b, s in zip(approx.tolist(), actual.tolist(), steps.tolist()):
            assert s == confidence_update_steps(a, b, window, step_max), (a, b)

    def test_decompose_addr_kernel_matches_cache(self, rng):
        cache = SetAssociativeCache()
        addrs = rng.integers(0, 2**40, size=128, dtype=np.int64)
        set_idx, btag = kernels.decompose_addr_kernel(
            addrs, cache._offset_bits, cache._index_mask, cache._index_bits
        )
        for addr, s, t in zip(addrs.tolist(), set_idx.tolist(), btag.tolist()):
            assert (s, t) == cache._decompose(addr)

    def test_window_denominator_kernel_matches_scalar(self):
        value_f = np.array([0.0, -2.5, 1e300, 7.0])
        value_i = np.array([0, 3, -9, 0], dtype=np.int64)
        value_is_int = np.array([False, True, True, False])
        denom = kernels.window_denominator_kernel(value_f, value_i, value_is_int, 0.1)
        actuals = [0.0, 3, -9, 7.0]
        expected = [0.1 * abs(a) if a != 0 else 0.1 for a in actuals]
        assert denom.tolist() == expected


class TestSpanKernels:
    def test_segment_spans_no_stores_is_one_span(self):
        starts, ends = kernels.segment_spans_kernel(np.zeros(5, dtype=bool))
        assert starts.tolist() == [0]
        assert ends.tolist() == [5]

    def test_segment_spans_all_stores_is_empty_spans(self):
        starts, ends = kernels.segment_spans_kernel(np.ones(3, dtype=bool))
        assert starts.tolist() == [0, 1, 2, 3]
        assert ends.tolist() == [0, 1, 2, 3]

    def test_segment_spans_mixed(self):
        is_store = np.array([False, True, False, False, True])
        starts, ends = kernels.segment_spans_kernel(is_store)
        assert starts.tolist() == [0, 2, 5]
        assert ends.tolist() == [1, 4, 5]

    def test_load_ordinals_skip_stores(self):
        is_store = np.array([False, True, False, False])
        assert kernels.load_ordinal_kernel(is_store).tolist() == [1, 1, 2, 3]


class TestPathSelection:
    def test_invalid_path_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_KERNEL, "simd")
        with pytest.raises(ConfigurationError):
            kernels.requested_path()

    def test_unset_env_defaults_to_vector_when_eligible(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_KERNEL, raising=False)
        assert kernels.select_path(TraceSimulator(Mode.LVA)) == "vector"

    @pytest.mark.parametrize("path", ["object", "packed"])
    def test_explicit_scalar_paths_win(self, path, monkeypatch):
        monkeypatch.setenv(kernels.ENV_KERNEL, path)
        assert kernels.select_path(TraceSimulator(Mode.LVA)) == path

    def test_prefetch_mode_is_eligible(self):
        assert kernels.vector_ineligibility(TraceSimulator(Mode.PREFETCH)) is None

    def test_degree_is_eligible(self):
        sim = TraceSimulator(
            Mode.LVA, approximator_config=ApproximatorConfig(approximation_degree=4)
        )
        assert kernels.vector_ineligibility(sim) is None

    @pytest.mark.parametrize("predictor", ["lva", "lvp", "clp", "hybrid"])
    def test_registry_predictors_are_eligible(self, predictor):
        sim = TraceSimulator(
            Mode.PREDICTOR,
            approximator_config=ApproximatorConfig(predictor=predictor),
        )
        assert kernels.vector_ineligibility(sim) is None

    def test_non_lru_policy_is_ineligible(self):
        sim = TraceSimulator(Mode.LVA)
        sim.l1 = SetAssociativeCache(policy=FIFOPolicy(), name="L1D")
        assert kernels.vector_ineligibility(sim) is not None

    def test_dirty_simulator_is_ineligible(self, traces):
        sim = TraceSimulator(Mode.LVA)
        assert kernels.vector_ineligibility(sim) is None
        sim.replay(traces["swaptions"].pack())
        reason = kernels.vector_ineligibility(sim)
        assert reason is not None and "architectural state" in reason[0]

    def test_static_downgrade_is_silent_unless_forced(self, monkeypatch):
        sim = TraceSimulator(Mode.LVA)
        sim.l1 = SetAssociativeCache(policy=FIFOPolicy(), name="L1D")
        monkeypatch.delenv(kernels.ENV_KERNEL, raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", kernels.ReplayDowngradeWarning)
            assert kernels.select_path(sim) == "packed"
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        with pytest.warns(kernels.ReplayDowngradeWarning):
            assert kernels.select_path(sim) == "packed"

    def test_remaining_ineligibility_reasons(self, traces, monkeypatch):
        """The shrunken reason set: only faults, telemetry, exotic
        replacement and pre-existing state downgrade the vector kernel —
        every phase-1 technique configuration is eligible fresh."""
        kernels.reset_downgrade_warnings()
        monkeypatch.setenv(INJECT_ENV, "flip:prob=0.05,seed=3")
        fault_reason = kernels.vector_ineligibility(TraceSimulator(Mode.LVA))
        monkeypatch.delenv(INJECT_ENV)
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, "1")
        telemetry.shutdown()
        try:
            tel_reason = kernels.vector_ineligibility(TraceSimulator(Mode.LVA))
        finally:
            monkeypatch.delenv(telemetry.TELEMETRY_ENV)
            telemetry.shutdown()
        fifo = TraceSimulator(Mode.LVA)
        fifo.l1 = SetAssociativeCache(policy=FIFOPolicy(), name="L1D")
        fifo_reason = kernels.vector_ineligibility(fifo)
        dirty = TraceSimulator(Mode.LVA)
        dirty.replay(traces["swaptions"].pack())
        dirty_reason = kernels.vector_ineligibility(dirty)
        assert {
            fault_reason[0],
            tel_reason[0],
            fifo_reason[0],
            dirty_reason[0],
        } == {
            "fault injection active (REPRO_INJECT)",
            "telemetry sampling active",
            "non-LRU L1 replacement policy",
            "simulator already holds architectural state",
        }
        # Dynamic flags: run-dependent reasons warn even unforced.
        assert fault_reason[1] is True and tel_reason[1] is True
        assert fifo_reason[1] is False and dirty_reason[1] is False


class TestDowngradeUnderFaults:
    """Satellite: fault injection downgrades, warns once, and matches the
    packed scalar path exactly."""

    SPEC = "flip:prob=0.05,seed=3"

    def test_warns_once_and_matches_packed(self, traces, monkeypatch):
        trace = traces["swaptions"].pack()
        monkeypatch.setenv(INJECT_ENV, self.SPEC)

        monkeypatch.setenv(kernels.ENV_KERNEL, "packed")
        reference = TraceSimulator(Mode.LVA).replay(trace)

        monkeypatch.delenv(kernels.ENV_KERNEL)
        with pytest.warns(kernels.ReplayDowngradeWarning, match="fault injection"):
            downgraded = TraceSimulator(Mode.LVA).replay(trace)
        assert downgraded == reference
        assert downgraded.value_bit_flips > 0  # faults actually fired

        # Second downgrade for the same reason is silent (warn once).
        with warnings.catch_warnings():
            warnings.simplefilter("error", kernels.ReplayDowngradeWarning)
            again = TraceSimulator(Mode.LVA).replay(trace)
        assert again == reference


class TestDowngradeUnderTelemetry:
    """Satellite: telemetry sampling downgrades, warns once, and matches
    the packed scalar path exactly."""

    def test_warns_once_and_matches_packed(self, traces, monkeypatch):
        trace = traces["swaptions"].pack()
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, "1")
        telemetry.shutdown()
        try:
            monkeypatch.setenv(kernels.ENV_KERNEL, "packed")
            reference = TraceSimulator(Mode.LVA).replay(trace)

            monkeypatch.delenv(kernels.ENV_KERNEL)
            with pytest.warns(kernels.ReplayDowngradeWarning, match="telemetry"):
                downgraded = TraceSimulator(Mode.LVA).replay(trace)
            assert downgraded == reference

            with warnings.catch_warnings():
                warnings.simplefilter("error", kernels.ReplayDowngradeWarning)
                again = TraceSimulator(Mode.LVA).replay(trace)
            assert again == reference
        finally:
            telemetry.shutdown()


def _has_numba() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


class TestJitOracle:
    def test_missing_numba_warns_once_and_falls_back(self, traces, monkeypatch):
        if _has_numba():
            pytest.skip("numba installed; fallback path not reachable")
        monkeypatch.setenv(kernels.ENV_JIT, "1")
        monkeypatch.setattr(kernels, "_JIT_TRIED", False)
        monkeypatch.setattr(kernels, "_JIT_ORACLE", None)
        trace = traces["swaptions"].pack()
        monkeypatch.setenv(kernels.ENV_KERNEL, "packed")
        reference = TraceSimulator(Mode.LVA).replay(trace)
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        with pytest.warns(kernels.ReplayDowngradeWarning, match="numba"):
            stats = TraceSimulator(Mode.LVA).replay(trace)
        assert stats == reference

    @pytest.mark.skipif(not _has_numba(), reason="numba not installed")
    def test_jit_oracle_matches_python_oracle(self, traces, monkeypatch):
        trace = traces["swaptions"].pack()
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        monkeypatch.delenv(kernels.ENV_JIT, raising=False)
        plain = TraceSimulator(Mode.LVA).replay(trace)
        monkeypatch.setenv(kernels.ENV_JIT, "1")
        monkeypatch.setattr(kernels, "_JIT_TRIED", False)
        monkeypatch.setattr(kernels, "_JIT_ORACLE", None)
        jitted = TraceSimulator(Mode.LVA).replay(trace)
        assert jitted == plain


class TestObjectTraceInput:
    """A Trace (object) input reaches the vector kernel via pack()."""

    def test_vector_replay_accepts_object_trace(self, traces, monkeypatch):
        trace = traces["swaptions"]
        ref_stats, _ = replay_on(trace, Mode.LVA, "object", monkeypatch)
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        stats = TraceSimulator(Mode.LVA).replay(Trace(list(trace.events)))
        assert stats == ref_stats
