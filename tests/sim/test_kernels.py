"""Tests for the vectorized replay kernels (`repro.sim.kernels`).

The vector path's contract is *bit-equality* with the scalar reference
interpreter: same `SimulationStats`, same cache counters, same technique
counters, on every eligible configuration — plus a warned, stats-identical
downgrade to the packed interpreter everywhere else.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import (
    ApproximatorConfig,
    Mode,
    TraceRecorder,
    TraceSimulator,
    get_workload,
    telemetry,
)
from repro.core.config import INFINITE_WINDOW
from repro.core.confidence import confidence_update_steps, confidence_update_steps_array
from repro.core.hashing import context_hash, context_hash_array, fold_array
from repro.errors import ConfigurationError
from repro.experiments.common import BASELINE_WORKLOADS
from repro.faults.memory import INJECT_ENV
from repro.mem.replacement import FIFOPolicy
from repro.mem.cache import SetAssociativeCache
from repro.sim import kernels
from repro.sim.trace import Trace

MODES = [Mode.PRECISE, Mode.LVA, Mode.LVP, Mode.PREFETCH]


@pytest.fixture(autouse=True)
def _fresh_warn_state():
    """Warn-once state is process-global; isolate it per test."""
    kernels.reset_downgrade_warnings()
    yield
    kernels.reset_downgrade_warnings()


@pytest.fixture(scope="module")
def traces():
    """One small captured trace (with stores) per baseline workload."""
    captured = {}
    for name in BASELINE_WORKLOADS:
        recorder = TraceRecorder(record_stores=True)
        sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
        get_workload(name, small=True).execute(sim, 3)
        sim.finish()
        captured[name] = recorder.trace
    return captured


def replay_on(trace, mode, path, monkeypatch, config=None):
    monkeypatch.setenv(kernels.ENV_KERNEL, path)
    sim = TraceSimulator(mode, approximator_config=config)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", kernels.ReplayDowngradeWarning)
        stats = sim.replay(trace.pack())
    monkeypatch.delenv(kernels.ENV_KERNEL)
    return stats, sim


def assert_same_state(a_sim, b_sim):
    """Equality beyond SimulationStats: cache + technique counters."""
    assert a_sim.l1.stats == b_sim.l1.stats
    assert a_sim.instructions == b_sim.instructions
    for attr in ("approximator", "predictor"):
        a_tech, b_tech = getattr(a_sim, attr), getattr(b_sim, attr)
        assert (a_tech is None) == (b_tech is None)
        if a_tech is not None:
            assert a_tech.stats == b_tech.stats
            assert a_tech.allocated_entries == b_tech.allocated_entries
            assert list(a_tech.ghb) == list(b_tech.ghb)
            for index, entry in a_tech._table.items():
                other = b_tech._table[index]
                assert entry.tag == other.tag
                assert entry.confidence.value == other.confidence.value
                assert list(entry.lhb) == list(other.lhb)


class TestBitEquality:
    """The acceptance pin: vector == object on all workloads × modes."""

    @pytest.mark.parametrize("name", BASELINE_WORKLOADS)
    @pytest.mark.parametrize("mode", MODES)
    def test_vector_matches_object_reference(self, name, mode, traces, monkeypatch):
        trace = traces[name]
        ref_stats, ref_sim = replay_on(trace, mode, "object", monkeypatch)
        vec_stats, vec_sim = replay_on(trace, mode, "vector", monkeypatch)
        assert vec_stats == ref_stats
        assert_same_state(vec_sim, ref_sim)


SWEEP_CONFIGS = [
    ApproximatorConfig(),
    ApproximatorConfig(ghb_size=2),
    ApproximatorConfig(ghb_size=2, mantissa_drop_bits=8),
    ApproximatorConfig(confidence_window=INFINITE_WINDOW),
    ApproximatorConfig(confidence_window=0.0),
    ApproximatorConfig(confidence_step_max=3),
    ApproximatorConfig(apply_confidence_to_ints=True),
    ApproximatorConfig(apply_confidence_to_floats=False),
    ApproximatorConfig(lhb_size=1),
    ApproximatorConfig(compute_fn="last"),
    ApproximatorConfig(compute_fn="stride"),
    ApproximatorConfig(compute_fn="delta"),
    ApproximatorConfig(table_entries=64, tag_bits=8),
    ApproximatorConfig(value_delay=0),
    ApproximatorConfig(value_delay=9),
]


class TestConfigSweepEquality:
    """Vector equality across the phase-1 design space, both techniques."""

    @pytest.mark.parametrize("config", SWEEP_CONFIGS)
    @pytest.mark.parametrize("mode", [Mode.LVA, Mode.LVP])
    def test_vector_matches_packed(self, config, mode, traces, monkeypatch):
        trace = traces["swaptions"]
        ref_stats, ref_sim = replay_on(trace, mode, "packed", monkeypatch, config)
        vec_stats, vec_sim = replay_on(trace, mode, "vector", monkeypatch, config)
        assert vec_stats == ref_stats
        assert_same_state(vec_sim, ref_sim)


class TestContinuationEquality:
    """The rebuilt architectural state must be indistinguishable: a second
    replay on the same simulator continues exactly like the scalar one."""

    @pytest.mark.parametrize("mode", [Mode.LVA, Mode.LVP])
    def test_second_replay_continues_identically(self, mode, traces, monkeypatch):
        first, second = traces["swaptions"], traces["blackscholes"]
        monkeypatch.setenv(kernels.ENV_KERNEL, "packed")
        scalar = TraceSimulator(mode)
        scalar.replay(first.pack())
        scalar_stats = scalar.replay(second.pack())
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        vector = TraceSimulator(mode)
        vector.replay(first.pack())
        with warnings.catch_warnings():
            # The second replay downgrades (state present) — expected.
            warnings.simplefilter("ignore", kernels.ReplayDowngradeWarning)
            vector_stats = vector.replay(second.pack())
        assert vector_stats == scalar_stats
        assert_same_state(vector, scalar)


class TestArrayOpParity:
    """The numpy array forms must be bit-identical to their scalar twins."""

    def test_fold_array_matches_scalar_fold(self, rng):
        from repro.core.hashing import _fold

        values = rng.integers(0, 2**63, size=256, dtype=np.uint64)
        for bits in (5, 9, 21):
            folded = fold_array(values, bits)
            for raw, out in zip(values.tolist(), folded.tolist()):
                assert out == _fold(raw, bits)

    def test_context_hash_array_matches_scalar(self, rng):
        pcs = rng.integers(0, 2**62, size=512, dtype=np.int64)
        for index_bits, tag_bits in ((9, 21), (6, 8), (0, 21), (12, 4)):
            idx, tag = context_hash_array(pcs, index_bits, tag_bits)
            for pc, i, t in zip(pcs.tolist(), idx.tolist(), tag.tolist()):
                assert (i, t) == context_hash(pc, (), index_bits, tag_bits)

    @pytest.mark.parametrize("window", [0.0, 0.1, 2.0, INFINITE_WINDOW])
    @pytest.mark.parametrize("step_max", [1, 3])
    def test_confidence_steps_array_matches_scalar(self, window, step_max, rng):
        approx = rng.normal(size=200) * 100
        actual = rng.normal(size=200) * 100
        # Exercise the boundary and degenerate branches explicitly.
        approx = np.concatenate([approx, [0.0, 1.1, 5.0, np.nan, 3.0, 1.0]])
        actual = np.concatenate([actual, [0.0, 1.0, 0.0, 1.0, np.nan, 1.0]])
        steps = confidence_update_steps_array(approx, actual, window, step_max)
        for a, b, s in zip(approx.tolist(), actual.tolist(), steps.tolist()):
            assert s == confidence_update_steps(a, b, window, step_max), (a, b)

    def test_decompose_addr_kernel_matches_cache(self, rng):
        cache = SetAssociativeCache()
        addrs = rng.integers(0, 2**40, size=128, dtype=np.int64)
        set_idx, btag = kernels.decompose_addr_kernel(
            addrs, cache._offset_bits, cache._index_mask, cache._index_bits
        )
        for addr, s, t in zip(addrs.tolist(), set_idx.tolist(), btag.tolist()):
            assert (s, t) == cache._decompose(addr)

    def test_window_denominator_kernel_matches_scalar(self):
        value_f = np.array([0.0, -2.5, 1e300, 7.0])
        value_i = np.array([0, 3, -9, 0], dtype=np.int64)
        value_is_int = np.array([False, True, True, False])
        denom = kernels.window_denominator_kernel(value_f, value_i, value_is_int, 0.1)
        actuals = [0.0, 3, -9, 7.0]
        expected = [0.1 * abs(a) if a != 0 else 0.1 for a in actuals]
        assert denom.tolist() == expected


class TestSpanKernels:
    def test_segment_spans_no_stores_is_one_span(self):
        starts, ends = kernels.segment_spans_kernel(np.zeros(5, dtype=bool))
        assert starts.tolist() == [0]
        assert ends.tolist() == [5]

    def test_segment_spans_all_stores_is_empty_spans(self):
        starts, ends = kernels.segment_spans_kernel(np.ones(3, dtype=bool))
        assert starts.tolist() == [0, 1, 2, 3]
        assert ends.tolist() == [0, 1, 2, 3]

    def test_segment_spans_mixed(self):
        is_store = np.array([False, True, False, False, True])
        starts, ends = kernels.segment_spans_kernel(is_store)
        assert starts.tolist() == [0, 2, 5]
        assert ends.tolist() == [1, 4, 5]

    def test_load_ordinals_skip_stores(self):
        is_store = np.array([False, True, False, False])
        assert kernels.load_ordinal_kernel(is_store).tolist() == [1, 1, 2, 3]


class TestPathSelection:
    def test_invalid_path_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_KERNEL, "simd")
        with pytest.raises(ConfigurationError):
            kernels.requested_path()

    def test_unset_env_defaults_to_vector_when_eligible(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_KERNEL, raising=False)
        assert kernels.select_path(TraceSimulator(Mode.LVA)) == "vector"

    @pytest.mark.parametrize("path", ["object", "packed"])
    def test_explicit_scalar_paths_win(self, path, monkeypatch):
        monkeypatch.setenv(kernels.ENV_KERNEL, path)
        assert kernels.select_path(TraceSimulator(Mode.LVA)) == path

    def test_prefetch_mode_is_ineligible(self):
        reason = kernels.vector_ineligibility(TraceSimulator(Mode.PREFETCH))
        assert reason is not None and reason[1] is False

    def test_degree_is_ineligible(self):
        sim = TraceSimulator(
            Mode.LVA, approximator_config=ApproximatorConfig(approximation_degree=4)
        )
        reason = kernels.vector_ineligibility(sim)
        assert reason is not None and "degree" in reason[0]

    def test_non_lru_policy_is_ineligible(self):
        sim = TraceSimulator(Mode.LVA)
        sim.l1 = SetAssociativeCache(policy=FIFOPolicy(), name="L1D")
        assert kernels.vector_ineligibility(sim) is not None

    def test_dirty_simulator_is_ineligible(self, traces):
        sim = TraceSimulator(Mode.LVA)
        assert kernels.vector_ineligibility(sim) is None
        sim.replay(traces["swaptions"].pack())
        reason = kernels.vector_ineligibility(sim)
        assert reason is not None and "architectural state" in reason[0]

    def test_static_downgrade_is_silent_unless_forced(self, monkeypatch):
        sim = TraceSimulator(Mode.PREFETCH)
        monkeypatch.delenv(kernels.ENV_KERNEL, raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", kernels.ReplayDowngradeWarning)
            assert kernels.select_path(sim) == "packed"
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        with pytest.warns(kernels.ReplayDowngradeWarning):
            assert kernels.select_path(sim) == "packed"


class TestDowngradeUnderFaults:
    """Satellite: fault injection downgrades, warns once, and matches the
    packed scalar path exactly."""

    SPEC = "flip:prob=0.05,seed=3"

    def test_warns_once_and_matches_packed(self, traces, monkeypatch):
        trace = traces["swaptions"].pack()
        monkeypatch.setenv(INJECT_ENV, self.SPEC)

        monkeypatch.setenv(kernels.ENV_KERNEL, "packed")
        reference = TraceSimulator(Mode.LVA).replay(trace)

        monkeypatch.delenv(kernels.ENV_KERNEL)
        with pytest.warns(kernels.ReplayDowngradeWarning, match="fault injection"):
            downgraded = TraceSimulator(Mode.LVA).replay(trace)
        assert downgraded == reference
        assert downgraded.value_bit_flips > 0  # faults actually fired

        # Second downgrade for the same reason is silent (warn once).
        with warnings.catch_warnings():
            warnings.simplefilter("error", kernels.ReplayDowngradeWarning)
            again = TraceSimulator(Mode.LVA).replay(trace)
        assert again == reference


class TestDowngradeUnderTelemetry:
    """Satellite: telemetry sampling downgrades, warns once, and matches
    the packed scalar path exactly."""

    def test_warns_once_and_matches_packed(self, traces, monkeypatch):
        trace = traces["swaptions"].pack()
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, "1")
        telemetry.shutdown()
        try:
            monkeypatch.setenv(kernels.ENV_KERNEL, "packed")
            reference = TraceSimulator(Mode.LVA).replay(trace)

            monkeypatch.delenv(kernels.ENV_KERNEL)
            with pytest.warns(kernels.ReplayDowngradeWarning, match="telemetry"):
                downgraded = TraceSimulator(Mode.LVA).replay(trace)
            assert downgraded == reference

            with warnings.catch_warnings():
                warnings.simplefilter("error", kernels.ReplayDowngradeWarning)
                again = TraceSimulator(Mode.LVA).replay(trace)
            assert again == reference
        finally:
            telemetry.shutdown()


def _has_numba() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


class TestJitOracle:
    def test_missing_numba_warns_once_and_falls_back(self, traces, monkeypatch):
        if _has_numba():
            pytest.skip("numba installed; fallback path not reachable")
        monkeypatch.setenv(kernels.ENV_JIT, "1")
        monkeypatch.setattr(kernels, "_JIT_TRIED", False)
        monkeypatch.setattr(kernels, "_JIT_ORACLE", None)
        trace = traces["swaptions"].pack()
        monkeypatch.setenv(kernels.ENV_KERNEL, "packed")
        reference = TraceSimulator(Mode.LVA).replay(trace)
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        with pytest.warns(kernels.ReplayDowngradeWarning, match="numba"):
            stats = TraceSimulator(Mode.LVA).replay(trace)
        assert stats == reference

    @pytest.mark.skipif(not _has_numba(), reason="numba not installed")
    def test_jit_oracle_matches_python_oracle(self, traces, monkeypatch):
        trace = traces["swaptions"].pack()
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        monkeypatch.delenv(kernels.ENV_JIT, raising=False)
        plain = TraceSimulator(Mode.LVA).replay(trace)
        monkeypatch.setenv(kernels.ENV_JIT, "1")
        monkeypatch.setattr(kernels, "_JIT_TRIED", False)
        monkeypatch.setattr(kernels, "_JIT_ORACLE", None)
        jitted = TraceSimulator(Mode.LVA).replay(trace)
        assert jitted == plain


class TestObjectTraceInput:
    """A Trace (object) input reaches the vector kernel via pack()."""

    def test_vector_replay_accepts_object_trace(self, traces, monkeypatch):
        trace = traces["swaptions"]
        ref_stats, _ = replay_on(trace, Mode.LVA, "object", monkeypatch)
        monkeypatch.setenv(kernels.ENV_KERNEL, "vector")
        stats = TraceSimulator(Mode.LVA).replay(Trace(list(trace.events)))
        assert stats == ref_stats
