"""The declared-environment registry (``repro.envspec``).

Pins the three registry invariants the runtime and the LVA007 lint rule
lean on: completeness (every ``REPRO_*`` variable mentioned anywhere in
the source tree is registered), evidence (every non-keyed variable
points at a pinning test that exists; every keyed variable points at a
resolvable key function), and documentation (the README table is the
generated one, verbatim).
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

from repro import envspec

REPO_ROOT = Path(__file__).resolve().parents[1]

ENV_TOKEN = re.compile(r"\bREPRO_[A-Z][A-Z0-9_]*\b")


def _mentioned_variables() -> set:
    """Every REPRO_* token in the runtime trees (src/ and benchmarks/).

    tests/ is deliberately excluded: lint fixtures and cross-process
    test harnesses invent variable names that never reach the runtime.
    Real env reads in tests go through the envspec constants anyway and
    are policed by LVA007 over the test tree.
    """
    mentioned = set()
    for tree in ("src", "benchmarks"):
        for path in (REPO_ROOT / tree).rglob("*.py"):
            mentioned.update(ENV_TOKEN.findall(path.read_text(encoding="utf-8")))
    return mentioned


class TestRegistryShape:
    def test_every_variable_is_prefixed_and_classified(self):
        for var in envspec.all_vars():
            assert var.name.startswith("REPRO_")
            assert var.classification in envspec.CLASSIFICATIONS
            assert var.description

    def test_keyed_variables_name_a_real_key_function(self):
        keyed = [v for v in envspec.all_vars() if v.classification == "keyed"]
        assert keyed, "at least REPRO_INJECT must be keyed"
        for var in keyed:
            assert var.keyed_via and not var.pinned_by
            module_name, _, attr = var.keyed_via.rpartition(".")
            module = importlib.import_module(module_name)
            assert callable(getattr(module, attr)), var.keyed_via

    def test_non_keyed_variables_point_at_an_existing_pinning_test(self):
        for var in envspec.all_vars():
            if var.classification == "keyed":
                continue
            assert var.pinned_by, var.name
            assert (REPO_ROOT / var.pinned_by).is_file(), (
                f"{var.name}: pinning test {var.pinned_by} does not exist"
            )

    def test_lookup_and_get_agree(self):
        var = envspec.all_vars()[0]
        assert envspec.get(var.name) is envspec.lookup(var.name)
        assert envspec.lookup("REPRO_NOT_REGISTERED") is None
        with pytest.raises(KeyError):
            envspec.get("REPRO_NOT_REGISTERED")
        assert envspec.classification(var.name) == var.classification


class TestCompleteness:
    def test_every_mentioned_variable_is_registered(self):
        registered = {var.name for var in envspec.all_vars()}
        unregistered = _mentioned_variables() - registered
        assert unregistered == set(), (
            f"REPRO_* variables used but not declared in repro.envspec: "
            f"{sorted(unregistered)}"
        )

    def test_every_registered_variable_is_actually_used(self):
        registered = {var.name for var in envspec.all_vars()}
        unused = registered - _mentioned_variables()
        assert unused == set(), (
            f"registered but never read anywhere: {sorted(unused)}"
        )


class TestReadmeTable:
    def test_readme_carries_the_generated_table(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        match = re.search(
            r"<!-- envspec-table:begin -->\n(.*?)\n<!-- envspec-table:end -->",
            readme,
            re.DOTALL,
        )
        assert match, "README.md lost its envspec-table markers"
        assert match.group(1) == envspec.markdown_flag_table(), (
            "README env-var table is stale; regenerate with\n"
            '  python -c "from repro import envspec; '
            'print(envspec.markdown_flag_table())"'
        )

    def test_table_lists_every_variable(self):
        table = envspec.markdown_flag_table()
        for var in envspec.all_vars():
            assert f"`{var.name}`" in table
