"""Tests for the Section-IV annotation auditor."""

import pytest

from repro.annotations import AuditingMemory, audit_workload
from repro.workloads.registry import get_workload


def issue(mem, pc, values, is_float=True):
    region = mem.space.alloc(f"region_{pc:x}", len(values))
    for i, value in enumerate(values):
        mem.store(region.addr(i), value)
    for i in range(len(values)):
        mem.load_approx(pc, region.addr(i), is_float=is_float)
    return region


class TestHeuristics:
    def test_zero_divisor_risk_flagged(self):
        mem = AuditingMemory()
        issue(mem, 0x100, [1.0, 0.0, 2.0] + [3.0] * 30)
        report = mem.report()
        assert report.by_kind("zero-divisor-risk")

    def test_nonzero_stream_not_flagged(self):
        mem = AuditingMemory()
        issue(mem, 0x100, [1.0, 2.0, 3.0] * 11)
        assert not mem.report().by_kind("zero-divisor-risk")

    def test_boolean_flag_detected(self):
        mem = AuditingMemory()
        issue(mem, 0x200, [0, 1, 1, 0] * 8, is_float=False)
        report = mem.report()
        assert report.by_kind("boolean-flag")

    def test_wide_int_range_not_flagged_as_flag(self):
        mem = AuditingMemory()
        issue(mem, 0x200, list(range(2, 40)), is_float=False)
        assert not mem.report().by_kind("boolean-flag")

    def test_address_like_values_flagged(self):
        mem = AuditingMemory()
        # A second region whose *addresses* we store as values.
        target = mem.space.alloc("target", 8)
        pointers = [target.addr(i) for i in range(8)] * 4
        issue(mem, 0x300, pointers, is_float=False)
        report = mem.report()
        assert report.by_kind("address-like")

    def test_cold_site_flagged(self):
        mem = AuditingMemory()
        issue(mem, 0x400, [5.0, 6.0])
        report = mem.report()
        assert report.by_kind("cold-site")

    def test_hot_clean_site_passes(self):
        mem = AuditingMemory()
        issue(mem, 0x500, [100.0 + i * 0.1 for i in range(64)])
        report = mem.report()
        assert report.ok

    def test_precise_loads_not_audited(self):
        mem = AuditingMemory()
        region = mem.space.alloc("x", 4)
        for i in range(4):
            mem.store(region.addr(i), 0.0)
            mem.load(0x600, region.addr(i))
        assert not mem.profiles


class TestReport:
    def test_format_lists_warnings(self):
        mem = AuditingMemory()
        issue(mem, 0x100, [0.0, 0.0])
        text = mem.report().format()
        assert "zero-divisor-risk" in text
        assert "cold-site" in text

    def test_site_profiles_exposed(self):
        mem = AuditingMemory()
        issue(mem, 0x100, [1.0, 5.0, 3.0] * 10)
        report = mem.report()
        profile = report.sites[0x100]
        assert profile.loads == 30
        assert profile.min_value == 1.0
        assert profile.max_value == 5.0


class TestWorkloadAudits:
    """The paper's own annotations should come out (mostly) clean."""

    @pytest.mark.parametrize("name", ["blackscholes", "swaptions", "x264"])
    def test_no_pointer_or_flag_warnings(self, name):
        report = audit_workload(get_workload(name, small=True))
        assert not report.by_kind("boolean-flag")
        assert not report.by_kind("address-like")

    def test_canneal_positions_not_flagged_as_addresses(self):
        # Grid coordinates are small ints, far below region bases.
        report = audit_workload(get_workload("canneal", small=True))
        assert not report.by_kind("address-like")
