"""Remaining small edges: hierarchy stats, memory sizes, cache recompose."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.memory import MainMemory


class TestRecompose:
    def test_writeback_address_is_block_aligned_original(self):
        """The writeback address reported on eviction must reconstruct the
        victim's block address exactly (index+tag round trip)."""
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=4 * 64, associativity=1, block_bytes=64)
        )
        victim_addr = 0x12340  # block-aligned
        cache.fill(victim_addr)
        cache.access(victim_addr, is_write=True)
        # Next fill maps to the same set (same index bits) and evicts it.
        conflicting = victim_addr + 4 * 64
        result = cache.fill(conflicting)
        assert result.writeback == victim_addr

    @pytest.mark.parametrize("addr", [0x0, 0x1FC0, 0xABCDE40, 0x7FFFFFC0])
    def test_roundtrip_many_addresses(self, addr):
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=2 * 64, associativity=1, block_bytes=64)
        )
        cache.fill(addr)
        cache.access(addr, is_write=True)
        result = cache.fill(addr + 2 * 64)
        assert result.writeback == cache.block_address(addr)


class TestMemorySizing:
    def test_default_one_gigabyte(self):
        assert MainMemory().size_bytes == 1 << 30

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            MainMemory(size_bytes=0)


class TestBlockAddressHelper:
    def test_alignment(self):
        cache = SetAssociativeCache(CacheConfig())
        assert cache.block_address(0x1039) == 0x1000
        assert cache.block_address(0x1000) == 0x1000
        assert cache.block_address(0x103F) == 0x1000
        assert cache.block_address(0x1040) == 0x1040
