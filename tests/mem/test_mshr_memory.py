"""Tests for the MSHR file and main memory."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mem.memory import MainMemory
from repro.mem.mshr import MSHRFile


class TestMSHR:
    def test_allocate_and_complete(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0x1000, now=5, waiter="load-a")
        entry = mshrs.complete(0x1000)
        assert entry.waiters == ["load-a"]
        assert mshrs.outstanding == 0

    def test_merge_secondary_miss(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0x1000, now=1, waiter="a")
        mshrs.merge(0x1000, "b")
        entry = mshrs.complete(0x1000)
        assert entry.waiters == ["a", "b"]
        assert mshrs.stats.merges == 1

    def test_full_file_rejects_allocation(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(0x0, now=0)
        assert mshrs.is_full
        with pytest.raises(SimulationError):
            mshrs.allocate(0x40, now=1)
        assert mshrs.stats.stalls_full == 1

    def test_duplicate_allocation_rejected(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, now=0)
        with pytest.raises(SimulationError):
            mshrs.allocate(0x1000, now=1)

    def test_merge_without_entry_rejected(self):
        with pytest.raises(SimulationError):
            MSHRFile(2).merge(0x1000, "x")

    def test_complete_unknown_rejected(self):
        with pytest.raises(SimulationError):
            MSHRFile(2).complete(0x1000)

    def test_lookup(self):
        mshrs = MSHRFile(2)
        assert mshrs.lookup(0x1000) is None
        mshrs.allocate(0x1000, now=3)
        assert mshrs.lookup(0x1000).issue_time == 3

    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            MSHRFile(0)

    def test_reset(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0x0, now=0)
        mshrs.reset()
        assert mshrs.outstanding == 0
        assert mshrs.stats.allocations == 0


class TestMainMemory:
    def test_table_ii_latency(self):
        memory = MainMemory()
        assert memory.read(0x0) == 160
        assert memory.write(0x40) == 160

    def test_access_counting(self):
        memory = MainMemory()
        memory.read(0x0)
        memory.read(0x40)
        memory.write(0x80)
        assert memory.stats.reads == 2
        assert memory.stats.writes == 1
        assert memory.stats.accesses == 3

    def test_invalid_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            MainMemory(latency=-1)

    def test_reset(self):
        memory = MainMemory()
        memory.read(0x0)
        memory.reset()
        assert memory.stats.accesses == 0
