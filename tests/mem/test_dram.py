"""Tests for the banked DRAM row-buffer model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fullsystem import FullSystemConfig, FullSystemSimulator
from repro.mem.dram import DRAMConfig, DRAMModel
from repro.sim.trace import LoadEvent, Trace


def model(**overrides):
    return DRAMModel(DRAMConfig(**overrides))


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        dram = model()
        latency = dram.access(0x0, now=0)
        cfg = dram.config
        assert latency == cfg.t_rcd + cfg.t_cas + cfg.t_burst + cfg.overhead
        assert dram.stats.row_misses == 1

    def test_same_row_hits(self):
        dram = model()
        dram.access(0x0, now=0)
        latency = dram.access(0x40, now=1000)  # same bank? row 0, bank 1...
        # Use an address in the same bank & row: bank = block & 7.
        dram.reset()
        dram.access(0x0, now=0)
        latency = dram.access(0x8 * 64, now=1000)  # block 8 -> bank 0, row 0
        cfg = dram.config
        assert latency == cfg.t_cas + cfg.t_burst + cfg.overhead
        assert dram.stats.row_hits == 1

    def test_row_conflict_pays_precharge(self):
        dram = model()
        dram.access(0x0, now=0)
        row_stride = dram.config.row_bytes
        latency = dram.access(row_stride, now=1000)  # same bank, next row
        cfg = dram.config
        assert latency == cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_burst + cfg.overhead
        assert dram.stats.row_conflicts == 1

    def test_busy_bank_serialises(self):
        dram = model()
        dram.access(0x0, now=0)
        second = dram.access(0x8 * 64, now=0)  # same bank, immediately
        # The second access waits for the first's service window.
        assert second > dram.config.t_cas + dram.config.t_burst + dram.config.overhead - 1
        assert dram.stats.bank_wait_cycles > 0

    def test_different_banks_do_not_wait(self):
        dram = model()
        dram.access(0x0, now=0)       # bank 0
        latency = dram.access(0x40, now=0)  # bank 1
        cfg = dram.config
        assert latency == cfg.t_rcd + cfg.t_cas + cfg.t_burst + cfg.overhead

    def test_defaults_near_table_ii_latency(self):
        """The default timings should land near the paper's 160 cycles."""
        dram = model()
        assert 120 <= dram.average_latency_estimate <= 200

    def test_reset(self):
        dram = model()
        dram.access(0x0)
        dram.reset()
        assert dram.stats.accesses == 0
        assert dram.access(0x0) > 0  # row closed again -> miss path

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 1 << 26), min_size=1, max_size=100))
    def test_latency_always_positive_and_bounded(self, addrs):
        dram = model()
        cfg = dram.config
        now = 0.0
        for addr in addrs:
            latency = dram.access(addr, now)
            assert latency >= cfg.t_cas + cfg.t_burst + cfg.overhead
            now += 50  # advancing time bounds bank-wait accumulation
        assert dram.stats.accesses == len(addrs)


class TestConfigValidation:
    def test_bank_count_power_of_two(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(banks=6)

    def test_negative_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(t_cas=-1)

    def test_fullsystem_rejects_unknown_model(self):
        with pytest.raises(ConfigurationError):
            FullSystemConfig(memory_model="hbm")


class TestFullSystemIntegration:
    def test_dram_model_runs_and_differs_from_fixed(self):
        events = [
            LoadEvent(0, 0x400, i * 4096, 1.0, True, False, 10)
            for i in range(64)  # row conflicts galore
        ]
        trace = Trace(events)
        fixed = FullSystemSimulator(FullSystemConfig()).run(trace)
        sim = FullSystemSimulator(FullSystemConfig(memory_model="dram"))
        dram = sim.run(trace)
        assert sim.dram.stats.accesses == dram.memory_accesses
        assert dram.cycles != fixed.cycles  # timing genuinely differs

    def test_streaming_rows_get_hits(self):
        events = [
            LoadEvent(0, 0x400, i * 64, 1.0, True, False, 10) for i in range(64)
        ]
        sim = FullSystemSimulator(FullSystemConfig(memory_model="dram"))
        sim.run(Trace(events))
        assert sim.dram.stats.row_hit_rate > 0.5
