"""Tests for the two-level hierarchy wrapper."""

from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.hierarchy import TwoLevelHierarchy
from repro.mem.memory import MainMemory


def tiny_hierarchy():
    return TwoLevelHierarchy(
        l1=SetAssociativeCache(CacheConfig(size_bytes=2 * 64, associativity=1, block_bytes=64)),
        l2=SetAssociativeCache(
            CacheConfig(size_bytes=8 * 64, associativity=2, block_bytes=64, latency=6)
        ),
        memory=MainMemory(latency=160),
    )


class TestLoadPath:
    def test_cold_load_goes_to_memory(self):
        h = tiny_hierarchy()
        access = h.load(0x1000)
        assert access.served_by == "memory"
        assert access.latency == 1 + 6 + 160
        assert access.l1_filled

    def test_second_load_hits_l1(self):
        h = tiny_hierarchy()
        h.load(0x1000)
        access = h.load(0x1000)
        assert access.served_by == "l1"
        assert access.latency == 1

    def test_l1_eviction_falls_back_to_l2(self):
        h = tiny_hierarchy()
        h.load(0x0)
        h.load(0x80)   # same direct-mapped L1 set (2 sets, stride 0x80)
        access = h.load(0x0)
        assert access.served_by == "l2"
        assert access.latency == 1 + 6

    def test_fetch_on_miss_false_skips_everything(self):
        h = tiny_hierarchy()
        access = h.load(0x1000, fetch_on_miss=False)
        assert access.served_by == "none"
        assert not access.l1_filled
        assert h.memory.stats.reads == 0
        # Next load still misses: nothing was fetched.
        assert not h.l1.contains(0x1000)

    def test_store_write_allocates_and_dirties(self):
        h = tiny_hierarchy()
        h.store(0x1000)
        assert h.l1.contains(0x1000)

    def test_dirty_l1_victim_written_back_to_l2(self):
        h = tiny_hierarchy()
        h.store(0x0)
        h.load(0x80)  # evicts dirty 0x0 into L2
        assert h.l2.contains(0x0)

    def test_reset(self):
        h = tiny_hierarchy()
        h.load(0x1000)
        h.reset()
        assert h.l1.resident_blocks == 0
        assert h.memory.stats.reads == 0
