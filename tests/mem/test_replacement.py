"""Direct tests for replacement policies and cache blocks."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.block import CacheBlock, CoherenceState
from repro.mem.replacement import FIFOPolicy, LRUPolicy, RandomPolicy


def blocks_with(last_uses, inserted_ats=None):
    inserted_ats = inserted_ats or last_uses
    out = []
    for i, (use, ins) in enumerate(zip(last_uses, inserted_ats)):
        block = CacheBlock(tag=i)
        block.fill(i, now=ins)
        block.last_use = use
        out.append(block)
    return out


class TestLRU:
    def test_picks_smallest_last_use(self):
        ways = blocks_with([5, 2, 9, 7])
        assert LRUPolicy().victim(ways) == 1

    def test_on_hit_bumps_recency(self):
        block = CacheBlock(1)
        LRUPolicy().on_hit(block, now=42)
        assert block.last_use == 42

    def test_tie_breaks_to_first(self):
        ways = blocks_with([3, 3, 3])
        assert LRUPolicy().victim(ways) == 0

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=16, unique=True))
    def test_always_minimum(self, uses):
        ways = blocks_with(uses)
        victim = LRUPolicy().victim(ways)
        assert uses[victim] == min(uses)


class TestFIFO:
    def test_picks_earliest_insertion(self):
        ways = blocks_with([9, 9, 9], inserted_ats=[5, 2, 7])
        assert FIFOPolicy().victim(ways) == 1

    def test_on_hit_does_not_touch_recency(self):
        block = CacheBlock(1)
        block.last_use = 7
        FIFOPolicy().on_hit(block, now=99)
        assert block.last_use == 7


class TestRandom:
    def test_victim_in_range_and_deterministic_with_seed(self):
        ways = blocks_with([1, 2, 3, 4])
        a = RandomPolicy(np.random.default_rng(3))
        b = RandomPolicy(np.random.default_rng(3))
        picks_a = [a.victim(ways) for _ in range(20)]
        picks_b = [b.victim(ways) for _ in range(20)]
        assert picks_a == picks_b
        assert all(0 <= p < 4 for p in picks_a)

    def test_eventually_covers_all_ways(self):
        ways = blocks_with([1, 2, 3, 4])
        policy = RandomPolicy(np.random.default_rng(0))
        picks = {policy.victim(ways) for _ in range(200)}
        assert picks == {0, 1, 2, 3}


class TestCacheBlock:
    def test_fill_sets_state(self):
        block = CacheBlock()
        block.fill(0x7, now=3, prefetched=True)
        assert block.valid and block.prefetched
        assert block.state is CoherenceState.SHARED
        assert block.inserted_at == 3

    def test_invalidate_clears(self):
        block = CacheBlock()
        block.fill(0x7, now=3)
        block.dirty = True
        block.invalidate()
        assert not block.valid and not block.dirty
        assert block.state is CoherenceState.INVALID

    def test_repr_mentions_state(self):
        assert "state=I" in repr(CacheBlock())
