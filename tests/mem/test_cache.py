"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.replacement import FIFOPolicy


def small_cache(assoc=2, sets=4, block=64):
    return SetAssociativeCache(
        CacheConfig(size_bytes=assoc * sets * block, associativity=assoc, block_bytes=block)
    )


class TestConfig:
    def test_paper_phase1_l1(self):
        cfg = CacheConfig(size_bytes=64 * 1024, associativity=8, block_bytes=64)
        assert cfg.num_sets == 128

    def test_paper_phase2_l1(self):
        cfg = CacheConfig(size_bytes=16 * 1024, associativity=8, block_bytes=64)
        assert cfg.num_sets == 32

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(block_bytes=48)

    def test_cache_smaller_than_set_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=64, associativity=4, block_bytes=64)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=3 * 64 * 2, associativity=2, block_bytes=64)


class TestAccess:
    def test_cold_miss_then_hit_after_fill(self):
        cache = small_cache()
        assert not cache.access(0x1000).hit
        cache.fill(0x1000)
        assert cache.access(0x1000).hit

    def test_miss_does_not_implicitly_fill(self):
        # The fetch decoupling at the heart of approximation degree.
        cache = small_cache()
        cache.access(0x1000)
        assert not cache.access(0x1000).hit

    def test_same_block_different_offset_hits(self):
        cache = small_cache()
        cache.fill(0x1000)
        assert cache.access(0x1008).hit
        assert cache.access(0x103F).hit

    def test_adjacent_block_misses(self):
        cache = small_cache()
        cache.fill(0x1000)
        assert not cache.access(0x1040).hit

    def test_write_sets_dirty_and_eviction_reports_writeback(self):
        cache = small_cache(assoc=1, sets=1)
        cache.fill(0x0)
        cache.access(0x0, is_write=True)
        result = cache.fill(0x40)  # evicts the dirty block
        assert result.writeback == 0x0

    def test_clean_eviction_has_no_writeback(self):
        cache = small_cache(assoc=1, sets=1)
        cache.fill(0x0)
        assert cache.fill(0x40).writeback is None

    def test_fill_existing_block_is_noop(self):
        cache = small_cache()
        cache.fill(0x1000)
        cache.fill(0x1000)
        assert cache.resident_blocks == 1

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.access(0x1000).hit
        assert not cache.invalidate(0x1000)

    def test_contains_does_not_touch_stats(self):
        cache = small_cache()
        cache.fill(0x1000)
        before = cache.stats.accesses
        cache.contains(0x1000)
        assert cache.stats.accesses == before


class TestLRU:
    def test_lru_evicts_least_recent(self):
        cache = small_cache(assoc=2, sets=1)
        cache.fill(0x0)
        cache.fill(0x40)
        cache.access(0x0)          # 0x0 is now most recent
        cache.fill(0x80)           # evicts 0x40
        assert cache.access(0x0).hit
        assert not cache.access(0x40).hit

    def test_fifo_ignores_recency(self):
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=2 * 64, associativity=2, block_bytes=64),
            policy=FIFOPolicy(),
        )
        cache.fill(0x0)
        cache.fill(0x40)
        cache.access(0x0)
        cache.fill(0x80)           # evicts 0x0 (inserted first) despite recency
        assert not cache.access(0x0).hit
        assert cache.access(0x40).hit


class TestPrefetchTracking:
    def test_prefetch_hit_counted_once(self):
        cache = small_cache()
        cache.fill(0x1000, prefetched=True)
        first = cache.access(0x1000)
        second = cache.access(0x1000)
        assert first.prefetch_hit and not second.prefetch_hit
        assert cache.stats.useful_prefetches == 1


class TestStats:
    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0x0)
        cache.fill(0x0)
        cache.access(0x0)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_reset(self):
        cache = small_cache()
        cache.fill(0x0)
        cache.access(0x0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_blocks == 0


class TestProperties:
    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=200))
    def test_capacity_never_exceeded(self, addrs):
        cache = small_cache(assoc=2, sets=4)
        for addr in addrs:
            if not cache.access(addr).hit:
                cache.fill(addr)
        assert cache.resident_blocks <= 8

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 0xFFF), min_size=1, max_size=100))
    def test_hits_plus_misses_equals_accesses(self, addrs):
        cache = small_cache()
        for addr in addrs:
            if not cache.access(addr).hit:
                cache.fill(addr)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 0x1FFF), min_size=1, max_size=100))
    def test_immediate_refetch_always_hits(self, addrs):
        cache = small_cache()
        for addr in addrs:
            cache.fill(addr)
            assert cache.access(addr).hit
