"""Tests for the MSI directory protocol."""

from repro.mem.block import CoherenceState
from repro.mem.coherence import CoherenceAction, MSIDirectory


BLOCK = 0x1000


class TestReads:
    def test_first_read_fetches_from_memory(self):
        directory = MSIDirectory()
        response = directory.read(0, BLOCK)
        assert (0, CoherenceAction.FETCH_FROM_MEMORY) in response.actions
        assert response.new_state is CoherenceState.SHARED
        assert directory.state_of(0, BLOCK) is CoherenceState.SHARED

    def test_second_reader_shares(self):
        directory = MSIDirectory()
        directory.read(0, BLOCK)
        directory.read(1, BLOCK)
        assert directory.state_of(0, BLOCK) is CoherenceState.SHARED
        assert directory.state_of(1, BLOCK) is CoherenceState.SHARED

    def test_read_of_modified_block_downgrades_owner(self):
        directory = MSIDirectory()
        directory.write(0, BLOCK)
        response = directory.read(1, BLOCK)
        assert (0, CoherenceAction.DOWNGRADE) in response.actions
        assert directory.state_of(0, BLOCK) is CoherenceState.SHARED
        assert directory.state_of(1, BLOCK) is CoherenceState.SHARED


class TestWrites:
    def test_write_gains_modified(self):
        directory = MSIDirectory()
        response = directory.write(2, BLOCK)
        assert response.new_state is CoherenceState.MODIFIED
        assert directory.state_of(2, BLOCK) is CoherenceState.MODIFIED

    def test_write_invalidates_sharers(self):
        directory = MSIDirectory()
        directory.read(0, BLOCK)
        directory.read(1, BLOCK)
        response = directory.write(2, BLOCK)
        invalidated = {c for c, a in response.actions if a is CoherenceAction.INVALIDATE}
        assert invalidated == {0, 1}
        assert directory.state_of(0, BLOCK) is CoherenceState.INVALID
        assert directory.state_of(1, BLOCK) is CoherenceState.INVALID

    def test_write_invalidates_other_owner(self):
        directory = MSIDirectory()
        directory.write(0, BLOCK)
        response = directory.write(1, BLOCK)
        assert (0, CoherenceAction.INVALIDATE) in response.actions
        assert directory.state_of(1, BLOCK) is CoherenceState.MODIFIED
        assert directory.state_of(0, BLOCK) is CoherenceState.INVALID

    def test_upgrade_from_shared_needs_no_memory_fetch(self):
        directory = MSIDirectory()
        directory.read(0, BLOCK)
        response = directory.write(0, BLOCK)
        assert (0, CoherenceAction.FETCH_FROM_MEMORY) not in response.actions

    def test_silent_write_hit_by_owner(self):
        directory = MSIDirectory()
        directory.write(0, BLOCK)
        response = directory.write(0, BLOCK)
        assert response.actions == []


class TestEviction:
    def test_evict_clears_sharer(self):
        directory = MSIDirectory()
        directory.read(0, BLOCK)
        directory.evict(0, BLOCK)
        assert directory.state_of(0, BLOCK) is CoherenceState.INVALID
        assert directory.tracked_blocks == 0

    def test_evict_owner(self):
        directory = MSIDirectory()
        directory.write(1, BLOCK)
        directory.evict(1, BLOCK)
        assert directory.state_of(1, BLOCK) is CoherenceState.INVALID

    def test_evict_unknown_block_is_noop(self):
        directory = MSIDirectory()
        directory.evict(0, BLOCK)
        assert directory.tracked_blocks == 0


class TestInvariants:
    def test_single_writer_multiple_reader(self):
        """At any point: either one M owner and no sharers, or only sharers."""
        directory = MSIDirectory()
        operations = [
            ("r", 0), ("r", 1), ("w", 2), ("r", 3), ("w", 0), ("r", 1), ("r", 2),
        ]
        for op, core in operations:
            if op == "r":
                directory.read(core, BLOCK)
            else:
                directory.write(core, BLOCK)
            states = [directory.state_of(c, BLOCK) for c in range(4)]
            owners = states.count(CoherenceState.MODIFIED)
            sharers = states.count(CoherenceState.SHARED)
            assert owners <= 1
            assert not (owners == 1 and sharers > 0)
