"""Benchmark-harness configuration.

Every benchmark regenerates one table or figure of the paper at full
evaluation scale, measures how long the regeneration takes (one round —
these are minutes-scale simulations, not microbenchmarks) and asserts the
paper's qualitative shape on the result: who wins, in which direction the
trade-off moves, where the crossovers sit.
"""

import pytest

from repro.experiments import diskcache


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    """Benchmarks must measure real simulations, never disk-cache reads."""
    monkeypatch.setenv(diskcache.NO_CACHE_ENV, "1")


def run_experiment(benchmark, driver, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(driver, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_experiment` for terser benchmarks."""

    def runner(driver, **kwargs):
        return run_experiment(benchmark, driver, **kwargs)

    return runner
