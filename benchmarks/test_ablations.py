"""Ablation benchmarks: design-choice sensitivity at full scale.

These regenerate the ablation tables DESIGN.md calls out and assert the
paper's design rationales quantitatively:

* a 128-entry table performs close to the 512-entry baseline
  (Section VII-A: the annotated-load footprint is small);
* AVERAGE is at least as accurate as the alternative f(LHB) choices the
  authors tried (stride / delta / last-value);
* gating integers on confidence costs coverage (Section VI-B's reason for
  the exemption).
"""

from repro.experiments import ablations


def test_table_size(once):
    result = once(ablations.table_size)
    baseline = result.average("entries-512")
    small_table = result.average("entries-128")
    # Small tables sacrifice little MPKI coverage.
    assert small_table <= baseline + 0.10
    print()
    print(result.format_table())


def test_compute_function(once):
    result = once(ablations.compute_function)
    print()
    print(result.format_table())
    # "We tried different LHB functions such as strides and deltas and
    # found average to be most accurate." On our synthetic value streams
    # the exact top-two ranking depends on the benchmark (see
    # EXPERIMENTS.md), so the robust reproducible shape is: AVERAGE is
    # competitive with the best f (within a small margin) and its output
    # error stays bounded — the property the paper chose it for.
    avg_mpki = result.average("mpki-average")
    best_mpki = min(
        result.average(f"mpki-{fn}") for fn in ("average", "last", "stride", "delta")
    )
    assert avg_mpki <= best_mpki + 0.08
    assert result.average("error-average") < 0.15


def test_int_confidence(once):
    result = once(ablations.int_confidence)
    # Gating integer data on confidence can only reduce coverage (raise
    # effective MPKI); the exemption buys MPKI essentially for free.
    assert result.average("mpki-confidence") >= result.average(
        "mpki-no-confidence"
    ) - 0.02
    print()
    print(result.format_table())


def test_confidence_steps(once):
    result = once(ablations.confidence_steps)
    # The variable-step optimisation must not blow up error...
    for step in (1, 2, 4):
        assert result.average(f"error-step-{step}") < 0.30
    # ...and faster recovery should not *hurt* coverage.
    assert result.average("mpki-step-4") <= result.average("mpki-step-1") + 0.05
    print()
    print(result.format_table())


def test_lhb_size(once):
    result = once(ablations.lhb_size)
    # A single-entry LHB (last-value) still works; deeper history shouldn't
    # be catastrophically different — the knob is gentle.
    for size in (1, 2, 4, 8):
        assert result.average(f"mpki-lhb-{size}") <= 1.05
    print()
    print(result.format_table())


def test_noc_model_calibration(once):
    from repro.experiments import noc_calibration

    result = once(noc_calibration.run)
    fast = result.series["fast_latency"]
    detailed = result.series["detailed_latency"]
    # Agreement at the lowest load point, divergence bounded overall.
    low = "rate-0.01"
    assert abs(fast[low] - detailed[low]) / detailed[low] < 0.5
    # Both models show latency rising with offered load.
    assert detailed["rate-0.15"] > detailed["rate-0.01"]
    print()
    print(result.format_table())


def test_sensitivity_tornado(once):
    from repro.experiments import sensitivity

    result = once(sensitivity.run)
    deltas = result.series["mpki_delta"]
    # The paper's two headline knobs must dominate the tornado: relaxing
    # the confidence window moves MPKI more than tweaking table size or
    # confidence bits does.
    window_effect = abs(deltas["confidence_window-high"])
    assert window_effect > abs(deltas["table_entries-high"])
    assert window_effect > abs(deltas["confidence_bits-high"])
    # ...and the approximation degree dominates the error axis.
    error_deltas = result.series["error_delta"]
    assert abs(error_deltas["approximation_degree-high"]) == max(
        abs(v) for v in error_deltas.values()
    )
    print()
    print(result.format_table())
