"""Per-configuration replay-throughput benchmarks for the vector kernels.

PR 10 extended vector-kernel eligibility from flat degree-0 LVA/LVP to
every phase-1 configuration: approximation degree > 0, the prefetcher,
and the registry predictor zoo (``clp``, ``hybrid``).  These benchmarks
time each newly eligible configuration on both interpreters and record
the packed-vs-vector curves under the ``"configs"`` key of
``BENCH_replay.json`` so future re-anchors can see whether the
interleaved replays keep their lead.
"""

import time

import pytest

from repro.core.config import ApproximatorConfig
from repro.sim.tracesim import Mode, TraceSimulator

#: Every configuration this PR made vector-eligible, as
#: (label, mode, approximator-config kwargs).
CONFIGS = [
    ("degree-1", Mode.LVA, {"approximation_degree": 1}),
    ("degree-2", Mode.LVA, {"approximation_degree": 2}),
    ("degree-3", Mode.LVA, {"approximation_degree": 3}),
    ("predictor-lva", Mode.PREDICTOR, {"predictor": "lva"}),
    ("predictor-lvp", Mode.PREDICTOR, {"predictor": "lvp"}),
    ("predictor-clp", Mode.PREDICTOR, {"predictor": "clp"}),
    ("predictor-hybrid", Mode.PREDICTOR, {"predictor": "hybrid"}),
    ("prefetch", Mode.PREFETCH, {}),
]


@pytest.fixture(scope="module")
def captured():
    """One full-scale workload capture shared by every benchmark here."""
    from repro import TraceRecorder, get_workload

    recorder = TraceRecorder(record_stores=True)
    sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
    get_workload("canneal", small=False).execute(sim, 0)
    sim.finish()
    return recorder.trace.pack()


def _simulator(mode, kwargs):
    return TraceSimulator(mode, approximator_config=ApproximatorConfig(**kwargs))


@pytest.mark.parametrize("path", ["packed", "vector"])
@pytest.mark.parametrize(
    "label,mode,kwargs", CONFIGS, ids=[c[0] for c in CONFIGS]
)
def test_config_replay_throughput(
    benchmark, captured, monkeypatch, label, mode, kwargs, path
):
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", path)
    stats = benchmark(lambda: _simulator(mode, kwargs).replay(captured))
    assert stats.loads > 0


def test_write_bench_config_json(monkeypatch, captured):
    """Merge the per-configuration throughput curves into
    ``BENCH_replay.json`` under ``"configs"`` (read-modify-write, so the
    per-workload curves written by ``test_trace_pack`` survive) — and
    assert the headline claim: every newly eligible configuration
    replays faster under the vector kernel than the packed interpreter.

    Uses ``time.perf_counter`` directly (not the ``benchmark`` fixture)
    so the file is written even under ``--benchmark-disable``. Output
    path overridable via ``REPRO_BENCH_OUT``.
    """
    import json
    import os
    from pathlib import Path

    from repro.envspec import BENCH_OUT_ENV

    def events_per_sec(mode, kwargs, path):
        monkeypatch.setenv("REPRO_REPLAY_KERNEL", path)
        # One warm-up, then the timed run.
        _simulator(mode, kwargs).replay(captured)
        sim = _simulator(mode, kwargs)
        start = time.perf_counter()
        sim.replay(captured)
        elapsed = time.perf_counter() - start
        return len(captured) / elapsed if elapsed > 0 else float("inf")

    configs = {}
    for label, mode, kwargs in CONFIGS:
        configs[label] = {
            path: round(events_per_sec(mode, kwargs, path))
            for path in ("packed", "vector")
        }
        configs[label]["events"] = len(captured)

    out = Path(os.environ.get(BENCH_OUT_ENV, "BENCH_replay.json"))
    merged = json.loads(out.read_text()) if out.exists() else {}
    merged["configs"] = configs
    out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")

    for label, curve in configs.items():
        assert curve["vector"] > curve["packed"], (label, curve)
