"""Figure 5 benchmark: LVA output error across GHB sizes.

Shape checks: at the baseline GHB size every application except ferret
stays around or below ~12 % output error (the paper's "around or below
10 %" with ferret's pessimistic metric above it); swaptions and x264 sit
near zero.
"""

from repro.experiments import fig5


def test_fig5(once):
    result = once(fig5.run)
    baseline = result.series["GHB-0"]

    for name, error in baseline.items():
        if name == "ferret":
            continue
        assert error < 0.15, name

    # swaptions and x264 are near zero, as the paper highlights.
    assert baseline["swaptions"] < 0.01
    assert baseline["x264"] < 0.01

    # ferret's pessimistic metric makes it the error outlier.
    assert baseline["ferret"] == max(baseline.values())

    print()
    print(result.format_table())
