"""Figure 12 benchmark: static approximate-load PC counts.

Shape checks: the annotated-load footprint is tiny — at most a few hundred
static PCs (the paper's maximum is ~300, for x264), with x264 the largest
and every benchmark far below the 512-entry table size. This is why GHB 0
(PC-only indexing) works and why small tables suffice (Section VII-A).
"""

from repro.experiments import fig12


def test_fig12(once):
    result = once(fig12.run)
    counts = result.series["static_approx_pcs"]

    assert counts["x264"] == max(counts.values())
    assert counts["x264"] <= 320  # the paper's "at most 300" scale
    for name, count in counts.items():
        assert count < 512, name  # fits the baseline table

    # Most benchmarks need only a handful of PCs.
    small = [c for c in counts.values() if c <= 64]
    assert len(small) >= 5

    print()
    print(result.format_table())
