"""Figure 9 benchmark: output error across approximation degrees.

Shape checks: error rises with degree on average (stale approximations),
while the best-behaved integer benchmarks stay low even at degree 16.
"""

from repro.experiments import fig9


def test_fig9(once):
    result = once(fig9.run)
    print()
    print(result.format_table())

    averages = [result.average(f"approx-{d}") for d in (0, 2, 4, 8, 16)]

    # The energy-error trade-off: degree 16 is worse than degree 0.
    assert averages[-1] >= averages[0]

    # All errors remain bounded in [0, 1].
    for series in result.series.values():
        for value in series.values():
            assert 0.0 <= value <= 1.0

    # x264 starts near zero and its error *rises* with degree (our
    # mini-encoder's bit-rate proxy saturates faster than a real encoder
    # at high degree — see EXPERIMENTS.md known deviations).
    assert result.series["approx-0"]["x264"] < 0.05
    assert result.series["approx-16"]["x264"] >= result.series["approx-0"]["x264"]
