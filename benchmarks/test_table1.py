"""Table I benchmark: precise MPKI and instruction-count variation.

Shape checks versus the paper: canneal has the highest MPKI, swaptions is
essentially miss-free, every measured MPKI is within the same order of
magnitude as the published number, and instruction-count variation stays
low.
"""

from repro.experiments import table1
from repro.experiments.table1 import PAPER_MPKI


def test_table1(once):
    result = once(table1.run)
    measured = result.series["precise_mpki"]

    # Ranking shape: canneal tops the table, swaptions is negligible.
    assert measured["canneal"] == max(measured.values())
    assert measured["swaptions"] == min(measured.values())
    assert measured["swaptions"] < 0.05

    # Every benchmark lands within ~3x of the published MPKI (except
    # swaptions, which the paper reports as ~0 and we match qualitatively).
    for name, paper_value in PAPER_MPKI.items():
        if name == "swaptions":
            continue
        assert paper_value / 3 < measured[name] < paper_value * 3, name

    # Instruction-count variation under LVA is small for every workload.
    for name, variation in result.series["instruction_variation"].items():
        assert variation < 0.15, name

    print()
    print(result.format_table())
