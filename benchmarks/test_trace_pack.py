"""Microbenchmarks of the columnar trace engine.

The workload trace is captured ONCE at module scope (capture is the
expensive step the trace store exists to amortise); the benchmarks then
time the packed-path primitives in isolation: pack/unpack conversion,
trace-store round-trips, and replay throughput through both the phase-1
and phase-2 simulators. They guard the hot loops this PR vectorised.
"""

import numpy as np
import pytest

from repro.core.config import ApproximatorConfig
from repro.experiments import tracestore
from repro.fullsystem import FullSystemConfig, FullSystemSimulator
from repro.sim.trace import LoadEvent, Trace
from repro.sim.tracesim import Mode, TraceSimulator


def _synthetic_trace(n: int = 8192) -> Trace:
    rng = np.random.default_rng(7)
    return Trace(
        [
            LoadEvent(
                tid=i % 4,
                pc=0x400 + 4 * (i % 64),
                addr=int(rng.integers(0, 1 << 20)) & ~63,
                value=float(rng.normal(50, 5)) if i % 2 else int(rng.integers(0, 1 << 30)),
                is_float=bool(i % 2),
                approximable=bool(i % 3),
                gap=int(rng.integers(0, 12)),
                is_store=(i % 17 == 0),
            )
            for i in range(n)
        ]
    )


@pytest.fixture(scope="module")
def captured():
    """One real workload capture, shared by every benchmark here."""
    from repro import Mode, TraceRecorder, TraceSimulator, get_workload

    recorder = TraceRecorder()
    sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
    get_workload("canneal", small=False).execute(sim, 0)
    sim.finish()
    return recorder.trace


def test_pack_throughput(benchmark, captured):
    benchmark(captured.pack)


def test_unpack_throughput(benchmark, captured):
    packed = captured.pack()
    benchmark(packed.to_trace)


def test_event_tuples_throughput(benchmark, captured):
    packed = captured.pack()
    benchmark(packed.event_tuples)


def test_store_put_get_round_trip(benchmark, tmp_path):
    packed = _synthetic_trace().pack()
    store = tracestore.TraceStore(directory=tmp_path / "traces")
    counter = iter(range(10**9))

    def round_trip():
        key = f"{next(counter):064d}"
        store.put(key, packed)
        return store.get(key)

    loaded = benchmark(round_trip)
    assert loaded is not None and len(loaded) == len(packed)


def test_store_warm_get(benchmark, tmp_path):
    """Mapping an existing entry — the per-worker cost in a warm sweep."""
    packed = _synthetic_trace().pack()
    store = tracestore.TraceStore(directory=tmp_path / "traces")
    key = "ab" + "0" * 62
    store.put(key, packed)
    loaded = benchmark(lambda: store.get(key))
    assert loaded is not None


def test_tracesim_packed_replay_throughput(benchmark, captured, monkeypatch):
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "packed")
    packed = captured.pack()

    def replay():
        return TraceSimulator(Mode.LVA).replay(packed)

    stats = benchmark(replay)
    assert stats.loads == sum(1 for e in captured.events if not e.is_store)


def test_tracesim_vector_replay_throughput(benchmark, captured, monkeypatch):
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "vector")
    packed = captured.pack()

    def replay():
        return TraceSimulator(Mode.LVA).replay(packed)

    stats = benchmark(replay)
    assert stats.loads == sum(1 for e in captured.events if not e.is_store)


def test_fullsystem_packed_replay_throughput(benchmark, captured):
    packed = captured.pack()
    config = FullSystemConfig(
        approximate=True, approximator=ApproximatorConfig(approximation_degree=4)
    )

    def replay():
        return FullSystemSimulator(config).run(packed)

    result = benchmark(replay)
    assert result.loads > 0


def test_write_bench_replay_json(monkeypatch, captured):
    """Record the replay-throughput curve (events/sec per path, per
    workload) to ``BENCH_replay.json`` so future re-anchors can see the
    perf trajectory — and assert the headline claim: the vector kernel
    beats the packed interpreter on the largest workload.

    Uses ``time.perf_counter`` directly (not the ``benchmark`` fixture)
    so the file is written even under ``--benchmark-disable``. Output
    path overridable via ``REPRO_BENCH_OUT``.
    """
    import json
    import os
    import time
    from pathlib import Path

    from repro import TraceRecorder, get_workload
    from repro.envspec import BENCH_OUT_ENV
    from repro.experiments.common import BASELINE_WORKLOADS

    def events_per_sec(packed, path):
        if path == "default":
            # Auto-selection: vector when eligible and the trace clears
            # REPRO_REPLAY_VECTOR_MIN, packed below the threshold.
            monkeypatch.delenv("REPRO_REPLAY_KERNEL", raising=False)
        else:
            monkeypatch.setenv("REPRO_REPLAY_KERNEL", path)
        # One warm-up, then the timed run.
        TraceSimulator(Mode.LVA).replay(packed)
        sim = TraceSimulator(Mode.LVA)
        start = time.perf_counter()
        sim.replay(packed)
        elapsed = time.perf_counter() - start
        return len(packed) / elapsed if elapsed > 0 else float("inf")

    results = {}
    for name in BASELINE_WORKLOADS:
        recorder = TraceRecorder(record_stores=True)
        sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
        get_workload(name, small=True).execute(sim, 0)
        sim.finish()
        packed = recorder.trace.pack()
        results[name] = {
            path: round(events_per_sec(packed, path))
            for path in ("object", "packed", "vector", "default")
        }
        results[name]["events"] = len(packed)

    large = captured.pack()
    results["canneal-large"] = {
        path: round(events_per_sec(large, path))
        for path in ("object", "packed", "vector", "default")
    }
    results["canneal-large"]["events"] = len(large)

    out = Path(os.environ.get(BENCH_OUT_ENV, "BENCH_replay.json"))
    # Read-modify-write so the per-config curves recorded by
    # benchmarks/test_kernels.py under "configs" survive.
    merged = json.loads(out.read_text()) if out.exists() else {}
    merged.update({"mode": "lva", "unit": "events/sec", "workloads": results})
    out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")

    # The headline assertion: the vector kernel must beat the packed
    # interpreter on the largest workload (benchmark noise makes the
    # exact ratio environment-dependent; the ≥5× target is recorded in
    # the JSON rather than asserted).
    big = results["canneal-large"]
    assert big["vector"] > big["packed"], big

    # And the swaptions fix: its trace sits below the vector threshold,
    # so default selection must route it to the packed interpreter
    # instead of regressing onto the vector kernel.
    small = results["swaptions"]
    assert small["default"] > small["vector"], small
