"""Simulation-throughput benchmarks per workload (small instances).

Times one phase-1 LVA simulation of each benchmark's reduced instance.
Useful for spotting which workload dominates experiment wall time and for
catching throughput regressions in the workload implementations
themselves.
"""

import pytest

from repro.sim.tracesim import Mode, TraceSimulator
from repro.workloads.registry import get_workload, workload_names


@pytest.mark.parametrize("name", workload_names())
def test_workload_lva_throughput(benchmark, name):
    def simulate():
        sim = TraceSimulator(Mode.LVA)
        get_workload(name, small=True).execute(sim, seed=0)
        return sim.finish()

    stats = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert stats.loads > 0
