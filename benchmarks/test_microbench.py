"""Microbenchmarks of the library's hot structures.

Unlike the figure benchmarks (which time whole experiments), these measure
the simulator's own primitives with pytest-benchmark's statistical timing:
approximator lookup+train rounds, cache probes, NoC sends and full-system
event processing. They guard against performance regressions in the paths
every experiment spends its time in.
"""

import numpy as np

from repro.core.approximator import LoadValueApproximator
from repro.core.config import ApproximatorConfig
from repro.core.hashing import context_hash
from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.noc.network import MeshNetwork
from repro.sim.trace import LoadEvent, Trace
from repro.fullsystem import FullSystemConfig, FullSystemSimulator


def test_approximator_miss_train_round(benchmark):
    approx = LoadValueApproximator(ApproximatorConfig())
    values = np.random.default_rng(0).normal(100, 3, 256).tolist()

    def round_trip():
        for i, value in enumerate(values):
            decision = approx.on_miss(0x400 + 4 * (i % 16), True)
            if decision.token is not None:
                approx.train(decision.token, value)

    benchmark(round_trip)


def test_context_hash_with_ghb(benchmark):
    ghb_values = [1.5, 2.25, 3.125, 4.0625]

    def hash_many():
        for pc in range(0x400, 0x800, 4):
            context_hash(pc, ghb_values, 9, 21, mantissa_drop_bits=8)

    benchmark(hash_many)


def test_cache_probe_throughput(benchmark):
    cache = SetAssociativeCache(CacheConfig(size_bytes=64 * 1024, associativity=8))
    addrs = np.random.default_rng(0).integers(0, 1 << 20, 1024).tolist()
    for addr in addrs:
        cache.fill(addr)

    def probe():
        for addr in addrs:
            cache.access(addr)

    benchmark(probe)


def test_cache_fill_evict_throughput(benchmark):
    cache = SetAssociativeCache(CacheConfig(size_bytes=8 * 1024, associativity=4))
    addrs = np.random.default_rng(1).integers(0, 1 << 22, 2048).tolist()

    def churn():
        for addr in addrs:
            cache.fill(addr)

    benchmark(churn)


def test_noc_send_throughput(benchmark):
    net = MeshNetwork()

    def send_many():
        time = 0
        for i in range(512):
            net.send(i % 4, (i + 1) % 4, time, 5)
            time += 3

    benchmark(send_many)


def test_fullsystem_event_throughput(benchmark):
    rng = np.random.default_rng(2)
    events = [
        LoadEvent(
            tid=i % 4, pc=0x400 + 4 * (i % 8),
            addr=int(rng.integers(0, 1 << 20)) & ~63,
            value=float(rng.normal(50, 5)), is_float=True,
            approximable=True, gap=6,
        )
        for i in range(4096)
    ]
    trace = Trace(events)
    config = FullSystemConfig(approximate=True, approximator=ApproximatorConfig())

    def replay():
        FullSystemSimulator(config).run(trace)

    benchmark(replay)
