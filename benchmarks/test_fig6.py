"""Figure 6 benchmark: relaxed confidence windows.

Shape checks: the performance-error trade-off — MPKI falls monotonically
(on average) as the window widens from 0 % to infinite, while output error
rises; the 0 % window (exact matching) has near-zero error.
"""

from repro.experiments import fig6


def test_fig6(once):
    result = once(fig6.run)

    mpki = [result.average(f"mpki-{label}") for label in ("0%", "5%", "10%", "20%", "infinite")]
    error = [result.average(f"error-{label}") for label in ("0%", "5%", "10%", "20%", "infinite")]

    # MPKI is (weakly) monotone decreasing across the sweep.
    for tighter, wider in zip(mpki, mpki[1:]):
        assert wider <= tighter + 0.02

    # The widest window approximates far more than exact matching.
    assert mpki[-1] < 0.6 * mpki[0]

    # Error moves the other way: near zero at 0 %, highest at infinite.
    assert error[0] < 0.01
    assert error[-1] > error[0]

    print()
    print(result.format_table())
