"""Figure 7 benchmark: value-delay resilience.

Shape checks: LVA tolerates stale training data — average MPKI and output
error barely move between delays of 4 and 32 load instructions, and
canneal (whose positions are constantly swapped) is the benchmark whose
error is most sensitive to the delay.
"""

from repro.experiments import fig7


def test_fig7(once):
    result = once(fig7.run)

    # Average MPKI varies by only a small margin across the whole sweep.
    mpki = [result.average(f"mpki-delay-{d}") for d in (4, 8, 16, 32)]
    assert max(mpki) - min(mpki) < 0.10

    # Average error is flat too.
    error = [result.average(f"error-delay-{d}") for d in (4, 8, 16, 32)]
    assert max(error) - min(error) < 0.05

    # canneal is the most delay-sensitive application (Section VI-C).
    def spread(workload):
        values = [result.series[f"error-delay-{d}"][workload] for d in (4, 8, 16, 32)]
        return max(values) - min(values)

    stable = {"blackscholes", "bodytrack", "x264", "swaptions", "fluidanimate"}
    assert spread("canneal") >= max(spread(w) for w in stable) - 0.01

    print()
    print(result.format_table())
