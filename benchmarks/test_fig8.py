"""Figure 8 benchmark: approximation degree vs prefetch degree.

Shape checks: both techniques reduce MPKI, but their fetch behaviour
diverges — prefetching fetches *more* blocks than precise execution (and
more with higher degree), while LVA fetches *fewer* (and fewer with higher
degree). This is the crossover the paper builds its energy argument on:
degree-16 prefetching raised fetches by ~73 % while degree-16 LVA cut them
by ~39 %.
"""

from repro.experiments import fig8


def test_fig8(once):
    result = once(fig8.run)

    prefetch_fetches = [result.average(f"prefetch-{d}-fetches") for d in (2, 4, 8, 16)]
    approx_fetches = [result.average(f"approx-{d}-fetches") for d in (2, 4, 8, 16)]

    # Prefetching sits above 1.0 and grows with degree.
    assert all(value > 1.0 for value in prefetch_fetches)
    assert prefetch_fetches[-1] > prefetch_fetches[0]

    # LVA sits below 1.0 and falls with degree.
    assert all(value < 1.0 for value in approx_fetches)
    assert approx_fetches[-1] < approx_fetches[0]

    # Rough factors: degree-16 prefetching well above 1.3x, degree-16 LVA
    # well below 0.8x — the direction and magnitude class of the paper's
    # +73 % / -39 %.
    assert prefetch_fetches[-1] > 1.3
    assert approx_fetches[-1] < 0.8

    # Both reduce MPKI relative to precise execution on average.
    assert result.average("prefetch-16-mpki") < 1.0
    assert result.average("approx-16-mpki") < 1.0

    print()
    print(result.format_table())
