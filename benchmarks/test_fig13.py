"""Figure 13 benchmark: float mantissa truncation vs fluidanimate MPKI.

Shape checks: with GHB 2, dropping low-order single-precision mantissa
bits before hashing improves approximate value locality, so normalized
MPKI falls as more bits are removed, while fluidanimate's output error
stays low (the paper: around 10 % even at full truncation).
"""

from repro.experiments import fig13


def test_fig13(once):
    result = once(fig13.run)
    mpki = result.series["normalized_mpki"]
    error = result.series["output_error"]

    # Direction: more precision loss, lower MPKI.
    assert mpki["drop-23"] < mpki["drop-11"] <= mpki["drop-0"] + 0.02
    assert mpki["drop-17"] < mpki["drop-0"]

    # Error remains low even with the whole mantissa dropped.
    assert all(value < 0.15 for value in error.values())

    print()
    print(result.format_table())
