"""Table II benchmark: configuration verification (fast sanity anchor)."""

from repro.experiments import table2


def test_table2(once):
    result = once(table2.run)
    values = result.series["value"]
    assert values["cores"] == 4
    assert values["l1_kb"] == 16
    assert values["l2_kb"] == 512
    assert values["memory_latency"] == 160
    assert values["approx_table_entries"] == 512
    assert values["confidence_window"] == 0.1
    assert values["ghb_entries"] == 0
    assert values["lhb_entries"] == 4
    assert values["approximation_degree"] == 0
