"""Figure 10 benchmark: full-system speedup and energy savings.

Shape checks against Section VI-E: average speedup in the high single
digits at degree 0 (paper: 8.5 %) with canneal the biggest winner
(paper: 28.6 %); energy savings grow with approximation degree (paper:
7.2 % at degree 4, 12.6 % at degree 16), while degree 0 saves little or
nothing (every block is still fetched and the approximator adds its own
accesses).
"""

from repro.experiments import fig10


def test_fig10(once):
    result = once(fig10.run)

    speedup0 = result.average("speedup-approx-0")
    assert 0.02 < speedup0 < 0.25  # the paper's 8.5% band

    # canneal wins by the largest margin, as in the paper.
    per_workload = result.series["speedup-approx-0"]
    assert per_workload["canneal"] == max(per_workload.values())
    assert per_workload["canneal"] > 0.15

    # The memory-bound trio improves with degree (Section VI-E).
    for name in ("canneal", "bodytrack", "fluidanimate"):
        assert (
            result.series["speedup-approx-16"][name]
            >= result.series["speedup-approx-0"][name] - 0.02
        ), name

    # Energy savings grow with degree and are solidly positive at 16.
    energy = [result.average(f"energy-approx-{d}") for d in (0, 4, 16)]
    assert energy[2] > energy[1] > energy[0]
    assert energy[2] > 0.08  # paper: 12.6% on average

    print()
    print(result.format_table())
