"""Figure 4 benchmark: LVA vs idealized LVP across GHB sizes.

Shape checks: LVA achieves lower average normalized MPKI than the
idealized LVP at the baseline GHB size; MPKI tends to rise with GHB size
(hashing fragments the index); all normalized values stay in [0, ~1].
"""

from repro.experiments import fig4


def test_fig4(once):
    result = once(fig4.run)

    # LVA beats the idealized predictor at the paper's baseline (GHB 0).
    assert result.average("LVA-GHB-0") < result.average("LVP-GHB-0")

    # MPKI tends to increase with GHB size for LVA (Section VI-A).
    assert result.average("LVA-GHB-0") < result.average("LVA-GHB-4")

    # Idealized LVP is an upper bound, never *increasing* MPKI.
    for ghb in (0, 1, 2, 4):
        for workload, value in result.series[f"LVP-GHB-{ghb}"].items():
            assert value <= 1.001, (ghb, workload)

    print()
    print(result.format_table())
