"""Figure 11 benchmark: L1-miss energy-delay product.

Shape checks: normalized miss EDP is below 1.0 on average at every degree
and improves monotonically with degree — the paper reports 0.58, 0.46 and
0.36 at degrees 0, 4 and 16. Less-approximable applications (ferret) sit
near 1.0 at degree 0.
"""

from repro.experiments import fig11


def test_fig11(once):
    result = once(fig11.run)

    averages = {d: result.average(f"approx-{d}") for d in (0, 2, 4, 8, 16)}

    # EDP improves (falls) as the approximation degree grows.
    assert averages[16] < averages[4] < averages[0]

    # Average reductions in the paper's band: well below precise execution.
    assert averages[0] < 0.85
    assert averages[16] < 0.50

    # ferret barely benefits (the paper's least amenable benchmark).
    assert result.series["approx-0"]["ferret"] > 0.8

    print()
    print(result.format_table())
