#!/usr/bin/env python
"""Reproduce Figure 1: bodytrack output with and without approximation.

The paper opens with two bodytrack output frames — precise execution and
execution under load value approximation — that are nearly indiscernible.
This example runs the tracker both ways through the :mod:`repro.api`
facade, overlays the estimated body positions on the final camera frame,
and writes the two images as portable graymaps (PGM, viewable with any
image tool) plus the pair-wise output error.

Run:  python examples/figure1_bodytrack.py [output_dir]
"""

import math
import sys
from typing import List, Tuple

import numpy as np

from repro import get_workload
from repro.api import Simulation


SEED = 2


def write_pgm(path: str, image: np.ndarray) -> None:
    """Write an 8-bit grayscale image as ASCII PGM."""
    height, width = image.shape
    with open(path, "w") as handle:
        handle.write(f"P2\n{width} {height}\n255\n")
        for row in image:
            handle.write(" ".join(str(int(v)) for v in row) + "\n")


def render_with_track(
    workload, estimates: List[Tuple[float, float]]
) -> np.ndarray:
    """The final frame with the estimated track burned in as white dots."""
    rng = np.random.default_rng(999)  # deterministic backdrop
    final_centre = workload._true_path(workload.params["timesteps"] - 1)
    image = workload._render(rng, final_centre).astype(np.int64)
    height, width = image.shape
    for t, (x, y) in enumerate(estimates):
        radius = 2 if t == len(estimates) - 1 else 1
        cx, cy = int(round(x)), int(round(y))
        for dy in range(-radius, radius + 1):
            for dx in range(-radius, radius + 1):
                px, py = cx + dx, cy + dy
                if 0 <= px < width and 0 <= py < height:
                    image[py, px] = 255
    return image


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    workload = get_workload("bodytrack")

    print("running bodytrack precisely and under load value approximation...")
    result = (
        Simulation.builder()
        .workload("bodytrack")
        .approximator()
        .seed(SEED)
        .compare_precise()
        .run()
    )
    precise, approx = result.precise_output, result.output

    print(
        f"\ncoverage={result.coverage:.1%}  effective MPKI={result.mpki:.2f}  "
        f"output error={result.output_error:.2%}  (paper's Figure 1 shows 7.7%)"
    )

    precise_path = f"{out_dir}/figure1_precise.pgm"
    approx_path = f"{out_dir}/figure1_approximate.pgm"
    write_pgm(precise_path, render_with_track(workload, precise))
    write_pgm(approx_path, render_with_track(workload, approx))
    print(f"wrote {precise_path} and {approx_path}")

    drift = [
        math.hypot(ax - px, ay - py)
        for (px, py), (ax, ay) in zip(precise, approx)
    ]
    print(
        "per-timestep track drift (pixels): "
        + " ".join(f"{d:.1f}" for d in drift)
    )
    print("\nThe two tracks should be nearly indiscernible — that is the point.")


if __name__ == "__main__":
    main()
