#!/usr/bin/env python
"""Domain scenario: energy-aware video encoding (x264-style).

Motion estimation dominates video-encoder memory traffic, and pixels are
the textbook approximable datatype (finite range, strong locality). This
example captures an x264 trace through the :mod:`repro.api` facade,
replays it through the full-system simulator (4 cores, 2x2 mesh, shared
L2) and sweeps the approximation degree — showing the paper's headline
claim that LVA improves performance *and* energy simultaneously by
trading output error.

Run:  python examples/video_encoding_energy.py
"""

from repro.api import Simulation, lva, replay

SEED = 5


def main() -> None:
    print("capturing x264 motion-estimation trace (4 threads)...")
    capture = (
        Simulation.builder()
        .workload("x264")
        .precise()
        .seed(SEED)
        .record_trace()
        .run()
    )
    trace = capture.trace
    print(f"  {len(trace)} loads, {trace.total_instructions} instructions\n")

    baseline = replay(trace)
    print(
        f"precise execution: {baseline.cycles:,.0f} cycles, "
        f"{baseline.energy.total_nj / 1e3:,.1f} uJ dynamic, "
        f"avg miss latency {baseline.average_miss_latency:.1f} cycles\n"
    )

    print(f"{'degree':>6} {'speedup':>9} {'energy saved':>13} "
          f"{'miss EDP':>9} {'PSNR/bitrate error':>19}")
    for degree in (0, 2, 4, 8, 16):
        config = lva(degree=degree)
        approx = replay(trace, approximator=config)

        # Output error is an application property, not a timing one, so
        # it comes from a phase-1 run against the precise baseline.
        error_run = (
            Simulation.builder()
            .workload("x264")
            .approximator(config)
            .seed(SEED)
            .compare_precise()
            .run()
        )

        print(
            f"{degree:>6} {approx.speedup_over(baseline):>8.1%} "
            f"{approx.energy_savings_over(baseline):>12.1%} "
            f"{approx.miss_edp / baseline.miss_edp:>9.2f} "
            f"{error_run.output_error:>18.2%}"
        )

    print(
        "\nHigher degree cancels more block fetches: energy savings climb"
        "\nwhile the encoded output barely moves — pixels average well."
    )


if __name__ == "__main__":
    main()
