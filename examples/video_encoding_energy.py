#!/usr/bin/env python
"""Domain scenario: energy-aware video encoding (x264-style).

Motion estimation dominates video-encoder memory traffic, and pixels are
the textbook approximable datatype (finite range, strong locality). This
example captures an x264 trace, replays it through the full-system
simulator (4 cores, 2x2 mesh, shared L2) and sweeps the approximation
degree — showing the paper's headline claim that LVA improves performance
*and* energy simultaneously by trading output error.

Run:  python examples/video_encoding_energy.py
"""

from repro import (
    ApproximatorConfig,
    FullSystemConfig,
    FullSystemSimulator,
    Mode,
    TraceRecorder,
    TraceSimulator,
    get_workload,
)
from repro.sim.frontend import PreciseMemory

SEED = 5


def main() -> None:
    print("capturing x264 motion-estimation trace (4 threads)...")
    recorder = TraceRecorder()
    sim = TraceSimulator(Mode.PRECISE, recorder=recorder)
    workload = get_workload("x264")
    workload.execute(sim, SEED)
    sim.finish()
    trace = recorder.trace
    print(f"  {len(trace)} loads, {trace.total_instructions} instructions\n")

    baseline = FullSystemSimulator(FullSystemConfig()).run(trace)
    print(
        f"precise execution: {baseline.cycles:,.0f} cycles, "
        f"{baseline.energy.total_nj / 1e3:,.1f} uJ dynamic, "
        f"avg miss latency {baseline.average_miss_latency:.1f} cycles\n"
    )

    # Measure output error once per degree with the phase-1 simulator
    # (error is an application property, not a timing one).
    reference = get_workload("x264").execute(PreciseMemory(), SEED)

    print(f"{'degree':>6} {'speedup':>9} {'energy saved':>13} "
          f"{'miss EDP':>9} {'PSNR/bitrate error':>19}")
    for degree in (0, 2, 4, 8, 16):
        config = ApproximatorConfig(approximation_degree=degree)
        lva = FullSystemSimulator(
            FullSystemConfig(approximate=True, approximator=config)
        ).run(trace)

        error_sim = TraceSimulator(Mode.LVA, approximator_config=config)
        encoded = get_workload("x264").execute(error_sim, SEED)
        error_sim.finish()
        error = get_workload("x264").output_error(reference, encoded)

        print(
            f"{degree:>6} {lva.speedup_over(baseline):>8.1%} "
            f"{lva.energy_savings_over(baseline):>12.1%} "
            f"{lva.miss_edp / baseline.miss_edp:>9.2f} "
            f"{error:>18.2%}"
        )

    print(
        "\nHigher degree cancels more block fetches: energy savings climb"
        "\nwhile the encoded output barely moves — pixels average well."
    )


if __name__ == "__main__":
    main()
