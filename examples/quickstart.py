#!/usr/bin/env python
"""Quickstart: drive the load value approximator by hand.

This example builds the paper's baseline approximator (Table II) through
the :mod:`repro.api` facade, feeds it a stream of load misses whose values
follow a noisy pattern, and shows the three behaviours that distinguish
LVA from classic value prediction:

1. values are *generated* (no validation, no rollback);
2. the relaxed confidence window tolerates near-misses;
3. the approximation degree skips block fetches entirely.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import build_approximator, lva

PC = 0x400  # the (synthetic) instruction address of our load


def stream(approx, values, label: str) -> None:
    """Present each value as a miss; train whenever a fetch is issued."""
    approximated = fetches = 0
    errors = []
    for actual in values:
        decision = approx.on_miss(PC, is_float=True)
        if decision.approximated:
            approximated += 1
            errors.append(abs(decision.value - actual) / abs(actual))
        if decision.fetch:
            fetches += 1
            approx.train(decision.token, actual)
    mean_error = float(np.mean(errors)) if errors else float("nan")
    print(
        f"{label:32s} coverage={approximated / len(values):5.1%} "
        f"fetch-ratio={fetches / len(values):5.1%} "
        f"mean value error={mean_error:6.2%}"
    )


def main() -> None:
    rng = np.random.default_rng(42)
    # A load whose values hover around 100 with ~3% noise — approximate
    # value locality, the paper's bread and butter.
    values = 100.0 * (1.0 + rng.normal(0, 0.03, size=2000))

    print("== Baseline approximator (Table II) ==")
    stream(build_approximator(), values, "degree 0 (fetch every miss)")

    print("\n== Energy-error trade-off: approximation degree ==")
    for degree in (2, 4, 16):
        stream(
            build_approximator(lva(degree=degree)), values, f"degree {degree}"
        )

    print("\n== Performance-error trade-off: confidence window ==")
    noisy = 100.0 * (1.0 + rng.normal(0, 0.15, size=2000))  # 15% noise
    for window in (0.05, 0.10, 0.50):
        stream(
            build_approximator(lva(window=window)), noisy,
            f"window +/-{window:.0%}"
        )
    print(
        "\nWider windows keep approximating noisy data (coverage up), at the"
        "\ncost of each approximation being allowed to be further off."
    )

    # Swapping the whole technique is a registry name away — any entry in
    # repro.predictors (lva, lvp, clp, hybrid) slots into the same pipeline:
    print("\n== Predictor zoo: same workload, different techniques ==")
    from repro.api import Simulation

    for name in ("lva", "lvp", "clp", "hybrid"):
        result = (
            Simulation.builder()
            .workload("swaptions", small=True)
            .predictor(name)
            .compare_precise()
            .run()
        )
        print(result.summary())


if __name__ == "__main__":
    main()
