#!/usr/bin/env python
"""Domain scenario: approximate content-based image search (ferret-style).

The paper's intro motivates LVA with recognition/mining server workloads.
This example runs the ferret workload (feature-vector similarity search)
through the :mod:`repro.api` facade under several approximator
configurations and reports the quality/performance trade-off a service
operator would care about: result-set fidelity vs. effective MPKI and
fetch traffic.

Run:  python examples/approximate_image_search.py
"""

from repro import INFINITE_WINDOW
from repro.api import Simulation, lva

SEED = 3


def evaluate(label: str, config) -> None:
    result = (
        Simulation.builder()
        .workload("ferret", params={"queries": 8})
        .approximator(config)
        .seed(SEED)
        .compare_precise()
        .run()
    )
    print(
        f"{label:28s} effective MPKI={result.mpki:6.3f} "
        f"fetches/KI={result.fetches_per_ki:6.3f} "
        f"coverage={result.coverage:5.1%} "
        f"result-set error={result.output_error:6.1%}"
    )


def main() -> None:
    print("ferret: top-K image search with approximated feature vectors\n")
    evaluate("precise-ish (0% window)", lva(window=0.0))
    evaluate("baseline (10% window)", lva())
    evaluate("relaxed (30% window)", lva(window=0.30))
    evaluate("always approximate", lva(window=INFINITE_WINDOW))
    evaluate(
        "always + degree 8 (low energy)",
        lva(window=INFINITE_WINDOW, degree=8),
    )
    print(
        "\nferret is the paper's least approximable benchmark: feature"
        "\nvectors have no discrete range, so pushing coverage up trades"
        "\nresult-set fidelity directly — and the error metric is"
        "\npessimistic (returned images may still satisfy the query)."
    )


if __name__ == "__main__":
    main()
