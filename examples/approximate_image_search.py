#!/usr/bin/env python
"""Domain scenario: approximate content-based image search (ferret-style).

The paper's intro motivates LVA with recognition/mining server workloads.
This example runs the ferret workload (feature-vector similarity search)
through the phase-1 simulator under several approximator configurations and
reports the quality/performance trade-off a service operator would care
about: result-set fidelity vs. effective MPKI and fetch traffic.

Run:  python examples/approximate_image_search.py
"""

from repro import ApproximatorConfig, INFINITE_WINDOW, Mode, TraceSimulator, get_workload
from repro.sim.frontend import PreciseMemory

SEED = 3


def evaluate(label: str, config: ApproximatorConfig) -> None:
    workload = get_workload("ferret", {"queries": 8})
    # Reference search results on precise memory.
    reference = workload.execute(PreciseMemory(), SEED)

    sim = TraceSimulator(Mode.LVA, approximator_config=config)
    results = get_workload("ferret", {"queries": 8}).execute(sim, SEED)
    stats = sim.finish()
    error = workload.output_error(reference, results)

    print(
        f"{label:28s} effective MPKI={stats.mpki:6.3f} "
        f"fetches/KI={stats.fetches_per_kilo_instruction:6.3f} "
        f"coverage={stats.coverage:5.1%} "
        f"result-set error={error:6.1%}"
    )


def main() -> None:
    print("ferret: top-K image search with approximated feature vectors\n")
    evaluate("precise-ish (0% window)", ApproximatorConfig(confidence_window=0.0))
    evaluate("baseline (10% window)", ApproximatorConfig())
    evaluate("relaxed (30% window)", ApproximatorConfig(confidence_window=0.30))
    evaluate(
        "always approximate",
        ApproximatorConfig(confidence_window=INFINITE_WINDOW),
    )
    evaluate(
        "always + degree 8 (low energy)",
        ApproximatorConfig(
            confidence_window=INFINITE_WINDOW, approximation_degree=8
        ),
    )
    print(
        "\nferret is the paper's least approximable benchmark: feature"
        "\nvectors have no discrete range, so pushing coverage up trades"
        "\nresult-set fidelity directly — and the error metric is"
        "\npessimistic (returned images may still satisfy the query)."
    )


if __name__ == "__main__":
    main()
