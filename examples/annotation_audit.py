#!/usr/bin/env python
"""Audit approximate-data annotations against the Section IV guidelines.

Before trusting an annotation set, run the application once under the
auditing front-end: it profiles every annotated load site and flags the
patterns the paper warns about — near-zero values (divide-by-zero risk),
pointer-like values, boolean flags (control flow), and cold sites.

Run:  python examples/annotation_audit.py
"""

from repro.api import audit
from repro.annotations import AuditingMemory


def audit_paper_benchmarks() -> None:
    print("== auditing the paper's benchmark annotations ==\n")
    for name in ("blackscholes", "canneal", "ferret"):
        report = audit(name, small=True)
        print(f"{name}:")
        print("  " + report.format().replace("\n", "\n  "))
        print()


def audit_a_bad_annotation() -> None:
    print("== what a bad annotation looks like ==\n")
    mem = AuditingMemory()
    data = mem.space.alloc("items", 64)
    index = mem.space.alloc("index", 64)
    for i in range(64):
        mem.store(data.addr(i), float(i))
        # The "index" array holds addresses into `data` — a pointer table.
        mem.store(index.addr(i), data.addr(63 - i))

    pc_ptr = 0x9000
    pc_val = 0x9004
    for i in range(64):
        # MISTAKE: annotating the pointer load as approximate.
        pointer = mem.load_approx(pc_ptr, index.addr(i), is_float=False)
        mem.load_approx(pc_val, pointer)
    print(mem.report().format())
    print(
        "\nThe auditor catches the pointer annotation: approximating it"
        "\nwould make the second load read from the wrong address entirely."
    )


if __name__ == "__main__":
    audit_paper_benchmarks()
    audit_a_bad_annotation()
