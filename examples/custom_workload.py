#!/usr/bin/env python
"""Bring your own workload: plug a custom application into the framework.

The workload contract is small: build input data through the memory
front-end, issue annotated loads with ``load_approx`` (and precise loads
with ``load``), and define the output-error metric your domain cares
about. This example implements a tiny iterative stencil smoother (a
physics-flavoured kernel, per the paper's error-tolerant application
classes) and evaluates it through the :mod:`repro.api` facade — including
the Section IV annotation guidelines (indices stay precise, only field
values are annotated).

Run:  python examples/custom_workload.py
"""

from typing import List

import numpy as np

from repro.api import Simulation, lva
from repro.sim.frontend import MemoryFrontend
from repro.workloads.base import Workload


class StencilSmoother(Workload):
    """Jacobi smoothing of a noisy 1-D field; field reads are approximate."""

    name = "stencil"
    float_data = True
    workload_id = 42

    def default_params(self) -> dict:
        return {"points": 2048, "sweeps": 4, "compute_cost": 6}

    def run(self, mem: MemoryFrontend, rng: np.random.Generator) -> List[float]:
        n = self.params["points"]
        sweeps = self.params["sweeps"]
        cost = self.params["compute_cost"]

        field = np.cumsum(rng.normal(0, 1.0, size=n)) + 100.0
        region = mem.space.alloc("field", n)
        for i in range(n):
            mem.store(region.addr(i), float(field[i]))

        pc_left = self.pcs.site("left")
        pc_right = self.pcs.site("right")

        current = field.copy()
        for _ in range(sweeps):
            smoothed = current.copy()
            for i in range(1, n - 1):
                mem.set_thread(i % self.threads)
                # Neighbour *values* are annotated approximate; the loop
                # index itself is of course precise (Section IV).
                left = mem.load_approx(pc_left, region.addr(i - 1))
                right = mem.load_approx(pc_right, region.addr(i + 1))
                mem.advance(cost)
                smoothed[i] = 0.25 * left + 0.5 * current[i] + 0.25 * right
            current = smoothed
            for i in range(n):
                mem.store(region.addr(i), float(current[i]))
        return [float(v) for v in current]

    def output_error(self, precise: List[float], approx: List[float]) -> float:
        precise_arr = np.asarray(precise)
        approx_arr = np.asarray(approx)
        scale = np.abs(precise_arr).mean() or 1.0
        return float(np.abs(approx_arr - precise_arr).mean() / scale)


def main() -> None:
    print("1-D stencil smoother with approximated neighbour loads\n")
    for label, config in [
        ("baseline (10% window)", lva()),
        ("degree 8", lva(degree=8)),
        ("GHB 2 + mantissa drop 12", lva(ghb=2, mantissa_drop_bits=12)),
    ]:
        result = (
            Simulation.builder()
            .workload(StencilSmoother())
            .approximator(config)
            .compare_precise()
            .run()
        )
        fetch_ratio = result.stats["fetches"] / max(result.stats["raw_misses"], 1)
        print(
            f"{label:28s} MPKI={result.mpki:6.3f} "
            f"coverage={result.coverage:5.1%} "
            f"fetches/miss={fetch_ratio:5.1%} "
            f"field error={result.output_error:7.3%}"
        )

    print(
        "\nSmooth fields approximate extremely well: neighbouring loads"
        "\nare within the confidence window of each other, so coverage is"
        "\nhigh and the smoother's output barely changes."
    )


if __name__ == "__main__":
    main()
