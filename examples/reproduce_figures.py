#!/usr/bin/env python
"""Regenerate the paper's tables and figures programmatically.

:func:`repro.api.run_experiment` runs any table or figure by its runner
name and returns a structured :class:`ExperimentResult`, so you can
post-process the series instead of parsing printed tables. This example
reruns Table I and Figure 6 at reduced scale and highlights the headline
comparisons.

For the full-scale versions, run ``python -m repro.experiments`` (or the
benchmark harness: ``pytest benchmarks/ --benchmark-only``).

Run:  python examples/reproduce_figures.py
"""

from repro.api import run_experiment


def main() -> None:
    print("reproducing Table I (reduced inputs)...\n")
    result = run_experiment("table1", small=True)
    print(result.format_table())

    print("\nreproducing Figure 6 (reduced inputs)...\n")
    sweep = run_experiment("fig6", small=True)
    print(f"{'window':>10} {'avg norm MPKI':>14} {'avg output error':>17}")
    for label in ("0%", "5%", "10%", "20%", "infinite"):
        mpki = sweep.average(f"mpki-{label}")
        error = sweep.average(f"error-{label}")
        print(f"{label:>10} {mpki:>14.3f} {error:>17.4f}")

    print(
        "\nThe performance-error trade-off of relaxed confidence estimation:"
        "\nwider windows approximate more misses (MPKI falls) while output"
        "\nerror creeps up — Section VI-B of the paper."
    )


if __name__ == "__main__":
    main()
