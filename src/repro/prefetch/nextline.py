"""Sequential next-line prefetching (the simplest useful baseline)."""

from __future__ import annotations

from typing import List

from repro.prefetch.base import Prefetcher


class NextLinePrefetcher(Prefetcher):
    """On a miss to block B, prefetch B+1 .. B+degree."""

    def on_miss(self, pc: int, addr: int) -> List[int]:
        del pc
        base = self.block_of(addr)
        candidates = [base + (i + 1) * self.block_bytes for i in range(self.degree)]
        return self._record(candidates)
