"""Prefetcher baselines for the Figure 8 comparison.

The paper compares LVA's approximation degree against a GHB prefetcher
using local delta correlation with next-line prefetching (Nesbit & Smith,
2005), sized at 2048 GHB entries + 2048 index-table entries so its state
budget matches the 512-entry, 4-value-LHB approximator.
"""

from repro.prefetch.base import Prefetcher, PrefetcherStats, block_of_array
from repro.prefetch.ghb import GHBPrefetcher
from repro.prefetch.nextline import NextLinePrefetcher

__all__ = [
    "GHBPrefetcher",
    "NextLinePrefetcher",
    "Prefetcher",
    "PrefetcherStats",
    "block_of_array",
]
