"""Global History Buffer prefetcher (Nesbit & Smith, HPCA 2005).

The GHB is a FIFO of recent miss addresses; an index table maps a key — the
load PC, for *local* delta correlation — to the most recent GHB entry for
that key, and entries link backwards to the previous entry with the same
key. On a miss the per-PC address chain is walked, consecutive deltas are
correlated against the recent history, and the matched delta sequence is
replayed to produce prefetch candidates; when no pattern is found the
prefetcher falls back to next-line. The FIFO naturally forgets stale
history, which is why GHB prefetching beats conventional table prefetchers
(Section VI-D).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.prefetch.base import Prefetcher


class _GHBEntry:
    """One global-history slot: a miss address and its per-key back link."""

    __slots__ = ("addr", "prev")

    def __init__(self, addr: int, prev: Optional[int]) -> None:
        self.addr = addr
        self.prev = prev  # absolute position of the previous same-key entry


class GHBPrefetcher(Prefetcher):
    """GHB PC/DC (local delta correlation) with next-line fallback.

    Sized as in the paper's comparison: 2048 GHB entries and a 2048-entry
    index table, against the approximator's 512 entries x 4 LHB values.
    """

    #: How many trailing deltas form the correlation key.
    CORRELATION_DEPTH = 2
    #: Maximum chain length walked per miss (hardware walk budget).
    MAX_CHAIN = 16

    def __init__(
        self,
        degree: int,
        ghb_entries: int = 2048,
        index_entries: int = 2048,
        block_bytes: int = 64,
    ) -> None:
        super().__init__(degree, block_bytes)
        if ghb_entries < 4:
            raise ConfigurationError("GHB needs at least 4 entries")
        if index_entries < 1:
            raise ConfigurationError("index table needs at least 1 entry")
        self.ghb_entries = ghb_entries
        self.index_entries = index_entries
        self._ghb: List[_GHBEntry] = []
        self._head = 0  # absolute position of the next entry to be written
        self._index: "OrderedDict[int, int]" = OrderedDict()  # key -> abs position

    # ------------------------------------------------------------------ #
    # History maintenance                                                #
    # ------------------------------------------------------------------ #

    def _valid(self, position: Optional[int]) -> bool:
        """Is an absolute GHB position still inside the FIFO window?"""
        return position is not None and self._head - self.ghb_entries <= position < self._head

    def _push(self, key: int, addr: int) -> None:
        prev = self._index.get(key)
        entry = _GHBEntry(addr, prev if self._valid(prev) else None)
        if len(self._ghb) < self.ghb_entries:
            self._ghb.append(entry)
        else:
            self._ghb[self._head % self.ghb_entries] = entry
        if key in self._index:
            self._index.move_to_end(key)
        elif len(self._index) >= self.index_entries:
            self._index.popitem(last=False)
        self._index[key] = self._head
        self._head += 1

    def _chain(self, key: int) -> List[int]:
        """Miss addresses for ``key``, newest first, up to MAX_CHAIN."""
        addrs: List[int] = []
        position = self._index.get(key)
        while self._valid(position) and len(addrs) < self.MAX_CHAIN:
            entry = self._ghb[position % self.ghb_entries]
            addrs.append(entry.addr)
            position = entry.prev
        return addrs

    # ------------------------------------------------------------------ #
    # Prediction                                                         #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _deltas(addrs_newest_first: List[int]) -> List[int]:
        """Deltas between consecutive misses, oldest-to-newest order."""
        ordered = list(reversed(addrs_newest_first))
        return [b - a for a, b in zip(ordered, ordered[1:])]

    def _correlate(self, deltas: List[int]) -> Optional[List[int]]:
        """Find the last earlier occurrence of the trailing delta pair.

        Returns the delta sequence that followed that occurrence, to be
        replayed as the prefetch pattern, or None when no match exists.
        """
        depth = self.CORRELATION_DEPTH
        if len(deltas) <= depth:
            return None
        needle: Tuple[int, ...] = tuple(deltas[-depth:])
        for start in range(len(deltas) - depth - 1, -1, -1):
            if tuple(deltas[start : start + depth]) == needle:
                following = deltas[start + depth :]
                if following:
                    return following
        return None

    def on_miss(self, pc: int, addr: int) -> List[int]:
        """Record the miss, correlate deltas and emit prefetch candidates."""
        block = self.block_of(addr)
        self._push(pc, block)
        chain = self._chain(pc)
        deltas = self._deltas(chain)

        candidates: List[int] = []
        pattern = self._correlate(deltas)
        if pattern is None and len(deltas) >= 2 and deltas[-1] == deltas[-2] != 0:
            # Constant stride detected even without a full pair match.
            pattern = [deltas[-1]]
        if pattern:
            next_addr = block
            while len(candidates) < self.degree:
                progressed = len(candidates)
                for delta in pattern:
                    next_addr += delta
                    if next_addr != block:
                        candidates.append(next_addr)
                    if len(candidates) >= self.degree:
                        break
                if len(candidates) == progressed:
                    # A degenerate pattern (e.g. all-zero deltas from
                    # repeated misses to one invalidated block) makes no
                    # forward progress; stop replaying it.
                    break
        if not candidates:
            # Next-line fallback keeps the prefetcher useful on cold,
            # irregular or degenerate streams, as in the paper's
            # configuration.
            candidates = [
                block + (i + 1) * self.block_bytes for i in range(self.degree)
            ]
        return self._record(candidates)

    def reset(self) -> None:
        """Forget all history and statistics."""
        self._ghb.clear()
        self._index.clear()
        self._head = 0
        self.stats.triggers = 0
        self.stats.issued = 0
