"""Prefetcher interface shared by all implementations."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List


@dataclass(slots=True)
class PrefetcherStats:
    """Prefetch issue counters (usefulness is measured at the cache)."""

    triggers: int = 0
    issued: int = 0


def block_of_array(addrs, block_bytes: int):
    """Columnar :meth:`Prefetcher.block_of`: block-align a whole address
    column (any numpy integer array) in one pass.

    The vector replay pre-aligns the demand-miss address column with this
    before handing it to :meth:`Prefetcher.on_miss` — legal because the
    prefetcher contract below only ever observes addresses through
    ``block_of``, which is idempotent on its own output.
    """
    return addrs & ~(block_bytes - 1)


class Prefetcher(abc.ABC):
    """Observes the miss stream and proposes block addresses to fetch.

    The driving simulator calls :meth:`on_miss` for every demand miss and
    fetches each returned block address (deduplicated against blocks
    already resident). Prefetching applies to *all* data, approximate or
    not, exactly as in the paper's evaluation.

    Implementations must depend on the miss address only through
    :meth:`block_of` — prefetch decisions are block-granular, and the
    vector replay relies on this to feed pre-aligned address columns
    (see :func:`block_of_array`).
    """

    def __init__(self, degree: int, block_bytes: int = 64) -> None:
        self.degree = degree
        self.block_bytes = block_bytes
        self.stats = PrefetcherStats()

    @abc.abstractmethod
    def on_miss(self, pc: int, addr: int) -> List[int]:
        """React to a demand miss; return block addresses to prefetch."""

    def _record(self, candidates: List[int]) -> List[int]:
        """Clamp to the configured degree and update issue counters."""
        self.stats.triggers += 1
        issued = candidates[: self.degree]
        self.stats.issued += len(issued)
        return issued

    def block_of(self, addr: int) -> int:
        """Block-align a byte address."""
        return addr & ~(self.block_bytes - 1)
