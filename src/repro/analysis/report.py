"""Rendering lint results for terminals and CI logs."""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.core import Violation


def render_text(violations: List[Violation]) -> str:
    """One ``path:line:col: RULE message`` line per violation."""
    return "\n".join(violation.render() for violation in violations)


def summary_line(violations: List[Violation], files_checked: int) -> str:
    """``lva-lint: N violation(s) in M file(s) checked`` plus a per-rule tally."""
    if not violations:
        return f"lva-lint: clean — 0 violations in {files_checked} files checked"
    tally: Dict[str, int] = {}
    for violation in violations:
        tally[violation.rule_id] = tally.get(violation.rule_id, 0) + 1
    breakdown = ", ".join(f"{rule}={count}" for rule, count in sorted(tally.items()))
    plural = "s" if len(violations) != 1 else ""
    return (
        f"lva-lint: {len(violations)} violation{plural} in "
        f"{files_checked} files checked ({breakdown})"
    )
