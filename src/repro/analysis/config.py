"""Scope configuration for the lint rules.

The rules do not hard-code the repository layout; they consult an
:class:`AnalysisConfig` that names which dotted packages count as
*simulation* code (where determinism is non-negotiable), which host-side
modules are exempt, which packages carry the per-load hot path, and which
modules execute inside the ``ProcessPoolExecutor``. Tests swap in narrow
configs to exercise rules against in-memory snippets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


def in_packages(module: str, packages: Tuple[str, ...]) -> bool:
    """True when dotted ``module`` is one of ``packages`` or inside one."""
    for package in packages:
        if module == package or module.startswith(package + "."):
            return True
    return False


@dataclass(frozen=True, slots=True)
class AnalysisConfig:
    """Which parts of the tree each rule reasons about.

    Attributes:
        sim_packages: Packages whose results must be bit-deterministic;
            LVA001 and LVA005 apply here.
        host_allowlist: Host-side modules exempt from LVA001 even when
            nested under a simulation package (the sweep engine may use
            wall-clock timeouts and jitter; the simulated world may not).
        hotpath_packages: Packages holding the per-load hot path; LVA003
            requires ``slots=True`` dataclasses here.
        hot_methods: Qualified ``Class.method`` names on the per-load
            path; LVA003 forbids closures/comprehensions inside them.
        worker_modules: Modules whose functions run inside pool workers;
            LVA004 forbids ``global`` mutation in their worker entry
            points (functions matching ``worker_entry_patterns``).
        worker_entry_patterns: Function-name prefixes/suffixes marking
            worker entry points inside ``worker_modules``.
        stats_packages: Packages participating in the LVA005 counter
            cross-check (declared ``*Stats`` fields vs. write sites).
        telemetry_hook_attrs: Instance attributes holding a pre-resolved
            telemetry hook (``None`` when disabled); LVA006 requires
            calls on them inside hot methods to be ``is not None``
            guarded.
        telemetry_modules: Packages whose module-level API LVA006
            forbids calling from hot methods (hook resolution belongs in
            ``__init__``, not on the per-load path).
        kernel_modules: Modules holding the vectorized replay kernels;
            LVA003 additionally requires that their batch-contract
            functions (named per ``kernel_fn_suffixes``) contain no
            per-event Python loops, comprehensions, or event-field
            attribute reads — those functions must stay whole-column
            numpy passes.
        kernel_fn_suffixes: Function-name suffixes marking the batch
            contract inside ``kernel_modules``.
        batch_method_suffixes: Method-name suffixes marking predictor
            batch entry points (``on_miss_batch``/``train_batch``)
            inside hot-path packages; LVA003 forbids event-field reads
            in them — batch methods receive scalar columns, never event
            objects — but their scalar-fallback loops are allowed.
        event_fields: Per-event attribute names whose read inside a
            kernel function or batch method betrays scalar
            (object-at-a-time) access.
        flow_entry_points: Extra call-graph roots (``module:Qual.name``)
            for LVA008's reachability sweep — the public simulation
            entry methods; worker entries and kernel batch functions are
            added automatically.
        flow_exempt_modules: Packages exempt from LVA008 even when
            reachable (telemetry legitimately reads clocks).
        key_function_markers: Substrings of a function name marking it
            as a cache-key constructor (a *sink* for LVA007's taint).
        mmap_providers: Functions (``module:Qual.name``) whose return
            value is treated as memory-mapped, in addition to direct
            ``np.load(..., mmap_mode=...)`` calls.
        envspec_module: The module that must declare every environment
            variable (LVA007 requires reads to resolve to its
            constants).
        env_prefix: Environment variables subject to LVA007.
        env_registry: Override registry for fixture tests:
            ``(name, classification, pinned_by, keyed_via)`` rows. When
            empty, LVA007 imports ``envspec_module`` and uses the real
            declarations.
    """

    sim_packages: Tuple[str, ...] = (
        "repro.sim",
        "repro.mem",
        "repro.noc",
        "repro.fullsystem",
        "repro.prefetch",
        "repro.workloads",
        "repro.faults.memory",
        "repro.predictors",
    )
    host_allowlist: Tuple[str, ...] = (
        "repro.experiments.runner",
        "repro.experiments.sweep",
    )
    hotpath_packages: Tuple[str, ...] = (
        "repro.mem",
        "repro.sim",
        "repro.prefetch",
        "repro.predictors",
    )
    hot_methods: Tuple[str, ...] = (
        "SetAssociativeCache.access",
        "SetAssociativeCache.probe",
        "SetAssociativeCache._probe",
        "SetAssociativeCache.contains",
        "SetAssociativeCache._find",
        "SetAssociativeCache.fill",
        "SetAssociativeCache.invalidate",
        "TraceSimulator._serve_load",
        "TraceSimulator._serve_lva_miss",
        "TraceSimulator._serve_generic_miss",
        "TraceSimulator._serve_store",
        "TraceSimulator._serve_store_streaming",
        "TraceSimulator._tick_value_delay",
        "TraceSimulator._train",
        "TraceSimulator._fetch",
        "TwoLevelHierarchy.load",
        "TwoLevelHierarchy.store",
        "TwoLevelHierarchy._fill_l1",
        "MSHRFile.lookup",
        "MSHRFile.merge",
    )
    worker_modules: Tuple[str, ...] = ("repro.experiments.sweep",)
    worker_entry_patterns: Tuple[str, ...] = ("_run_", "_worker", "_pool_worker")
    stats_packages: Tuple[str, ...] = field(default=())
    telemetry_hook_attrs: Tuple[str, ...] = ("_tel",)
    telemetry_modules: Tuple[str, ...] = ("repro.telemetry",)
    kernel_modules: Tuple[str, ...] = ("repro.sim.kernels",)
    kernel_fn_suffixes: Tuple[str, ...] = ("_kernel", "_span", "_spans")
    batch_method_suffixes: Tuple[str, ...] = ("_batch",)
    event_fields: Tuple[str, ...] = (
        "tid",
        "pc",
        "addr",
        "value",
        "is_float",
        "approximable",
        "gap",
        "is_store",
    )
    flow_entry_points: Tuple[str, ...] = (
        "repro.fullsystem.system:FullSystemSimulator.run",
        "repro.fullsystem.system:FullSystemSimulator.replay_events",
        "repro.sim.tracesim:TraceSimulator.replay",
    )
    flow_exempt_modules: Tuple[str, ...] = ("repro.telemetry",)
    key_function_markers: Tuple[str, ...] = (
        "cache_key",
        "disk_key",
        "point_key",
        "trace_key",
    )
    mmap_providers: Tuple[str, ...] = (
        "repro.experiments.tracestore:TraceStore.get",
    )
    envspec_module: str = "repro.envspec"
    env_prefix: str = "REPRO_"
    env_registry: Tuple[Tuple[str, str, str, str], ...] = field(default=())

    def effective_stats_packages(self) -> Tuple[str, ...]:
        """LVA005 scope: explicit override, else sim packages + the CPU model."""
        if self.stats_packages:
            return self.stats_packages
        return self.sim_packages + ("repro.cpu",)

    def is_sim_module(self, module: str) -> bool:
        """True when LVA001's determinism contract applies to ``module``."""
        if in_packages(module, self.host_allowlist):
            return False
        return in_packages(module, self.sim_packages)

    def is_hotpath_module(self, module: str) -> bool:
        return in_packages(module, self.hotpath_packages)

    def is_worker_module(self, module: str) -> bool:
        return in_packages(module, self.worker_modules)

    def is_stats_module(self, module: str) -> bool:
        return in_packages(module, self.effective_stats_packages())

    def is_kernel_module(self, module: str) -> bool:
        return in_packages(module, self.kernel_modules)

    def is_kernel_function(self, function_name: str) -> bool:
        """True when a function name carries the batch (whole-column)
        contract inside a kernel module."""
        for suffix in self.kernel_fn_suffixes:
            if function_name.endswith(suffix):
                return True
        return False

    def is_batch_method(self, method_name: str) -> bool:
        """True when a method name carries the predictor batch contract
        (scalar columns in, never event objects) in a hot-path module."""
        for suffix in self.batch_method_suffixes:
            if method_name.endswith(suffix):
                return True
        return False

    def is_flow_exempt(self, module: str) -> bool:
        """True when LVA008 must not report inside ``module``."""
        return in_packages(module, self.flow_exempt_modules)

    def is_worker_entry(self, function_name: str) -> bool:
        """True when a function in a worker module is a worker entry point."""
        for pattern in self.worker_entry_patterns:
            if function_name.startswith(pattern) or function_name.endswith(pattern):
                return True
        return False


#: The repository's canonical configuration.
DEFAULT_CONFIG = AnalysisConfig()
