"""Whole-program dataflow support for the flow rules (LVA007–LVA009).

One :class:`FlowAnalysis` — import graph, call graph, env-read sites,
and the taint fixpoint — is built per lint run and shared by every flow
rule through :func:`flow_analysis`, which memoizes it in the project
context's scratch cache.
"""

from __future__ import annotations

from typing import List, Set, Dict

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import ModuleInfo, ProjectContext
from repro.analysis.flow.graphs import EnvRead, ProjectGraph, short_name
from repro.analysis.flow.taint import MMAP, MmapWrite, TaintEngine

_CACHE_KEY = "flow-analysis"


class FlowAnalysis:
    """The shared whole-program analysis: graphs plus taint results."""

    def __init__(self, modules: List[ModuleInfo], config: AnalysisConfig) -> None:
        self.config = config
        self.graph = ProjectGraph(modules)
        self.engine = TaintEngine(self.graph, config)
        self.engine.run()
        self.mmap_writes: List[MmapWrite] = self.engine.mmap_writes
        self.key_sink_hits: Dict[str, Set[str]] = self.engine.key_sink_hits()

    @property
    def env_reads(self) -> List[EnvRead]:
        return self.graph.env_reads


def flow_analysis(ctx: ProjectContext) -> FlowAnalysis:
    """The per-run :class:`FlowAnalysis`, built once and cached."""
    cached = ctx.caches.get(_CACHE_KEY)
    if isinstance(cached, FlowAnalysis):
        return cached
    analysis = FlowAnalysis(list(ctx.modules.values()), ctx.config)
    ctx.caches[_CACHE_KEY] = analysis
    return analysis


__all__ = [
    "MMAP",
    "EnvRead",
    "FlowAnalysis",
    "MmapWrite",
    "ProjectGraph",
    "flow_analysis",
    "short_name",
]
