"""Whole-program structure: import graph, symbol resolution, call graph.

The flow rules (LVA007–LVA009) reason about *paths through the
program*, not single files. This module builds the shared skeleton from
the already-parsed :class:`~repro.analysis.core.ModuleInfo` set:

* an **import graph** — per-module binding tables that are alias-aware
  for ``import x.y as z`` and ``from x import y as z``, following
  re-export chains through package ``__init__`` modules;
* a **function index** — every function and method under a stable
  qualname ``module:Class.method`` / ``module:func`` (module-level code
  is indexed as the pseudo-function ``module:<module>``);
* a **call graph** — approximate, resolved through the binding tables,
  with method resolution on known project classes: ``self.m()``,
  ``self.attr.m()`` via constructor-assigned attribute types,
  annotation-typed locals and parameters, and constructor calls
  (``C()`` edges to ``C.__init__``);
* **environment-read sites** — every ``os.environ``/``os.getenv`` read,
  with the key expression resolved through constants and imports back
  to its defining string literal.

Everything here is a conservative approximation: unresolved calls are
dropped (documented under-approximation of reachability), and type
inference is a single non-flow-sensitive pass. The taint engine
(:mod:`repro.analysis.flow.taint`) compensates by propagating
coarsely through attributes and globals.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis import astutil
from repro.analysis.core import ModuleInfo

#: Marker used as the function name of module-level code.
MODULE_BODY = "<module>"


def pseudo_function(module: str) -> str:
    """The qualname indexing ``module``'s top-level statements."""
    return f"{module}:{MODULE_BODY}"


@dataclass(slots=True)
class Binding:
    """One imported name: a module alias or an imported symbol."""

    kind: str  # "module" | "symbol"
    module: str  # target dotted module
    name: str = ""  # symbol name within module (kind == "symbol")


@dataclass(slots=True)
class FunctionInfo:
    """One function, method, or module body in the project."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]  # owning class name, None for plain functions
    node: ast.AST  # FunctionDef / AsyncFunctionDef / Module
    params: Tuple[str, ...] = ()
    #: Non-flow-sensitive local name -> class qualname, filled during
    #: call-graph construction and reused by the taint engine.
    local_types: Dict[str, str] = field(default_factory=dict)

    def body(self) -> List[ast.stmt]:
        body = getattr(self.node, "body", [])
        return list(body) if isinstance(body, list) else []


@dataclass(slots=True)
class ClassInfo:
    """One project class with its methods and inferred attribute types."""

    qualname: str  # "module:Class"
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)  # name -> func qualname
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> class qualname
    bases: Tuple[str, ...] = ()  # raw dotted base names


@dataclass(slots=True)
class EnvRead:
    """One ``os.environ``/``os.getenv`` read site."""

    func: str  # qualname of the enclosing function (or module body)
    module: str
    node: ast.AST  # the Call / Subscript performing the read
    var: Optional[str]  # resolved variable name, None when dynamic
    source: str  # "literal" | "constant" | "dynamic"
    declared_in: Optional[str]  # module whose literal ultimately defines it


class ProjectGraph:
    """The shared whole-program skeleton for the flow rules."""

    def __init__(self, modules: List[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {m.module: m for m in modules}
        self.bindings: Dict[str, Dict[str, Binding]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module -> name -> func/class qualname defined at module level.
        self._module_funcs: Dict[str, Dict[str, str]] = {}
        self._module_classes: Dict[str, Dict[str, str]] = {}
        #: module-level constants: (module, name) -> RHS expression.
        self._consts: Dict[Tuple[str, str], ast.expr] = {}
        #: caller qualname -> callee qualnames.
        self.call_edges: Dict[str, Set[str]] = {}
        #: (caller qualname, id(call node)) -> callee qualname.
        self._call_resolution: Dict[Tuple[str, int], str] = {}
        #: project-wide import edges (module -> imported project modules).
        self.import_edges: Dict[str, Set[str]] = {}
        self.env_reads: List[EnvRead] = []
        #: module -> ids of nodes inside top-level defs/classes (so the
        #: module pseudo-function can skip them in O(1)).
        self._toplevel_owned: Dict[str, Set[int]] = {}
        #: Memo tables — the AST is immutable for the graph's lifetime.
        self._symbol_memo: Dict[Tuple[str, str], Optional[Tuple[str, str]]] = {}
        self._dotted_memo: Dict[Tuple[str, str], Optional[Tuple[str, str]]] = {}
        self._const_memo: Dict[Tuple[str, str], Optional[Tuple[str, str]]] = {}
        self._expr_class_memo: Dict[Tuple[str, int], Optional[str]] = {}

        for info in modules:
            self._index_module(info)
        for info in modules:
            self._infer_attr_types(info)
        for func in list(self.functions.values()):
            self._build_calls(func)
        for func in list(self.functions.values()):
            self._scan_env_reads(func)

    # ----------------------------------------------------------------- #
    # Indexing                                                          #
    # ----------------------------------------------------------------- #

    def _index_module(self, info: ModuleInfo) -> None:
        module = info.module
        self.bindings[module] = {}
        self._module_funcs[module] = {}
        self._module_classes[module] = {}
        self.import_edges[module] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.bindings[module][local] = Binding("module", target)
                    self._note_import(module, alias.name)
            elif isinstance(node, ast.ImportFrom):
                target = self._from_target(module, node)
                if target is None:
                    continue
                self._note_import(module, target)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[module][local] = Binding(
                        "symbol", target, alias.name
                    )
        body_fn = FunctionInfo(
            qualname=pseudo_function(module),
            module=module,
            name=MODULE_BODY,
            cls=None,
            node=info.tree,
        )
        self.functions[body_fn.qualname] = body_fn
        owned: Set[int] = set()
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                for child in ast.walk(stmt):
                    owned.add(id(child))
        self._toplevel_owned[module] = owned
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, None, stmt)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._consts[(module, target.id)] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    self._consts[(module, stmt.target.id)] = stmt.value

    def _from_target(self, module: str, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = module.split(".")
        # ``from . import x`` in a package __init__ has one fewer hop:
        # the module name *is* the package. Approximate with the common
        # case (named modules), which this repository uses exclusively.
        if node.level > len(parts):
            return None
        base = parts[: len(parts) - node.level]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    def _note_import(self, module: str, target: str) -> None:
        # Record project-internal import edges at every package depth so
        # the incremental cache can compute dependency cones.
        parts = target.split(".")
        for depth in range(len(parts), 0, -1):
            candidate = ".".join(parts[:depth])
            if candidate in self.modules and candidate != module:
                self.import_edges[module].add(candidate)
                break

    def _index_function(
        self, module: str, cls: Optional[str], node: ast.AST
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        name = f"{cls}.{node.name}" if cls else node.name
        args = node.args
        params = tuple(
            a.arg
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
        )
        fn = FunctionInfo(
            qualname=f"{module}:{name}",
            module=module,
            name=node.name,
            cls=cls,
            node=node,
            params=params,
        )
        self.functions[fn.qualname] = fn
        if cls is None:
            self._module_funcs[module][node.name] = fn.qualname
        return None

    def _index_class(self, module: str, node: ast.ClassDef) -> None:
        qualname = f"{module}:{node.name}"
        bases: List[str] = []
        for base in node.bases:
            dotted = astutil.dotted_name(base)
            if dotted is not None:
                bases.append(dotted)
        cls = ClassInfo(
            qualname=qualname,
            module=module,
            name=node.name,
            node=node,
            bases=tuple(bases),
        )
        self.classes[qualname] = cls
        self._module_classes[module][node.name] = qualname
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, node.name, stmt)
                cls.methods[stmt.name] = f"{module}:{node.name}.{stmt.name}"

    # ----------------------------------------------------------------- #
    # Symbol resolution                                                 #
    # ----------------------------------------------------------------- #

    def resolve_symbol(
        self, module: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[Tuple[str, str]]:
        """Resolve ``name`` in ``module`` to ``(kind, payload)``.

        Kinds: ``("func", qualname)``, ``("class", qualname)``,
        ``("module", dotted)``, ``("const", "module:name")``. Follows
        import chains (re-exports) with a cycle guard.
        """
        if _seen is None and (module, name) in self._symbol_memo:
            return self._symbol_memo[(module, name)]
        seen = _seen if _seen is not None else set()
        if (module, name) in seen:
            return None
        seen.add((module, name))
        result = self._resolve_symbol_inner(module, name, seen)
        if _seen is None:
            self._symbol_memo[(module, name)] = result
        return result

    def _resolve_symbol_inner(
        self, module: str, name: str, seen: Set[Tuple[str, str]]
    ) -> Optional[Tuple[str, str]]:
        funcs = self._module_funcs.get(module, {})
        if name in funcs:
            return ("func", funcs[name])
        classes = self._module_classes.get(module, {})
        if name in classes:
            return ("class", classes[name])
        binding = self.bindings.get(module, {}).get(name)
        if binding is not None:
            if binding.kind == "module":
                return ("module", binding.module)
            if binding.module in self.modules:
                resolved = self.resolve_symbol(binding.module, binding.name, seen)
                if resolved is not None:
                    return resolved
                if (binding.module, binding.name) in self._consts:
                    return ("const", f"{binding.module}:{binding.name}")
                # ``from pkg import submodule`` binds the submodule even
                # when pkg's __init__ carries no matching name.
                dotted = f"{binding.module}.{binding.name}"
                if dotted in self.modules:
                    return ("module", dotted)
                return None
            # A submodule import spelled ``from pkg import mod``.
            dotted = f"{binding.module}.{binding.name}"
            if dotted in self.modules:
                return ("module", dotted)
            return None
        if (module, name) in self._consts:
            return ("const", f"{module}:{name}")
        return None

    def resolve_dotted(self, module: str, dotted: str) -> Optional[Tuple[str, str]]:
        """Resolve ``a.b.c`` starting from ``module``'s namespace."""
        memo_key = (module, dotted)
        if memo_key in self._dotted_memo:
            return self._dotted_memo[memo_key]
        result = self._resolve_dotted_inner(module, dotted)
        self._dotted_memo[memo_key] = result
        return result

    def _resolve_dotted_inner(
        self, module: str, dotted: str
    ) -> Optional[Tuple[str, str]]:
        parts = dotted.split(".")
        resolved = self.resolve_symbol(module, parts[0])
        for part in parts[1:]:
            if resolved is None:
                return None
            kind, payload = resolved
            if kind == "module":
                submodule = f"{payload}.{part}"
                if submodule in self.modules:
                    resolved = ("module", submodule)
                else:
                    resolved = self.resolve_symbol(payload, part)
            elif kind == "class":
                method = self.method_on(payload, part)
                resolved = ("func", method) if method is not None else None
            else:
                return None
        return resolved

    def method_on(self, class_qualname: str, name: str) -> Optional[str]:
        """Resolve a method through the (approximate) base-class chain."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            for base in cls.bases:
                resolved = self.resolve_dotted(cls.module, base)
                if resolved is not None and resolved[0] == "class":
                    stack.append(resolved[1])
        return None

    def resolve_string_constant(
        self, module: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[Tuple[str, str]]:
        """Trace a name to its defining string literal.

        Returns ``(value, defining_module)`` — following assignment
        aliases (``A = B``), imports, and registry-declaration calls
        whose first argument is the literal (``NAME = _declare("X", …)``).
        """
        if _seen is None and (module, name) in self._const_memo:
            return self._const_memo[(module, name)]
        seen = _seen if _seen is not None else set()
        if (module, name) in seen:
            return None
        seen.add((module, name))
        result = self._resolve_string_constant_inner(module, name, seen)
        if _seen is None:
            self._const_memo[(module, name)] = result
        return result

    def _resolve_string_constant_inner(
        self, module: str, name: str, seen: Set[Tuple[str, str]]
    ) -> Optional[Tuple[str, str]]:
        expr = self._consts.get((module, name))
        if expr is None:
            binding = self.bindings.get(module, {}).get(name)
            if binding is not None and binding.kind == "symbol":
                return self.resolve_string_constant(binding.module, binding.name, seen)
            return None
        return self._literal_of(module, expr, seen)

    def _literal_of(
        self, module: str, expr: ast.expr, seen: Set[Tuple[str, str]]
    ) -> Optional[Tuple[str, str]]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return (expr.value, module)
        if isinstance(expr, ast.Name):
            return self.resolve_string_constant(module, expr.id, seen)
        if isinstance(expr, ast.Attribute):
            dotted = astutil.dotted_name(expr)
            if dotted is None:
                return None
            resolved = self.resolve_dotted(module, ".".join(dotted.split(".")[:-1]))
            if resolved is not None and resolved[0] == "module":
                return self.resolve_string_constant(
                    resolved[1], dotted.split(".")[-1], seen
                )
            return None
        if isinstance(expr, ast.Call) and expr.args:
            first = expr.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                return (first.value, module)
        return None

    # ----------------------------------------------------------------- #
    # Types                                                             #
    # ----------------------------------------------------------------- #

    def _class_from_annotation(
        self, module: str, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        base = astutil.annotation_base(annotation)
        if base is None:
            return None
        resolved = self.resolve_symbol(module, base)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None

    def _class_from_value(
        self, module: str, value: ast.expr, local_types: Dict[str, str]
    ) -> Optional[str]:
        """The class an expression evaluates to, when statically known."""
        if isinstance(value, ast.Call):
            dotted = astutil.dotted_name(value.func)
            if dotted is not None:
                resolved = self.resolve_dotted(module, dotted)
                if resolved is not None:
                    if resolved[0] == "class":
                        return resolved[1]
                    if resolved[0] == "func":
                        fn = self.functions.get(resolved[1])
                        node = fn.node if fn is not None else None
                        returns = getattr(node, "returns", None)
                        if fn is not None and returns is not None:
                            return self._class_from_annotation(fn.module, returns)
            return None
        if isinstance(value, ast.Name):
            return local_types.get(value.id)
        if isinstance(value, ast.Attribute):
            owner = self.expr_class(None, value.value, local_types, module)
            if owner is not None:
                cls = self.classes.get(owner)
                if cls is not None:
                    return cls.attr_types.get(value.attr)
        return None

    def _infer_attr_types(self, info: ModuleInfo) -> None:
        for qualname, cls in self.classes.items():
            if cls.module != info.module:
                continue
            # Dataclass-style annotated fields typed as project classes.
            for attr, (_, base) in astutil.class_fields(cls.node).items():
                if base is None:
                    continue
                resolved = self.resolve_symbol(cls.module, base)
                if resolved is not None and resolved[0] == "class":
                    cls.attr_types[attr] = resolved[1]
            # ``self.x = ClassName(...)`` anywhere in the class body.
            for node in ast.walk(cls.node):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign):
                    targets, value = [node.target], node.value
                    annotated = self._class_from_annotation(cls.module, node.annotation)
                    if (
                        annotated is not None
                        and isinstance(node.target, ast.Attribute)
                        and isinstance(node.target.value, ast.Name)
                        and node.target.value.id == "self"
                    ):
                        cls.attr_types.setdefault(node.target.attr, annotated)
                if value is None:
                    continue
                inferred = self._class_from_value(cls.module, value, {})
                if inferred is None:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.attr_types.setdefault(target.attr, inferred)

    def expr_class(
        self,
        func: Optional[FunctionInfo],
        expr: ast.expr,
        local_types: Optional[Dict[str, str]] = None,
        module: Optional[str] = None,
    ) -> Optional[str]:
        """The class qualname an expression's value belongs to, if known."""
        memo_key = (func.qualname if func is not None else "", id(expr))
        if local_types is None and memo_key in self._expr_class_memo:
            return self._expr_class_memo[memo_key]
        result = self._expr_class_inner(func, expr, local_types, module)
        if local_types is None:
            self._expr_class_memo[memo_key] = result
        return result

    def _expr_class_inner(
        self,
        func: Optional[FunctionInfo],
        expr: ast.expr,
        local_types: Optional[Dict[str, str]] = None,
        module: Optional[str] = None,
    ) -> Optional[str]:
        mod = module if module is not None else (func.module if func else "")
        locals_ = (
            local_types
            if local_types is not None
            else (func.local_types if func else {})
        )
        if isinstance(expr, ast.Name):
            if expr.id == "self" and func is not None and func.cls is not None:
                return f"{func.module}:{func.cls}"
            if expr.id in locals_:
                return locals_[expr.id]
            resolved = self.resolve_symbol(mod, expr.id)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            return None
        if isinstance(expr, ast.Attribute):
            owner = self.expr_class(func, expr.value, locals_, mod)
            if owner is not None:
                cls = self.classes.get(owner)
                if cls is not None:
                    return cls.attr_types.get(expr.attr)
            return None
        if isinstance(expr, ast.Call):
            return self._class_from_value(mod, expr, locals_)
        return None

    def _infer_local_types(self, func: FunctionInfo) -> None:
        node = func.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        types = func.local_types
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            inferred = self._class_from_annotation(func.module, arg.annotation)
            if inferred is not None:
                types[arg.arg] = inferred
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                inferred = self._class_from_annotation(func.module, stmt.annotation)
                if inferred is not None:
                    types[stmt.target.id] = inferred
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self._class_from_value(func.module, stmt.value, types)
                    if inferred is not None:
                        types[target.id] = inferred

    # ----------------------------------------------------------------- #
    # Call graph                                                        #
    # ----------------------------------------------------------------- #

    def _build_calls(self, func: FunctionInfo) -> None:
        self._infer_local_types(func)
        edges = self.call_edges.setdefault(func.qualname, set())
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            if self._owning_function(func, node):
                callee = self.resolve_call(func, node)
                if callee is not None:
                    edges.add(callee)
                    self._call_resolution[(func.qualname, id(node))] = callee

    def _owning_function(self, func: FunctionInfo, node: ast.AST) -> bool:
        # Module bodies own only statements outside any top-level def or
        # class; those subtrees belong to their own FunctionInfos (for
        # true closures, to the enclosing function — the useful
        # approximation for reachability).
        if isinstance(func.node, ast.Module):
            return id(node) not in self._toplevel_owned.get(func.module, set())
        return True

    def resolve_call(self, func: FunctionInfo, node: ast.Call) -> Optional[str]:
        """The callee qualname of one call, when statically resolvable."""
        callee = node.func
        if isinstance(callee, ast.Name):
            resolved = self.resolve_symbol(func.module, callee.id)
            if resolved is None:
                return None
            if resolved[0] == "func":
                return resolved[1]
            if resolved[0] == "class":
                init = self.method_on(resolved[1], "__init__")
                return init
            return None
        if isinstance(callee, ast.Attribute):
            # Try a fully-dotted resolution first (module.attr chains).
            dotted = astutil.dotted_name(callee)
            if dotted is not None:
                resolved = self.resolve_dotted(func.module, dotted)
                if resolved is not None:
                    if resolved[0] == "func":
                        return resolved[1]
                    if resolved[0] == "class":
                        return self.method_on(resolved[1], "__init__")
            # Method resolution on the receiver's class, when known.
            owner = self.expr_class(func, callee.value)
            if owner is not None:
                return self.method_on(owner, callee.attr)
        return None

    def callee_at(self, func_qualname: str, node: ast.AST) -> Optional[str]:
        """The resolved callee of a call node seen during construction."""
        return self._call_resolution.get((func_qualname, id(node)))

    # ----------------------------------------------------------------- #
    # Reachability                                                      #
    # ----------------------------------------------------------------- #

    def reachable_from(
        self, entries: List[str]
    ) -> Tuple[Set[str], Dict[str, str]]:
        """BFS over the call graph: reachable functions + parent links."""
        seen: Set[str] = set()
        parents: Dict[str, str] = {}
        queue: List[str] = []
        for entry in entries:
            if entry in self.functions and entry not in seen:
                seen.add(entry)
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.call_edges.get(current, ())):
                if callee not in seen and callee in self.functions:
                    seen.add(callee)
                    parents[callee] = current
                    queue.append(callee)
        return seen, parents

    def call_chain(self, parents: Dict[str, str], target: str, limit: int = 5) -> str:
        """Render ``entry -> … -> target`` from BFS parent links."""
        chain: List[str] = [target]
        current = target
        while current in parents and len(chain) < limit:
            current = parents[current]
            chain.append(current)
        return " -> ".join(short_name(q) for q in reversed(chain))

    # ----------------------------------------------------------------- #
    # Environment reads                                                 #
    # ----------------------------------------------------------------- #

    def _scan_env_reads(self, func: FunctionInfo) -> None:
        for node in ast.walk(func.node):
            if isinstance(func.node, ast.Module) and not self._owning_function(
                func, node
            ):
                continue
            key: Optional[ast.expr] = None
            if isinstance(node, ast.Call):
                key = self._env_call_key(func, node)
            elif isinstance(node, ast.Subscript) and not isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                if self._is_environ(func, node.value):
                    key = node.slice
            if key is None:
                continue
            var, source, declared_in = self._resolve_env_key(func.module, key)
            self.env_reads.append(
                EnvRead(
                    func=func.qualname,
                    module=func.module,
                    node=node,
                    var=var,
                    source=source,
                    declared_in=declared_in,
                )
            )

    def _is_environ(self, func: FunctionInfo, expr: ast.expr) -> bool:
        dotted = astutil.dotted_name(expr)
        if dotted is None:
            return False
        if dotted == "os.environ":
            binding = self.bindings.get(func.module, {}).get("os")
            return binding is None or binding.module == "os"
        binding = self.bindings.get(func.module, {}).get(dotted.split(".")[0])
        if binding is not None and binding.kind == "symbol":
            return binding.module == "os" and binding.name == "environ"
        if binding is not None and binding.kind == "module":
            return binding.module == "os" and dotted.endswith(".environ")
        return False

    def _env_call_key(
        self, func: FunctionInfo, node: ast.Call
    ) -> Optional[ast.expr]:
        callee = node.func
        if not node.args:
            return None
        if isinstance(callee, ast.Attribute):
            if callee.attr == "get" and self._is_environ(func, callee.value):
                return node.args[0]
            if callee.attr == "getenv":
                dotted = astutil.dotted_name(callee.value)
                if dotted == "os":
                    return node.args[0]
        elif isinstance(callee, ast.Name):
            binding = self.bindings.get(func.module, {}).get(callee.id)
            if (
                binding is not None
                and binding.kind == "symbol"
                and binding.module == "os"
                and binding.name == "getenv"
            ):
                return node.args[0]
        return None

    def _resolve_env_key(
        self, module: str, key: ast.expr
    ) -> Tuple[Optional[str], str, Optional[str]]:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            return (key.value, "literal", module)
        if isinstance(key, ast.Name):
            resolved = self.resolve_string_constant(module, key.id)
            if resolved is not None:
                return (resolved[0], "constant", resolved[1])
            if self._is_external_name(module, key.id):
                return (None, "external", None)
            return (None, "dynamic", None)
        if isinstance(key, ast.Attribute):
            dotted = astutil.dotted_name(key)
            if dotted is not None:
                prefix, _, last = dotted.rpartition(".")
                owner = self.resolve_dotted(module, prefix)
                if owner is not None and owner[0] == "module":
                    resolved = self.resolve_string_constant(owner[1], last)
                    if resolved is not None:
                        return (resolved[0], "constant", resolved[1])
                    if owner[1] not in self.modules:
                        return (None, "external", None)
                if owner is None and self._is_external_name(
                    module, dotted.split(".")[0]
                ):
                    return (None, "external", None)
            return (None, "dynamic", None)
        return (None, "dynamic", None)

    def _is_external_name(self, module: str, name: str) -> bool:
        """True when ``name`` is imported from outside the analyzed set.

        A key read through such a name is a *constant the lint cannot
        see* (e.g. a test importing ``diskcache.CACHE_DIR_ENV`` while
        only ``tests/`` is being linted), not a dynamically computed
        key; whole-tree runs resolve it properly.
        """
        binding = self.bindings.get(module, {}).get(name)
        return binding is not None and binding.module not in self.modules


def short_name(qualname: str) -> str:
    """``module:Class.method`` -> ``module.Class.method`` for messages."""
    return qualname.replace(":", ".").replace("." + MODULE_BODY, "")
