"""Interprocedural taint propagation over the project call graph.

Two label families flow through a shared worklist fixpoint:

* ``("env", VAR)`` — values influenced by reading environment variable
  ``VAR``. Environment labels propagate *optimistically through
  everything* (arithmetic, string formatting, unresolved calls): an
  ``int(os.environ.get(...))`` is still environment-influenced. LVA007
  uses them to prove that keyed variables reach a cache-key function and
  that neutral ones never do.

* ``("mmap", "")`` — arrays backed by a read-only memory map
  (``np.load(..., mmap_mode="r")`` or a configured provider such as
  ``TraceStore.get``). Mmap labels propagate only through
  *view-producing* constructs — names, attributes, subscripts,
  containers, and known view methods — and deliberately **not** through
  arithmetic or unresolved calls, which produce fresh arrays. LVA009
  uses them to flag in-place stores into mapped columns.

State (parameter labels, return labels, attribute labels keyed by owning
class, module globals) only ever grows, so iterating passes over every
function until nothing changes is a terminating fixpoint. A final
*report* pass re-walks each function with the stable state and collects
the mmap-write violations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis import astutil
from repro.analysis.config import AnalysisConfig
from repro.analysis.flow.graphs import EnvRead, FunctionInfo, ProjectGraph

Label = Tuple[str, str]

#: The single mmap label (no per-origin distinction needed).
MMAP: Label = ("mmap", "")

#: ndarray methods that mutate the receiver in place.
_MUTATORS = frozenset(
    {"fill", "resize", "sort", "put", "itemset", "partition", "byteswap", "setflags"}
)

#: numpy module-level functions whose first argument is written to.
_NP_WRITERS = frozenset({"copyto", "place", "putmask", "put_along_axis"})

#: ndarray methods returning views of the receiver.
_VIEW_METHODS = frozenset(
    {"reshape", "transpose", "swapaxes", "view", "squeeze", "astype_view"}
)

_MAX_PASSES = 50


def env_only(labels: Set[Label]) -> Set[Label]:
    return {label for label in labels if label[0] == "env"}


@dataclass(slots=True)
class MmapWrite:
    """One in-place write into a memory-mapped array."""

    func: str
    module: str
    node: ast.AST
    detail: str


@dataclass(slots=True)
class _State:
    """The monotone facts; every set only grows."""

    params: Dict[str, Dict[str, Set[Label]]] = field(default_factory=dict)
    #: Labels passed to a function outside any named parameter
    #: (``*args`` / ``**kwargs`` overflow).
    extras: Dict[str, Set[Label]] = field(default_factory=dict)
    rets: Dict[str, Set[Label]] = field(default_factory=dict)
    #: (module, name) -> labels of a module-level binding.
    globals: Dict[Tuple[str, str], Set[Label]] = field(default_factory=dict)
    #: (class qualname or "?", attr) -> labels stored on instances.
    attrs: Dict[Tuple[str, str], Set[Label]] = field(default_factory=dict)
    #: qualname -> every label observed while evaluating the function.
    uses: Dict[str, Set[Label]] = field(default_factory=dict)


class TaintEngine:
    """Runs the fixpoint and answers the flow rules' queries."""

    def __init__(self, graph: ProjectGraph, config: AnalysisConfig) -> None:
        self.graph = graph
        self.config = config
        self.state = _State()
        self.mmap_writes: List[MmapWrite] = []
        self._changed = False
        self._env_read_at: Dict[int, EnvRead] = {
            id(read.node): read for read in graph.env_reads
        }
        self._providers = frozenset(config.mmap_providers)
        for qualname, fn in graph.functions.items():
            self.state.params[qualname] = {p: set() for p in fn.params}
            self.state.extras[qualname] = set()
            self.state.rets[qualname] = set()
            self.state.uses[qualname] = set()

    # ----------------------------------------------------------------- #

    def run(self) -> None:
        for _ in range(_MAX_PASSES):
            self._changed = False
            for qualname in sorted(self.graph.functions):
                _Pass(self, self.graph.functions[qualname], report=False).run()
            if not self._changed:
                break
        self.mmap_writes = []
        for qualname in sorted(self.graph.functions):
            _Pass(self, self.graph.functions[qualname], report=True).run()

    def merge(self, target: Set[Label], labels: Set[Label]) -> None:
        before = len(target)
        target |= labels
        if len(target) != before:
            self._changed = True

    # ----------------------------------------------------------------- #
    # Queries                                                           #
    # ----------------------------------------------------------------- #

    def is_key_function(self, fn: FunctionInfo) -> bool:
        return any(marker in fn.name for marker in self.config.key_function_markers)

    def function_labels(self, qualname: str) -> Set[Label]:
        """Everything that reaches or is observed inside one function."""
        labels: Set[Label] = set()
        for param_labels in self.state.params.get(qualname, {}).values():
            labels |= param_labels
        labels |= self.state.extras.get(qualname, set())
        labels |= self.state.uses.get(qualname, set())
        return labels

    def key_sink_hits(self) -> Dict[str, Set[str]]:
        """Env var -> key functions its influence reaches."""
        hits: Dict[str, Set[str]] = {}
        for qualname, fn in self.graph.functions.items():
            if not self.is_key_function(fn):
                continue
            for kind, var in self.function_labels(qualname):
                if kind == "env":
                    hits.setdefault(var, set()).add(qualname)
        return hits


class _Pass:
    """One abstract-interpretation sweep over one function body."""

    def __init__(self, engine: TaintEngine, func: FunctionInfo, report: bool) -> None:
        self.engine = engine
        self.graph = engine.graph
        self.state = engine.state
        self.func = func
        self.report = report
        self.locals: Dict[str, Set[Label]] = {}
        for param, labels in self.state.params.get(func.qualname, {}).items():
            self.locals[param] = set(labels)
        self.is_module_body = isinstance(func.node, ast.Module)

    def run(self) -> None:
        if self.is_module_body:
            stmts = [
                stmt
                for stmt in self.func.body()
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
        else:
            stmts = self.func.body()
        for stmt in stmts:
            self.exec_stmt(stmt)

    # ----------------------------------------------------------------- #
    # Statements                                                        #
    # ----------------------------------------------------------------- #

    def exec_body(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Closures share the enclosing function's abstract frame.
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.ClassDef):
            pass
        elif isinstance(stmt, ast.Assign):
            labels = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, labels)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            target_labels = self.eval(stmt.target)
            labels = self.eval(stmt.value) | target_labels
            if self.report:
                if isinstance(stmt.target, ast.Subscript) and MMAP in self.eval(
                    stmt.target.value
                ):
                    self._mmap_write(
                        stmt, "augmented store into a memory-mapped array"
                    )
                elif MMAP in target_labels:
                    self._mmap_write(
                        stmt,
                        "augmented assignment mutates a memory-mapped array "
                        "in place",
                    )
            if isinstance(stmt.target, ast.Subscript):
                # Already reported above when mapped; flow the labels to
                # the container without re-entering the reporting path.
                self.assign(stmt.target.value, labels)
            else:
                self.assign(stmt.target, labels)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.engine.merge(
                    self.state.rets[self.func.qualname], self.eval(stmt.value)
                )
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.assign(stmt.target, self.eval(stmt.iter))
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, labels)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif stmt.__class__.__name__ == "TryStar":
            self.exec_body(stmt.body)  # type: ignore[attr-defined]
            for handler in stmt.handlers:  # type: ignore[attr-defined]
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)  # type: ignore[attr-defined]
            self.exec_body(stmt.finalbody)  # type: ignore[attr-defined]
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject)
            for case in stmt.cases:
                if case.guard is not None:
                    self.eval(case.guard)
                self.exec_body(case.body)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
            if stmt.msg is not None:
                self.eval(stmt.msg)
        # Import/Global/Nonlocal/Pass/Break/Continue/Delete carry no labels.

    # ----------------------------------------------------------------- #
    # Assignment targets                                                #
    # ----------------------------------------------------------------- #

    def assign(self, target: ast.expr, labels: Set[Label]) -> None:
        if isinstance(target, ast.Name):
            self.locals.setdefault(target.id, set()).update(labels)
            if self.is_module_body:
                key = (self.func.module, target.id)
                self.engine.merge(self.state.globals.setdefault(key, set()), labels)
        elif isinstance(target, ast.Attribute):
            owner = self.graph.expr_class(self.func, target.value)
            key = (owner if owner is not None else "?", target.attr)
            self.engine.merge(self.state.attrs.setdefault(key, set()), labels)
        elif isinstance(target, ast.Subscript):
            base_labels = self.eval(target.value)
            if self.report and MMAP in base_labels:
                self._mmap_write(target, "store into a memory-mapped array")
            # The container absorbs its elements' labels.
            self.assign(target.value, labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.assign(element, labels)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, labels)

    # ----------------------------------------------------------------- #
    # Expressions                                                       #
    # ----------------------------------------------------------------- #

    def eval(self, node: ast.expr) -> Set[Label]:
        labels = self._eval_inner(node)
        if labels:
            self.engine.merge(self.state.uses[self.func.qualname], labels)
        return labels

    def _eval_inner(self, node: ast.expr) -> Set[Label]:
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Name):
            return self._eval_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self.eval(node.value) | self.eval(node.slice)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return env_only(self.eval(node.left) | self.eval(node.right))
        if isinstance(node, ast.UnaryOp):
            return env_only(self.eval(node.operand))
        if isinstance(node, ast.BoolOp):
            # ``a or b`` evaluates to one operand: views survive.
            labels: Set[Label] = set()
            for value in node.values:
                labels |= self.eval(value)
            return labels
        if isinstance(node, ast.Compare):
            out = self.eval(node.left)
            for comparator in node.comparators:
                out |= self.eval(comparator)
            return env_only(out)
        if isinstance(node, ast.IfExp):
            env = env_only(self.eval(node.test))
            return env | self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            labels = set()
            for element in node.elts:
                labels |= self.eval(element)
            return labels
        if isinstance(node, ast.Dict):
            labels = set()
            for key in node.keys:
                if key is not None:
                    labels |= env_only(self.eval(key))
            for value in node.values:
                labels |= self.eval(value)
            return labels
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            labels = self.eval(node.value)
            self.assign(node.target, labels)
            return labels
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._bind_comprehension(node.generators)
            return self.eval(node.elt)
        if isinstance(node, ast.DictComp):
            self._bind_comprehension(node.generators)
            return env_only(self.eval(node.key)) | self.eval(node.value)
        if isinstance(node, ast.Lambda):
            return env_only(self.eval(node.body))
        if isinstance(node, ast.JoinedStr):
            labels = set()
            for value in node.values:
                labels |= self.eval(value)
            return env_only(labels)
        if isinstance(node, ast.FormattedValue):
            return env_only(self.eval(node.value))
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.engine.merge(
                    self.state.rets[self.func.qualname], self.eval(node.value)
                )
            return set()
        if isinstance(node, ast.Slice):
            labels = set()
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    labels |= self.eval(part)
            return env_only(labels)
        # Conservative default: environment influence flows, views don't.
        labels = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                labels |= self.eval(child)
        return env_only(labels)

    def _bind_comprehension(self, generators: List[ast.comprehension]) -> None:
        for gen in generators:
            self.assign(gen.target, self.eval(gen.iter))
            for cond in gen.ifs:
                self.eval(cond)

    def _eval_name(self, name: str) -> Set[Label]:
        labels = set(self.locals.get(name, set()))
        labels |= self.state.globals.get((self.func.module, name), set())
        resolved = self.graph.resolve_symbol(self.func.module, name)
        if resolved is not None and resolved[0] == "const":
            module, _, const = resolved[1].partition(":")
            labels |= self.state.globals.get((module, const), set())
        return labels

    def _eval_attribute(self, node: ast.Attribute) -> Set[Label]:
        # Mmap labels propagate from the base (``mm.T`` is a view); env
        # labels do NOT — an object is not environment-influenced merely
        # because one of its *other* attributes is. Environment taint on
        # attributes flows through tracked attribute stores instead,
        # which keeps one tainted object (e.g. the disk-cache handle,
        # whose directory is REPRO_CACHE_DIR-derived) from smearing its
        # label across everything it touches.
        labels = {label for label in self.eval(node.value) if label[0] == "mmap"}
        owner = self.graph.expr_class(self.func, node.value)
        if owner is not None:
            labels |= self.state.attrs.get((owner, node.attr), set())
        else:
            labels |= self.state.attrs.get(("?", node.attr), set())
        # ``module.CONST`` reads the defining module's global.
        dotted = astutil.dotted_name(node.value)
        if dotted is not None:
            resolved = self.graph.resolve_dotted(self.func.module, dotted)
            if resolved is not None and resolved[0] == "module":
                labels |= self.state.globals.get((resolved[1], node.attr), set())
        return labels

    # ----------------------------------------------------------------- #
    # Calls                                                             #
    # ----------------------------------------------------------------- #

    def _eval_call(self, node: ast.Call) -> Set[Label]:
        receiver_labels: Set[Label] = set()
        if isinstance(node.func, ast.Attribute):
            receiver_labels = self.eval(node.func.value)

        arg_labels: List[Set[Label]] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                arg_labels.append(self.eval(arg.value))
            else:
                arg_labels.append(self.eval(arg))
        kw_labels: List[Tuple[Optional[str], Set[Label]]] = [
            (kw.arg, self.eval(kw.value)) for kw in node.keywords
        ]
        explicit_args: Set[Label] = set().union(
            *arg_labels, *(labels for _, labels in kw_labels)
        ) if (arg_labels or kw_labels) else set()

        result: Set[Label] = env_only(explicit_args)

        read = self.engine._env_read_at.get(id(node))
        if read is not None and read.var is not None:
            result.add(("env", read.var))

        if self._is_mmap_load(node):
            result.add(MMAP)

        callee = self.graph.callee_at(self.func.qualname, node)
        if callee is not None and callee in self.state.params:
            # Resolved call: the receiver's labels bind to ``self`` and
            # flow to the result only through the callee's real returns.
            self._bind_args(node, callee, receiver_labels, arg_labels, kw_labels)
            result |= self.state.rets.get(callee, set())
            if self._provider_name(callee) in self.engine._providers:
                result.add(MMAP)
        else:
            # Unresolved call: environment influence passes through the
            # receiver too (``os.environ.get(X).lower()``).
            result |= env_only(receiver_labels)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _VIEW_METHODS
                and MMAP in receiver_labels
            ):
                result.add(MMAP)

        if self.report:
            self._check_mutation(node, receiver_labels, arg_labels)
        return result

    def _bind_args(
        self,
        node: ast.Call,
        callee: str,
        receiver_labels: Set[Label],
        arg_labels: List[Set[Label]],
        kw_labels: List[Tuple[Optional[str], Set[Label]]],
    ) -> None:
        info = self.graph.functions[callee]
        params = list(info.params)
        state_params = self.state.params[callee]
        extras = self.state.extras[callee]
        offset = 0
        if params and params[0] == "self":
            offset = 1
            if isinstance(node.func, ast.Attribute) and receiver_labels:
                self.engine.merge(state_params["self"], receiver_labels)
        for index, labels in enumerate(arg_labels):
            if not labels:
                continue
            position = offset + index
            if position < len(params):
                self.engine.merge(state_params[params[position]], labels)
            else:
                self.engine.merge(extras, labels)
        for name, labels in kw_labels:
            if not labels:
                continue
            if name is not None and name in state_params:
                self.engine.merge(state_params[name], labels)
            else:
                self.engine.merge(extras, labels)

    @staticmethod
    def _provider_name(qualname: str) -> str:
        return qualname

    def _is_mmap_load(self, node: ast.Call) -> bool:
        dotted = astutil.dotted_name(node.func)
        is_np_load = False
        if dotted is not None and dotted.endswith(".load"):
            root = dotted.split(".")[0]
            binding = self.graph.bindings.get(self.func.module, {}).get(root)
            if binding is not None and binding.kind == "module":
                is_np_load = binding.module == "numpy"
            else:
                is_np_load = root == "numpy"
        elif isinstance(node.func, ast.Name):
            binding = self.graph.bindings.get(self.func.module, {}).get(node.func.id)
            is_np_load = (
                binding is not None
                and binding.kind == "symbol"
                and binding.module == "numpy"
                and binding.name == "load"
            )
        if not is_np_load:
            return False
        for kw in node.keywords:
            if kw.arg == "mmap_mode":
                if isinstance(kw.value, ast.Constant) and kw.value.value is None:
                    return False
                return True
        return False

    def _check_mutation(
        self,
        node: ast.Call,
        receiver_labels: Set[Label],
        arg_labels: List[Set[Label]],
    ) -> None:
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _MUTATORS and MMAP in receiver_labels:
                self._mmap_write(
                    node, f"'{attr}()' mutates a memory-mapped array in place"
                )
                return
            if attr in _NP_WRITERS and arg_labels and MMAP in arg_labels[0]:
                dotted = astutil.dotted_name(node.func.value)
                if dotted is not None:
                    binding = self.graph.bindings.get(self.func.module, {}).get(
                        dotted.split(".")[0]
                    )
                    if binding is not None and binding.kind == "module":
                        if binding.module == "numpy":
                            self._mmap_write(
                                node,
                                f"'np.{attr}()' writes into a memory-mapped "
                                "array",
                            )

    def _mmap_write(self, node: ast.AST, detail: str) -> None:
        self.engine.mmap_writes.append(
            MmapWrite(
                func=self.func.qualname,
                module=self.func.module,
                node=node,
                detail=detail,
            )
        )
