"""The ``lva-lint`` console script.

Usage::

    lva-lint src/                      # lint a tree (exit 1 on violations)
    lva-lint --select LVA001,LVA003 f.py
    lva-lint --ignore LVA005 src/
    lva-lint --list-rules

Suppress a single line with ``# lva: ignore[LVA001]`` (or a blanket
``# lva: ignore``). See ``docs/static-analysis.md`` for rule semantics.
"""

from __future__ import annotations

import argparse
import sys
from typing import FrozenSet, List, Optional

from repro.analysis import core, engine, report


def _parse_rule_set(text: Optional[str]) -> Optional[FrozenSet[str]]:
    if not text:
        return None
    return frozenset(part.strip().upper() for part in text.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lva-lint",
        description=(
            "AST-based invariant checker for the LVA reproduction: "
            "determinism (LVA001), cache-key completeness (LVA002), "
            "hot-path discipline (LVA003), worker safety (LVA004), "
            "stats consistency (LVA005), guarded hot-path telemetry "
            "(LVA006)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--no-summary",
        action="store_true",
        help="omit the trailing summary line",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in core.all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    files = engine.discover_files(args.paths)
    if not files:
        print(f"lva-lint: no Python files under {', '.join(args.paths)}", file=sys.stderr)
        return 2
    violations = engine.run_paths(
        args.paths,
        select=_parse_rule_set(args.select),
        ignore=_parse_rule_set(args.ignore),
    )
    if violations:
        print(report.render_text(violations))
    if not args.no_summary:
        print(report.summary_line(violations, len(files)))
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
