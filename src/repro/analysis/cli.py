"""The ``lva-lint`` console script.

Usage::

    lva-lint src/                      # lint a tree (exit 1 on violations)
    lva-lint --select LVA001,LVA003 f.py
    lva-lint --ignore LVA005 src/
    lva-lint src/ --sarif lint.sarif   # also write a SARIF 2.1.0 log
    lva-lint src/ --stale-ignores      # flag suppressions that silence nothing
    lva-lint src/ --incremental        # reuse .lva-cache.json across runs
    lva-lint --list-rules

Suppress a single line with ``# lva: ignore[LVA001]`` (or a blanket
``# lva: ignore``). See ``docs/static-analysis.md`` for rule semantics.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import FrozenSet, List, Optional

from repro.analysis import core, engine, incremental, report, sarif
from repro.analysis.core import Violation


def _parse_rule_set(text: Optional[str]) -> Optional[FrozenSet[str]]:
    if not text:
        return None
    return frozenset(part.strip().upper() for part in text.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lva-lint",
        description=(
            "AST-based invariant checker for the LVA reproduction: "
            "determinism (LVA001), cache-key completeness (LVA002), "
            "hot-path discipline (LVA003), worker safety (LVA004), "
            "stats consistency (LVA005), guarded hot-path telemetry "
            "(LVA006), env-influence soundness (LVA007), worker-path "
            "determinism (LVA008), mmap write discipline (LVA009)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write the report as a SARIF 2.1.0 log to PATH",
    )
    parser.add_argument(
        "--stale-ignores",
        action="store_true",
        help=(
            "report '# lva: ignore' comments that no longer silence any "
            "violation (LVA900; checked against the full rule set)"
        ),
    )
    parser.add_argument(
        "--incremental",
        metavar="CACHE",
        nargs="?",
        const=".lva-cache.json",
        default=None,
        help=(
            "reuse cached per-file results; only the dependency cone of "
            "changed files is re-checked (cache file defaults to "
            ".lva-cache.json; put the flag after the paths)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--no-summary",
        action="store_true",
        help="omit the trailing summary line",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in core.all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    files = engine.discover_files(args.paths)
    if not files:
        print(f"lva-lint: no Python files under {', '.join(args.paths)}", file=sys.stderr)
        return 2
    select = _parse_rule_set(args.select)
    ignore = _parse_rule_set(args.ignore)

    extra = ""
    infos, errors = engine.load_modules(files)
    if args.incremental is not None:
        result = incremental.run_paths_incremental(
            args.paths, Path(args.incremental), select=select, ignore=ignore
        )
        violations = result.violations
        extra = (
            f" [incremental: {len(result.analyzed)} re-analyzed, "
            f"{len(result.reused)} reused]"
        )
    else:
        violations = sorted(
            errors + engine.run_modules(infos, select=select, ignore=ignore),
            key=Violation.sort_key,
        )
    if args.stale_ignores:
        # Staleness is judged against the FULL rule set: a suppression
        # of a rule merely excluded by --select is dormant, not stale.
        raw = engine.run_modules_raw(infos)
        violations = sorted(
            violations + engine.stale_suppressions(infos, raw),
            key=Violation.sort_key,
        )
    if args.sarif:
        Path(args.sarif).write_text(sarif.render_sarif(violations), encoding="utf-8")
    if violations:
        print(report.render_text(violations))
    if not args.no_summary:
        print(report.summary_line(violations, len(files)) + extra)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
