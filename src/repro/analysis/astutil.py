"""Small AST helpers shared by the rule visitors."""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute chain (``c`` for ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    """The ``@dataclass`` / ``@dataclasses.dataclass`` decorator, if any."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if terminal_name(target) == "dataclass":
            return decorator
    return None


def decorator_keyword(decorator: ast.expr, name: str) -> Optional[ast.expr]:
    """The value of keyword ``name`` on a decorator call, if present."""
    if not isinstance(decorator, ast.Call):
        return None
    for keyword in decorator.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def annotation_base(annotation: Optional[ast.expr]) -> Optional[str]:
    """The base identifier of an annotation: ``Set`` for ``Set[int]`` etc.

    Handles ``Optional[...]``-style wrappers one level deep, string
    annotations (``"Set[int]"``) and plain names.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Subscript):
        base = terminal_name(annotation.value)
        if base in ("Optional", "Final", "ClassVar"):
            return annotation_base(
                annotation.slice
                if not isinstance(annotation.slice, ast.Tuple)
                else None
            )
        return base
    return terminal_name(annotation)


def class_fields(node: ast.ClassDef) -> Dict[str, Tuple[int, Optional[str]]]:
    """Dataclass-style fields: name -> (line, annotation base identifier).

    Only simple annotated assignments in the class body count;
    ``ClassVar`` declarations are skipped (not instance fields).
    """
    fields: Dict[str, Tuple[int, Optional[str]]] = {}
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        base = annotation_base(statement.annotation)
        outer = statement.annotation
        if isinstance(outer, ast.Subscript) and terminal_name(outer.value) == "ClassVar":
            continue
        fields[statement.target.id] = (statement.lineno, base)
    return fields


def property_names(node: ast.ClassDef) -> List[str]:
    """Names of ``@property`` methods declared directly on the class."""
    names: List[str] = []
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef):
            for decorator in statement.decorator_list:
                if terminal_name(decorator) == "property":
                    names.append(statement.name)
                    break
    return names


class ParentAnnotator(ast.NodeVisitor):
    """Attach ``_lva_parent`` links so rules can look outward from a node."""

    def __init__(self) -> None:
        self._stack: List[ast.AST] = []

    def visit(self, node: ast.AST) -> None:
        if self._stack:
            node._lva_parent = self._stack[-1]  # type: ignore[attr-defined]
        self._stack.append(node)
        self.generic_visit(node)
        self._stack.pop()


def annotate_parents(tree: ast.Module) -> None:
    ParentAnnotator().visit(tree)
