"""Static invariant checking for the LVA reproduction (``lva-lint``).

The evaluation pipeline rests on invariants that ordinary linters do not
know about: simulated results must be bit-deterministic (``--resume``
promises bit-identical tables), every configuration knob must be folded
into the disk-cache keys, hot-path classes must stay allocation-lean, and
worker-executed code must stay picklable and free of hidden module state.
This package enforces them *statically*, before a single sweep point runs:

========  ============================================================
LVA001    determinism — no unseeded randomness, wall-clock reads,
          ``os.urandom``/``uuid4``, ``id()``-keyed state or direct
          set iteration inside simulation packages
LVA002    cache-key completeness — every field of a sweep-point
          dataclass must be read by its ``*disk_key`` function
LVA003    hot-path discipline — ``slots=True`` on hot-path dataclasses;
          no closures/comprehensions in per-load methods
LVA004    worker safety — only module-level functions cross the
          ``ProcessPoolExecutor`` boundary; no ``global`` mutation in
          worker entry points
LVA005    stats consistency — counter writes must match declared
          ``*Stats`` fields, and every declared counter must be written
LVA006    guarded hot-path telemetry — hook calls in per-load methods
          stay behind ``if self._tel is not None``; no telemetry
          module-API calls on the hot path
LVA007    env-influence soundness — every ``REPRO_*`` read resolves to
          a :mod:`repro.envspec` constant; ``keyed`` variables provably
          reach a cache-key function, ``neutral``/``capture-only``
          variables provably do not (whole-program taint)
LVA008    worker-path determinism — the LVA001 checks, extended
          interprocedurally along call paths from worker entry points,
          kernel batch functions and simulator entry points
LVA009    mmap write discipline — no stores into arrays obtained from
          ``np.load(mmap_mode=...)`` or ``TraceStore.get`` (the packed
          columns are shared read-only across processes)
========  ============================================================

Violations are suppressed per line with ``# lva: ignore[LVA001]`` (or a
blanket ``# lva: ignore``). The engine is exposed three ways: the
``lva-lint`` console script (:mod:`repro.analysis.cli`), the library API
(:func:`run_paths` / :func:`check_source`), and a pytest gate
(``tests/analysis/test_self_clean.py``) asserting the tree is clean.
"""

from __future__ import annotations

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.core import (
    ModuleInfo,
    ProjectContext,
    Rule,
    Violation,
    all_rules,
    register,
    rule_ids,
)
from repro.analysis.engine import (
    check_source,
    check_sources,
    discover_files,
    run_modules_raw,
    run_paths,
    stale_suppressions,
)
from repro.analysis.incremental import IncrementalResult, run_paths_incremental
from repro.analysis.report import render_text, summary_line
from repro.analysis.sarif import render_sarif, to_sarif

__all__ = [
    "AnalysisConfig",
    "DEFAULT_CONFIG",
    "IncrementalResult",
    "ModuleInfo",
    "ProjectContext",
    "Rule",
    "Violation",
    "all_rules",
    "check_source",
    "check_sources",
    "discover_files",
    "register",
    "render_sarif",
    "render_text",
    "rule_ids",
    "run_modules_raw",
    "run_paths",
    "run_paths_incremental",
    "stale_suppressions",
    "summary_line",
    "to_sarif",
]
