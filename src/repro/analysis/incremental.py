"""Content-hash incremental linting: re-check only the dependency cone.

A full ``lva-lint`` run parses every file and runs every rule's
``check`` over every module. Most edits touch one file, and most rules
are *local*: their ``check``-phase findings for a module depend only on
that module's source plus the modules it (transitively) imports. The
incremental runner exploits this:

* every file is hashed (sha256 of its source) and **parsed** on every
  run — parsing is cheap and the project-level ``finish`` rules need
  all ASTs regardless;
* ``check`` re-runs only on the *dependency cone* of the edit: the
  changed files plus every module that transitively imports a changed
  module (reverse-import closure). Unchanged files outside the cone
  reuse their cached check-phase findings;
* rules flagged ``incremental_safe = False`` (LVA005, whose ``check``
  builds a cross-module index its ``finish`` consumes) always run over
  every module and are never cached;
* ``finish`` rules always run fresh over the full project context.

The cache is one JSON file (default ``.lva-cache.json``) keyed by
display path, carrying the source digest and the cached check-phase
rows. A fingerprint of the rule set, select/ignore filters and the
:class:`AnalysisConfig` guards it: any mismatch discards the cache
wholesale rather than mixing results from different configurations.

Cached rows are *pre-suppression*; ``# lva: ignore`` comments are
re-applied on every run (they live in the same source the digest
covers, so a suppression edit changes the digest and re-checks the
file anyway — applying them late just keeps one code path).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.core import (
    ModuleInfo,
    ProjectContext,
    Violation,
    all_rules,
    rule_ids,
)
from repro.analysis.engine import apply_suppressions, discover_files, load_modules

#: Bumped whenever the cache layout changes; mismatches discard the cache.
CACHE_VERSION = 1


@dataclass(slots=True)
class IncrementalResult:
    """One incremental run: the report plus what was actually re-checked."""

    violations: List[Violation]
    #: Display paths whose ``check`` phase ran this time (the cone).
    analyzed: List[str] = field(default_factory=list)
    #: Display paths served from the cache.
    reused: List[str] = field(default_factory=list)


def _digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _fingerprint(
    config: AnalysisConfig,
    select: Optional[FrozenSet[str]],
    ignore: Optional[FrozenSet[str]],
) -> str:
    """Hash of everything (besides sources) that shapes the report."""
    payload = repr(
        (
            CACHE_VERSION,
            sorted(select) if select is not None else None,
            sorted(ignore) if ignore is not None else None,
            repr(config),
            rule_ids(),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _import_base(info: ModuleInfo, node: ast.ImportFrom) -> Optional[str]:
    """The absolute dotted module an ``ImportFrom`` resolves against."""
    if node.level == 0:
        return node.module
    parts = info.module.split(".")
    # A package __init__ is its own package; a plain module sits in one.
    if not Path(info.path).name == "__init__.py":
        parts = parts[:-1]
    drop = node.level - 1
    if drop >= len(parts):
        return None
    if drop:
        parts = parts[: len(parts) - drop]
    base = ".".join(parts)
    if node.module:
        return f"{base}.{node.module}" if base else node.module
    return base or None


def _note(dotted: str, universe: Set[str], deps: Set[str]) -> None:
    """Record the deepest prefix of ``dotted`` naming a known module.

    Only the deepest match: ``from repro.sim.trace import X`` depends on
    ``repro.sim.trace``, not on the ``repro``/``repro.sim`` package
    inits — edging to every prefix would make the package root a
    dependency of the whole tree and inflate every cone to ~everything.
    """
    parts = dotted.split(".")
    for depth in range(len(parts), 0, -1):
        prefix = ".".join(parts[:depth])
        if prefix in universe:
            deps.add(prefix)
            return


def module_imports(info: ModuleInfo, universe: Set[str]) -> Set[str]:
    """Modules in ``universe`` that ``info`` imports (any package depth)."""
    deps: Set[str] = set()
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                _note(alias.name, universe, deps)
        elif isinstance(node, ast.ImportFrom):
            base = _import_base(info, node)
            if base is None:
                continue
            _note(base, universe, deps)
            for alias in node.names:
                _note(f"{base}.{alias.name}", universe, deps)
    deps.discard(info.module)
    return deps


def _dependency_cone(
    infos: List[ModuleInfo],
    changed_modules: Set[str],
    extra_roots: Set[str],
) -> Set[str]:
    """Changed modules plus their transitive reverse importers.

    ``extra_roots`` are modules no longer present (deleted files): their
    former importers must re-check even though the root itself cannot.
    """
    universe = {info.module for info in infos} | extra_roots
    importers: Dict[str, Set[str]] = {}
    for info in infos:
        for dep in module_imports(info, universe):
            importers.setdefault(dep, set()).add(info.module)
    cone: Set[str] = set()
    frontier = list(changed_modules | extra_roots)
    while frontier:
        module = frontier.pop()
        if module in cone:
            continue
        cone.add(module)
        frontier.extend(importers.get(module, ()))
    return cone


def _load_cache(path: Path, fingerprint: str) -> Dict[str, dict]:
    """The per-file cache entries, or empty on any mismatch/corruption."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("fingerprint") != fingerprint:
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(path: Path, fingerprint: str, files: Dict[str, dict]) -> None:
    payload = {
        "version": CACHE_VERSION,
        "fingerprint": fingerprint,
        "files": files,
    }
    try:
        path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
    except OSError:
        # A read-only checkout degrades to full runs, not failures.
        pass


def _decode_rows(path: str, rows: Iterable[Iterable[object]]) -> List[Violation]:
    out: List[Violation] = []
    for row in rows:
        rule_id, line, col, message = row
        out.append(Violation(str(rule_id), path, int(line), int(col), str(message)))
    return out


def _encode_rows(violations: Iterable[Violation]) -> List[List[object]]:
    return [
        [v.rule_id, v.line, v.col, v.message]
        for v in sorted(violations, key=Violation.sort_key)
    ]


def run_paths_incremental(
    paths: Iterable[str],
    cache_path: Path,
    config: AnalysisConfig = DEFAULT_CONFIG,
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
) -> IncrementalResult:
    """Lint ``paths`` reusing cached check-phase results where sound.

    Produces the same report as :func:`repro.analysis.engine.run_paths`
    over the same tree (the equivalence is pinned by
    ``tests/analysis/test_incremental.py``), re-running ``check`` only
    on the dependency cone of the files whose content hash changed.
    """
    cache_path = Path(cache_path)
    fingerprint = _fingerprint(config, select, ignore)
    cached = _load_cache(cache_path, fingerprint)

    infos, errors = load_modules(discover_files(paths))
    digests = {info.path: _digest(info.source) for info in infos}

    changed_modules: Set[str] = set()
    for info in infos:
        entry = cached.get(info.path)
        if entry is None or entry.get("sha256") != digests[info.path]:
            changed_modules.add(info.module)
    current_paths = set(digests)
    removed_modules = {
        str(entry.get("module", ""))
        for path, entry in cached.items()
        if path not in current_paths
    } - {""}

    cone = _dependency_cone(infos, changed_modules, removed_modules)
    reanalyze = {info.path for info in infos if info.module in cone}

    ctx = ProjectContext(infos, config)
    raw: List[Violation] = []
    fresh: Dict[str, List[Violation]] = {path: [] for path in reanalyze}
    for rule in all_rules(select=select, ignore=ignore):
        if rule.incremental_safe:
            for info in ctx.ordered():
                if info.path in reanalyze:
                    found = list(rule.check(info, ctx))
                    # Local rules anchor findings in the module they
                    # check; bucket by the anchor path so the cache row
                    # lands with the file that produced it.
                    for violation in found:
                        fresh.setdefault(violation.path, []).append(violation)
                    raw.extend(found)
        else:
            for info in ctx.ordered():
                raw.extend(rule.check(info, ctx))
        raw.extend(rule.finish(ctx))

    for info in ctx.ordered():
        if info.path in reanalyze:
            continue
        entry = cached.get(info.path)
        if entry is not None:
            raw.extend(_decode_rows(info.path, entry.get("violations", ())))

    kept = apply_suppressions(sorted(set(raw), key=Violation.sort_key), infos)
    violations = sorted(errors + kept, key=Violation.sort_key)

    files: Dict[str, dict] = {}
    for info in infos:
        if info.path in reanalyze:
            rows = _encode_rows(fresh.get(info.path, ()))
        else:
            entry = cached.get(info.path, {})
            rows = list(entry.get("violations", ()))
        files[info.path] = {
            "sha256": digests[info.path],
            "module": info.module,
            "violations": rows,
        }
    _save_cache(cache_path, fingerprint, files)

    return IncrementalResult(
        violations=violations,
        analyzed=sorted(reanalyze),
        reused=sorted(current_paths - reanalyze),
    )


def cone_for_edit(
    infos: List[ModuleInfo], edited_modules: Set[str]
) -> Set[str]:
    """Public helper: the re-check cone for a set of edited modules."""
    return _dependency_cone(infos, set(edited_modules), set())


__all__ = [
    "CACHE_VERSION",
    "IncrementalResult",
    "cone_for_edit",
    "module_imports",
    "run_paths_incremental",
]
