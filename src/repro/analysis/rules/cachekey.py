"""LVA002 — cache keys must cover every field of their point dataclass.

A sweep point's disk-cache key is derived by a function like
``point_disk_key(point: SweepPoint)``. If a new field is added to the
point dataclass but not folded into the key, two *different* sweep points
collide onto one cache entry and the second silently reads the first's
stale result — the exact drift class PR 2 had to patch by hand for fault
specs.

The rule finds every function whose name contains ``disk_key`` or
``cache_key`` and whose first annotated parameter is a known dataclass
(dataclasses are indexed project-wide, so the dataclass may live in
another module). It then computes the set of ``param.field`` attribute
reads reachable from the function — following calls to same-module
helpers that the parameter is passed into — and reports any dataclass
field never read. Passing the whole parameter to an *external* callable
is treated as covering all fields (the key function may canonicalise the
dataclass wholesale, as ``diskcache._canonical`` does).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis import astutil
from repro.analysis.core import ModuleInfo, ProjectContext, Rule, Violation, register

#: Function-name fragments marking a cache-key derivation function.
_KEY_FUNCTION_MARKERS = ("disk_key", "cache_key")

#: ctx.caches slot for the project-wide dataclass field index.
_CACHE_SLOT = "LVA002.dataclasses"


def _dataclass_index(ctx: ProjectContext) -> Dict[str, Tuple[str, ...]]:
    """Map dataclass name -> field names, across every analysed module."""
    cached = ctx.caches.get(_CACHE_SLOT)
    if cached is not None:
        return cached  # type: ignore[return-value]
    index: Dict[str, Tuple[str, ...]] = {}
    for info in ctx.ordered():
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if astutil.dataclass_decorator(node) is None:
                continue
            fields = tuple(astutil.class_fields(node))
            if fields:
                index[node.name] = fields
    ctx.caches[_CACHE_SLOT] = index
    return index


def _first_param(func: ast.FunctionDef) -> Optional[ast.arg]:
    args = func.args.posonlyargs + func.args.args
    return args[0] if args else None


def _param_for_call(
    helper: ast.FunctionDef, call: ast.Call, param_name: str
) -> Optional[str]:
    """Which of ``helper``'s parameters receives ``param_name`` in ``call``."""
    helper_args = [a.arg for a in helper.args.posonlyargs + helper.args.args]
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Name) and arg.id == param_name:
            if position < len(helper_args):
                return helper_args[position]
    for keyword in call.keywords:
        if (
            isinstance(keyword.value, ast.Name)
            and keyword.value.id == param_name
            and keyword.arg is not None
            and keyword.arg in helper_args
        ):
            return keyword.arg
    return None


class _ReadCollector(ast.NodeVisitor):
    """Attribute reads of one parameter inside one function body."""

    def __init__(
        self, param_name: str, module_functions: Dict[str, ast.FunctionDef]
    ) -> None:
        self.param_name = param_name
        self.module_functions = module_functions
        self.reads: Set[str] = set()
        #: (helper def, helper param) pairs the parameter flows into.
        self.forwards: List[Tuple[ast.FunctionDef, str]] = []
        #: True when the whole parameter escapes to an external callable.
        self.escaped = False

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == self.param_name:
            self.reads.add(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        passes_param = any(
            isinstance(arg, ast.Name) and arg.id == self.param_name
            for arg in node.args
        ) or any(
            isinstance(kw.value, ast.Name) and kw.value.id == self.param_name
            for kw in node.keywords
        )
        if passes_param:
            callee = node.func
            helper = (
                self.module_functions.get(callee.id)
                if isinstance(callee, ast.Name)
                else None
            )
            if helper is not None:
                mapped = _param_for_call(helper, node, self.param_name)
                if mapped is not None:
                    self.forwards.append((helper, mapped))
                else:
                    self.escaped = True
            else:
                # The parameter escapes into code we cannot see; assume the
                # callee covers every field (e.g. canonicalises wholesale).
                self.escaped = True
        self.generic_visit(node)


def _covered_fields(
    func: ast.FunctionDef,
    param_name: str,
    module_functions: Dict[str, ast.FunctionDef],
) -> Tuple[Set[str], bool]:
    """Transitive ``param.field`` reads from ``func`` (reads, escaped)."""
    reads: Set[str] = set()
    seen: Set[Tuple[str, str]] = set()
    worklist: List[Tuple[ast.FunctionDef, str]] = [(func, param_name)]
    while worklist:
        current, name = worklist.pop()
        if (current.name, name) in seen:
            continue
        seen.add((current.name, name))
        collector = _ReadCollector(name, module_functions)
        for statement in current.body:
            collector.visit(statement)
        reads |= collector.reads
        if collector.escaped:
            return reads, True
        worklist.extend(collector.forwards)
    return reads, False


@register
class CacheKeyRule(Rule):
    """Every dataclass field must reach its cache-key function."""

    rule_id = "LVA002"
    title = "cache-key functions must fold in every point field"

    def check(self, info: ModuleInfo, ctx: ProjectContext) -> Iterator[Violation]:
        index = _dataclass_index(ctx)
        module_functions: Dict[str, ast.FunctionDef] = {
            node.name: node
            for node in info.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        violations: List[Violation] = []
        for func in module_functions.values():
            if not any(marker in func.name for marker in _KEY_FUNCTION_MARKERS):
                continue
            param = _first_param(func)
            if param is None or param.annotation is None:
                continue
            class_name = astutil.annotation_base(param.annotation)
            if class_name is None or class_name not in index:
                continue
            covered, escaped = _covered_fields(func, param.arg, module_functions)
            if escaped:
                continue
            for field_name in index[class_name]:
                if field_name not in covered:
                    violations.append(
                        self.violation(
                            info,
                            func,
                            f"cache key function '{func.name}' never reads "
                            f"field '{field_name}' of {class_name} — two "
                            "points differing only in that field would share "
                            "one cache entry",
                        )
                    )
        return iter(violations)
