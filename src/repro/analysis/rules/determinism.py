"""LVA001 — simulation code must be bit-deterministic.

Inside the simulation packages (:attr:`AnalysisConfig.sim_packages`,
minus the host-side allowlist) the rule forbids every construct whose
result depends on the process, the wall clock, or hash randomisation:

* calls through the module-level :mod:`random` API (``random.random()``,
  ``random.randint()``, ``random.seed()``, ...) — a seeded
  ``random.Random(seed)`` instance passed in from configuration is the
  only sanctioned source of randomness;
* wall-clock reads: ``time.time()``/``perf_counter()``/``monotonic()``
  and variants, ``datetime.now()``/``utcnow()``/``today()``;
* entropy taps: ``os.urandom()``, ``uuid.uuid1()``/``uuid4()``,
  ``random.SystemRandom``, ``secrets.*``;
* ``id()`` — CPython object addresses vary per process, so ``id()``-keyed
  state breaks cross-run reproducibility;
* direct iteration over sets (literals, ``set()``/``frozenset()`` calls,
  and attributes/variables annotated as sets): iteration order depends on
  ``PYTHONHASHSEED`` for hashed-by-identity or string elements. Iterate
  ``sorted(the_set)`` instead — membership tests stay free.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis import astutil
from repro.analysis.core import ModuleInfo, ProjectContext, Rule, Violation, register

#: Attribute calls on these modules that read the wall clock.
_CLOCK_CALLS: Dict[str, Tuple[str, ...]] = {
    "time": (
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "clock_gettime",
    ),
}

#: datetime class methods that read the wall clock.
_DATETIME_CALLS = ("now", "utcnow", "today")

#: Annotation bases treated as set types for the iteration check.
_SET_ANNOTATIONS = ("set", "Set", "frozenset", "FrozenSet", "MutableSet", "AbstractSet")


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, rule: "DeterminismRule", info: ModuleInfo) -> None:
        self.rule = rule
        self.info = info
        self.violations: List[Violation] = []
        #: Names bound by ``from random import X`` (X != Random).
        self.random_from_imports: Set[str] = set()
        #: Local aliases of the random module (``import random as rnd``).
        self.random_aliases: Set[str] = set()
        #: Aliases of time / os / uuid / secrets modules.
        self.module_aliases: Dict[str, str] = {}
        #: Names bound to the datetime/date classes by from-imports.
        self.datetime_names: Set[str] = set()
        #: Attribute / variable names annotated as sets anywhere in module.
        self.set_names: Set[str] = set()

    # -- imports -------------------------------------------------------- #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(local)
            elif alias.name in ("time", "os", "uuid", "secrets", "datetime"):
                self.module_aliases[local] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self.random_from_imports.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_names.add(alias.asname or alias.name)
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_CALLS["time"]:
                    local = alias.asname or alias.name
                    self.module_aliases[local] = f"time.{alias.name}"
        self.generic_visit(node)

    # -- annotations feeding the set-iteration check --------------------- #

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        base = astutil.annotation_base(node.annotation)
        if base in _SET_ANNOTATIONS:
            target_name = astutil.terminal_name(node.target)
            if target_name is not None:
                self.set_names.add(target_name)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------- #

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._check_name_call(node, func.id)
        elif isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        self.generic_visit(node)

    def _check_name_call(self, node: ast.Call, name: str) -> None:
        if name in self.random_from_imports:
            self.violations.append(
                self.rule.violation(
                    self.info,
                    node,
                    f"call to module-level random.{name}() — route randomness "
                    "through a seeded random.Random passed in from config",
                )
            )
        elif name == "id":
            self.violations.append(
                self.rule.violation(
                    self.info,
                    node,
                    "id() returns a process-dependent address; id()-keyed "
                    "state is not reproducible across runs",
                )
            )
        elif name in self.module_aliases and self.module_aliases[name].startswith(
            "time."
        ):
            self.violations.append(
                self.rule.violation(
                    self.info,
                    node,
                    f"wall-clock read {self.module_aliases[name]}() inside "
                    "simulation code",
                )
            )

    def _check_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        root = func.value
        attr = func.attr
        if isinstance(root, ast.Name):
            if root.id in self.random_aliases:
                if attr not in ("Random", "SystemRandom"):
                    self.violations.append(
                        self.rule.violation(
                            self.info,
                            node,
                            f"call to module-level random.{attr}() — use a "
                            "seeded random.Random passed in from config",
                        )
                    )
                elif attr == "SystemRandom":
                    self.violations.append(
                        self.rule.violation(
                            self.info,
                            node,
                            "random.SystemRandom draws OS entropy and can "
                            "never be seeded",
                        )
                    )
                return
            module = self.module_aliases.get(root.id)
            if module == "time" and attr in _CLOCK_CALLS["time"]:
                self.violations.append(
                    self.rule.violation(
                        self.info,
                        node,
                        f"wall-clock read time.{attr}() inside simulation code",
                    )
                )
            elif module == "os" and attr == "urandom":
                self.violations.append(
                    self.rule.violation(
                        self.info, node, "os.urandom() is unseeded OS entropy"
                    )
                )
            elif module == "secrets":
                self.violations.append(
                    self.rule.violation(
                        self.info, node, f"secrets.{attr}() is unseeded OS entropy"
                    )
                )
            elif module == "uuid" and attr in ("uuid1", "uuid4"):
                self.violations.append(
                    self.rule.violation(
                        self.info,
                        node,
                        f"uuid.{attr}() is host/entropy-dependent",
                    )
                )
            elif root.id in self.datetime_names and attr in _DATETIME_CALLS:
                self.violations.append(
                    self.rule.violation(
                        self.info,
                        node,
                        f"wall-clock read {root.id}.{attr}() inside simulation code",
                    )
                )
        elif isinstance(root, ast.Attribute) and attr in _DATETIME_CALLS:
            # datetime.datetime.now() / datetime.date.today()
            dotted = astutil.dotted_name(func)
            if dotted is not None and dotted.startswith("datetime."):
                self.violations.append(
                    self.rule.violation(
                        self.info,
                        node,
                        f"wall-clock read {dotted}() inside simulation code",
                    )
                )

    # -- set iteration --------------------------------------------------- #

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_node(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", []):
            self._check_iterable(generator.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_node(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension_node(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_node(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_node(node)

    def _check_iterable(self, iterable: ast.expr) -> None:
        if isinstance(iterable, ast.Set):
            self._set_iteration(iterable, "a set literal")
            return
        if isinstance(iterable, ast.Call):
            callee = astutil.terminal_name(iterable.func)
            if callee in ("set", "frozenset"):
                self._set_iteration(iterable, f"{callee}(...)")
            return
        name = astutil.terminal_name(iterable)
        if name is not None and name in self.set_names:
            self._set_iteration(iterable, f"'{name}' (annotated as a set)")

    def _set_iteration(self, node: ast.expr, what: str) -> None:
        self.violations.append(
            self.rule.violation(
                self.info,
                node,
                f"iteration over {what} is hash-order-dependent; iterate "
                "sorted(...) for a reproducible order",
            )
        )


@register
class DeterminismRule(Rule):
    """No unseeded randomness, clocks, entropy, id() or set iteration."""

    rule_id = "LVA001"
    title = "simulation code must be bit-deterministic"

    def check(self, info: ModuleInfo, ctx: ProjectContext) -> Iterator[Violation]:
        if not ctx.config.is_sim_module(info.module):
            return iter(())
        visitor = _DeterminismVisitor(self, info)
        # Two passes: annotations anywhere in the module inform the
        # set-iteration check even when the loop appears first.
        for node in ast.walk(info.tree):
            if isinstance(node, ast.AnnAssign):
                visitor.visit_AnnAssign(node)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                visitor.visit(node)
        collected = visitor.set_names
        visitor = _DeterminismVisitor(self, info)
        visitor.set_names = collected
        visitor.visit(info.tree)
        return iter(visitor.violations)
