"""LVA009 — memory-mapped trace arrays are read-only.

Packed trace columns are shared across processes through
``np.load(..., mmap_mode="r")`` (directly, or via ``TraceStore.get``).
Writing into such an array either raises at runtime (``mmap_mode="r"``)
or — far worse, after a ``setflags(write=True)`` — silently mutates the
on-disk store every reader shares. The taint engine tracks mmap-backed
values through views (names, attributes, subscripts, containers, known
view methods) and this rule reports every in-place write it finds:
subscript stores, augmented assignments, mutating ndarray methods
(``fill``/``sort``/``resize``/...), and ``np.copyto``-family calls
whose destination is mapped.

Copies (``arr + 0``, ``np.array(arr)``, arithmetic results) shed the
taint deliberately: materializing a private copy and writing to *that*
is the sanctioned pattern.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.core import ModuleInfo, ProjectContext, Rule, Violation, register
from repro.analysis.flow import flow_analysis


@register
class MmapFlowRule(Rule):
    """No in-place writes into mmap-backed arrays."""

    rule_id = "LVA009"
    title = "memory-mapped trace arrays are read-only"

    def check(self, info: ModuleInfo, ctx: ProjectContext) -> Iterator[Violation]:
        return iter(())

    def finish(self, ctx: ProjectContext) -> Iterator[Violation]:
        flow = flow_analysis(ctx)
        out: List[Violation] = []
        for write in flow.mmap_writes:
            info = ctx.modules.get(write.module)
            if info is None:
                continue
            out.append(
                self.violation(
                    info,
                    write.node,
                    f"{write.detail}; mmap-backed columns are shared "
                    "read-only — materialize a copy (np.array(...)) before "
                    "writing",
                )
            )
        return iter(out)


__all__ = ["MmapFlowRule"]
