"""LVA008 — determinism along worker- and kernel-reachable call paths.

LVA001 polices the simulation packages directly, but a sweep worker's
result must be reproducible end to end: a wall-clock read or unseeded
random draw in a *host-side helper* that a worker entry calls corrupts
resumability just as surely as one inside the simulator. This rule
extends the LVA001 checks interprocedurally:

* roots: every worker entry point (``_run_*`` / ``*_worker`` functions
  in the worker modules), every kernel batch function, and the
  configured public simulation entries (``flow_entry_points``);
* the call graph is walked breadth-first, and each reachable function
  in a module *not* already covered by LVA001 (and not flow-exempt —
  telemetry legitimately reads clocks) is checked function-scoped for
  the LVA001 determinism constructs;
* messages carry the call chain (``entry -> helper -> offender``) from
  the BFS parent links, so a finding explains *why* the function is on
  a deterministic path.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.core import ModuleInfo, ProjectContext, Rule, Violation, register
from repro.analysis.flow import flow_analysis
from repro.analysis.flow.graphs import MODULE_BODY
from repro.analysis.rules.determinism import _DeterminismVisitor


@register
class WorkerFlowRule(Rule):
    """No clocks/entropy/set-iteration on worker-reachable paths."""

    rule_id = "LVA008"
    title = "worker-reachable code must be deterministic"

    def check(self, info: ModuleInfo, ctx: ProjectContext) -> Iterator[Violation]:
        return iter(())

    def finish(self, ctx: ProjectContext) -> Iterator[Violation]:
        flow = flow_analysis(ctx)
        graph = flow.graph
        config = ctx.config

        entries: List[str] = []
        for qualname, fn in sorted(graph.functions.items()):
            if fn.name == MODULE_BODY:
                continue
            if (
                fn.cls is None
                and config.is_worker_module(fn.module)
                and config.is_worker_entry(fn.name)
            ):
                # Pool worker entries are picklable module-level
                # functions; supervisor *methods* matching the pattern
                # are host-side and may use wall-clock timeouts.
                entries.append(qualname)
            elif config.is_kernel_module(fn.module) and config.is_kernel_function(
                fn.name
            ):
                entries.append(qualname)
        for entry in config.flow_entry_points:
            if entry in graph.functions:
                entries.append(entry)

        reachable, parents = graph.reachable_from(entries)
        out: List[Violation] = []
        for qualname in sorted(reachable):
            fn = graph.functions[qualname]
            if config.is_sim_module(fn.module):
                continue  # LVA001 already covers simulation modules.
            if config.is_flow_exempt(fn.module):
                continue
            info = ctx.modules.get(fn.module)
            if info is None or not isinstance(
                fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            chain = graph.call_chain(parents, qualname)
            for violation in self._scan_function(info, fn.node):
                out.append(
                    Violation(
                        rule_id=self.rule_id,
                        path=violation.path,
                        line=violation.line,
                        col=violation.col,
                        message=(
                            violation.message.replace(
                                " inside simulation code",
                                " on a worker-reachable path",
                            )
                            + f" [reachable via {chain}]"
                        ),
                    )
                )
        return iter(out)

    def _scan_function(
        self, info: ModuleInfo, node: ast.AST
    ) -> List[Violation]:
        """Run the LVA001 construct checks scoped to one function."""
        visitor = _DeterminismVisitor(self, info)
        # Seed module-level import aliases and set annotations so the
        # function-scoped walk resolves ``time.perf_counter`` etc.
        for top in ast.walk(info.tree):
            if isinstance(top, (ast.Import, ast.ImportFrom)):
                visitor.visit(top)
            elif isinstance(top, ast.AnnAssign):
                visitor.visit_AnnAssign(top)
        visitor.violations = []
        visitor.visit(node)
        return visitor.violations


__all__ = ["WorkerFlowRule"]
