"""LVA003 — hot-path discipline: slots dataclasses, allocation-lean methods.

The per-load fast path (PR 1's −44 % miss/train, −54 % probe wins) relies
on two properties that regress silently:

* dataclasses in the hot packages must declare ``slots=True`` — instance
  dicts cost both memory and attribute-lookup time, and a single new
  dataclass without slots re-introduces them;
* the per-load methods named in :attr:`AnalysisConfig.hot_methods` must
  not allocate per call: no lambdas, comprehensions, generator
  expressions or nested function definitions (each builds a new object
  every invocation on the hottest path in the library).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Tuple, Type

from repro.analysis import astutil
from repro.analysis.core import ModuleInfo, ProjectContext, Rule, Violation, register

#: Node types that allocate a closure/comprehension object per execution.
_ALLOCATING_NODES: Tuple[Type[ast.AST], ...] = (
    ast.Lambda,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)

_ALLOCATION_LABEL = {
    ast.Lambda: "a lambda",
    ast.ListComp: "a list comprehension",
    ast.SetComp: "a set comprehension",
    ast.DictComp: "a dict comprehension",
    ast.GeneratorExp: "a generator expression",
    ast.FunctionDef: "a nested function",
    ast.AsyncFunctionDef: "a nested function",
}


@register
class HotPathRule(Rule):
    """slots=True dataclasses and allocation-free per-load methods."""

    rule_id = "LVA003"
    title = "hot-path classes stay slim, per-load methods stay allocation-free"

    def check(self, info: ModuleInfo, ctx: ProjectContext) -> Iterator[Violation]:
        if not ctx.config.is_hotpath_module(info.module):
            return iter(())
        violations: List[Violation] = []
        hot_methods = frozenset(ctx.config.hot_methods)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            self._check_dataclass(info, node, violations)
            self._check_methods(info, node, hot_methods, violations)
        return iter(violations)

    def _check_dataclass(
        self, info: ModuleInfo, node: ast.ClassDef, out: List[Violation]
    ) -> None:
        decorator = astutil.dataclass_decorator(node)
        if decorator is None:
            return
        slots = astutil.decorator_keyword(decorator, "slots")
        if slots is None or not (
            isinstance(slots, ast.Constant) and slots.value is True
        ):
            out.append(
                self.violation(
                    info,
                    node,
                    f"dataclass '{node.name}' in a hot-path package must "
                    "declare slots=True (instance dicts cost memory and "
                    "attribute-lookup time on the per-load path)",
                )
            )

    def _check_methods(
        self,
        info: ModuleInfo,
        cls: ast.ClassDef,
        hot_methods: FrozenSet[str],
        out: List[Violation],
    ) -> None:
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            qualified = f"{cls.name}.{method.name}"
            if qualified not in hot_methods:
                continue
            for child in ast.walk(method):
                if child is method:
                    continue
                if isinstance(child, _ALLOCATING_NODES) or isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    out.append(
                        self.violation(
                            info,
                            child,
                            f"per-load method '{qualified}' allocates "
                            f"{_ALLOCATION_LABEL[type(child)]} on every call; "
                            "hoist it out of the hot path",
                        )
                    )
