"""LVA003 — hot-path discipline: slots dataclasses, allocation-lean methods.

The per-load fast path (PR 1's −44 % miss/train, −54 % probe wins) relies
on two properties that regress silently:

* dataclasses in the hot packages must declare ``slots=True`` — instance
  dicts cost both memory and attribute-lookup time, and a single new
  dataclass without slots re-introduces them;
* the per-load methods named in :attr:`AnalysisConfig.hot_methods` must
  not allocate per call: no lambdas, comprehensions, generator
  expressions or nested function definitions (each builds a new object
  every invocation on the hottest path in the library);
* the batch-contract functions of the vectorized replay kernels
  (``*_kernel``/``*_span`` names inside
  :attr:`AnalysisConfig.kernel_modules`) must stay whole-column numpy
  passes: no per-event Python loops or comprehensions, and no reads of
  per-event dataclass fields (``event.pc`` inside a kernel means the
  vectorisation quietly fell back to object-at-a-time access);
* predictor batch methods (``*_batch`` names per
  :attr:`AnalysisConfig.batch_method_suffixes` in hot-path packages)
  receive plain scalar columns — ``pcs``, ``addrs``, ``tokens`` — and
  must never read per-event dataclass fields. Unlike kernel functions
  they *may* loop: the scalar-fallback implementations iterate by
  design; the contract is only about what flows in, not how it is
  consumed.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Tuple, Type

from repro.analysis import astutil
from repro.analysis.core import ModuleInfo, ProjectContext, Rule, Violation, register

#: Node types that allocate a closure/comprehension object per execution.
_ALLOCATING_NODES: Tuple[Type[ast.AST], ...] = (
    ast.Lambda,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)

_ALLOCATION_LABEL = {
    ast.Lambda: "a lambda",
    ast.ListComp: "a list comprehension",
    ast.SetComp: "a set comprehension",
    ast.DictComp: "a dict comprehension",
    ast.GeneratorExp: "a generator expression",
    ast.FunctionDef: "a nested function",
    ast.AsyncFunctionDef: "a nested function",
}


@register
class HotPathRule(Rule):
    """slots=True dataclasses and allocation-free per-load methods."""

    rule_id = "LVA003"
    title = "hot-path classes stay slim, per-load methods stay allocation-free"

    def check(self, info: ModuleInfo, ctx: ProjectContext) -> Iterator[Violation]:
        if not ctx.config.is_hotpath_module(info.module):
            return iter(())
        violations: List[Violation] = []
        hot_methods = frozenset(ctx.config.hot_methods)
        event_fields = frozenset(ctx.config.event_fields)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            self._check_dataclass(info, node, violations)
            self._check_methods(info, node, hot_methods, violations)
            for method in node.body:
                if isinstance(method, ast.FunctionDef) and ctx.config.is_batch_method(
                    method.name
                ):
                    self._check_batch_method(
                        info, node, method, event_fields, violations
                    )
        if ctx.config.is_kernel_module(info.module):
            for stmt in info.tree.body:
                if isinstance(stmt, ast.FunctionDef) and ctx.config.is_kernel_function(
                    stmt.name
                ):
                    self._check_kernel_function(info, stmt, event_fields, violations)
        return iter(violations)

    def _check_kernel_function(
        self,
        info: ModuleInfo,
        fn: ast.FunctionDef,
        event_fields: FrozenSet[str],
        out: List[Violation],
    ) -> None:
        for child in ast.walk(fn):
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                out.append(
                    self.violation(
                        info,
                        child,
                        f"kernel function '{fn.name}' contains a per-event "
                        "Python loop; batch-contract functions must express "
                        "the pass as whole-column numpy operations",
                    )
                )
            elif isinstance(child, _ALLOCATING_NODES) and not isinstance(
                child, ast.Lambda
            ):
                out.append(
                    self.violation(
                        info,
                        child,
                        f"kernel function '{fn.name}' contains "
                        f"{_ALLOCATION_LABEL[type(child)]}; comprehensions "
                        "iterate per event — use whole-column numpy "
                        "operations instead",
                    )
                )
            elif (
                isinstance(child, ast.Attribute)
                and isinstance(child.ctx, ast.Load)
                and child.attr in event_fields
            ):
                out.append(
                    self.violation(
                        info,
                        child,
                        f"kernel function '{fn.name}' reads per-event field "
                        f"'.{child.attr}'; kernels operate on packed columns, "
                        "not event objects",
                    )
                )

    def _check_batch_method(
        self,
        info: ModuleInfo,
        cls: ast.ClassDef,
        method: ast.FunctionDef,
        event_fields: FrozenSet[str],
        out: List[Violation],
    ) -> None:
        """Batch methods consume scalar columns; an event-field read
        means an event object leaked across the batch boundary. Loops
        stay legal — the scalar fallbacks iterate by design."""
        for child in ast.walk(method):
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.ctx, ast.Load)
                and child.attr in event_fields
            ):
                out.append(
                    self.violation(
                        info,
                        child,
                        f"batch method '{cls.name}.{method.name}' reads "
                        f"per-event field '.{child.attr}'; batch methods "
                        "receive scalar columns (pcs, addrs, tokens), "
                        "never event objects",
                    )
                )

    def _check_dataclass(
        self, info: ModuleInfo, node: ast.ClassDef, out: List[Violation]
    ) -> None:
        decorator = astutil.dataclass_decorator(node)
        if decorator is None:
            return
        slots = astutil.decorator_keyword(decorator, "slots")
        if slots is None or not (
            isinstance(slots, ast.Constant) and slots.value is True
        ):
            out.append(
                self.violation(
                    info,
                    node,
                    f"dataclass '{node.name}' in a hot-path package must "
                    "declare slots=True (instance dicts cost memory and "
                    "attribute-lookup time on the per-load path)",
                )
            )

    def _check_methods(
        self,
        info: ModuleInfo,
        cls: ast.ClassDef,
        hot_methods: FrozenSet[str],
        out: List[Violation],
    ) -> None:
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            qualified = f"{cls.name}.{method.name}"
            if qualified not in hot_methods:
                continue
            for child in ast.walk(method):
                if child is method:
                    continue
                if isinstance(child, _ALLOCATING_NODES) or isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    out.append(
                        self.violation(
                            info,
                            child,
                            f"per-load method '{qualified}' allocates "
                            f"{_ALLOCATION_LABEL[type(child)]} on every call; "
                            "hoist it out of the hot path",
                        )
                    )
