"""LVA007 — environment influence must be declared and key-sound.

Every environment variable the code reads is a door through which the
outside world can change results. The repository's contract
(:mod:`repro.envspec`) classifies each ``REPRO_*`` variable:

* ``keyed`` — the value influences simulation results, so its canonical
  form must fold into the result-cache keys;
* ``neutral`` — the value changes *where/how* work happens but never
  *what* is computed, pinned by an equivalence test;
* ``capture-only`` — observability: may flow anywhere except into cache
  keys, pinned by a disabled-overhead test.

The rule enforces, whole-program:

1. every ``REPRO_*`` read resolves statically to a constant declared in
   the envspec module — literal strings and re-declared constants break
   the one-registry invariant, dynamic keys defeat the analysis;
2. a ``keyed`` variable's taint provably reaches a cache-key function
   (``*cache_key*`` / ``*disk_key*`` / ``point_key`` / ``trace_key``);
3. a ``neutral`` or ``capture-only`` variable's taint never reaches
   one, and the variable carries a pinning-test pointer.
"""

from __future__ import annotations

import importlib
from typing import Dict, Iterator, List, Tuple

from repro.analysis.core import ModuleInfo, ProjectContext, Rule, Violation, register
from repro.analysis.flow import FlowAnalysis, flow_analysis
from repro.analysis.flow.graphs import EnvRead, short_name


def _load_registry(ctx: ProjectContext) -> Dict[str, Tuple[str, str, str]]:
    """Var name -> (classification, pinned_by, keyed_via)."""
    config = ctx.config
    if config.env_registry:
        return {
            name: (classification, pinned_by, keyed_via)
            for name, classification, pinned_by, keyed_via in config.env_registry
        }
    try:
        module = importlib.import_module(config.envspec_module)
    except ImportError:
        return {}
    registry: Dict[str, Tuple[str, str, str]] = {}
    for var in module.all_vars():
        registry[var.name] = (
            var.classification,
            var.pinned_by or "",
            var.keyed_via or "",
        )
    return registry


@register
class EnvFlowRule(Rule):
    """Env reads must be registered; influence must match classification."""

    rule_id = "LVA007"
    title = "environment influence must be declared and key-sound"

    def check(self, info: ModuleInfo, ctx: ProjectContext) -> Iterator[Violation]:
        return iter(())

    def finish(self, ctx: ProjectContext) -> Iterator[Violation]:
        flow = flow_analysis(ctx)
        registry = _load_registry(ctx)
        prefix = ctx.config.env_prefix
        envspec_module = ctx.config.envspec_module

        out: List[Violation] = []
        reads_by_var: Dict[str, List[EnvRead]] = {}
        for read in flow.env_reads:
            info = ctx.modules.get(read.module)
            if info is None or read.module == envspec_module:
                continue
            if read.source == "external":
                # A constant imported from outside the linted tree: the
                # whole-tree run verifies it; partial runs trust it.
                continue
            if read.var is None:
                out.append(
                    self.violation(
                        info,
                        read.node,
                        "environment read with a key lva-lint cannot resolve "
                        f"statically; read through a {envspec_module} constant",
                    )
                )
                continue
            if not read.var.startswith(prefix):
                continue
            reads_by_var.setdefault(read.var, []).append(read)
            if read.var not in registry:
                out.append(
                    self.violation(
                        info,
                        read.node,
                        f"environment variable {read.var} is not declared in "
                        f"{envspec_module}; register it with a classification "
                        "(keyed | neutral | capture-only)",
                    )
                )
                continue
            if read.source == "literal":
                out.append(
                    self.violation(
                        info,
                        read.node,
                        f"{read.var} read via a string literal; read through "
                        f"the {envspec_module} constant so the declaration "
                        "and the use stay linked",
                    )
                )
            elif read.source == "constant" and read.declared_in != envspec_module:
                out.append(
                    self.violation(
                        info,
                        read.node,
                        f"{read.var} resolves to a constant declared in "
                        f"{read.declared_in}, not {envspec_module}; alias the "
                        "envspec constant instead of re-declaring the literal",
                    )
                )

        for var, reads in sorted(reads_by_var.items()):
            if var not in registry:
                continue
            classification, pinned_by, keyed_via = registry[var]
            anchor = min(
                reads,
                key=lambda read: (
                    ctx.modules[read.module].path,
                    getattr(read.node, "lineno", 1),
                    getattr(read.node, "col_offset", 0),
                ),
            )
            info = ctx.modules[anchor.module]
            sinks = flow.key_sink_hits.get(var, set())
            if classification == "keyed":
                if not sinks:
                    via = f" via {keyed_via}" if keyed_via else ""
                    out.append(
                        self.violation(
                            info,
                            anchor.node,
                            f"keyed env var {var} never provably reaches a "
                            f"cache-key function{via}; keyed influence must "
                            "fold into point/trace keys",
                        )
                    )
                continue
            if sinks:
                names = ", ".join(sorted(short_name(sink) for sink in sinks))
                out.append(
                    self.violation(
                        info,
                        anchor.node,
                        f"{classification} env var {var} taints cache-key "
                        f"function(s) {names}; reclassify it as keyed or "
                        "remove the influence",
                    )
                )
            if not pinned_by:
                out.append(
                    self.violation(
                        info,
                        anchor.node,
                        f"{classification} env var {var} has no pinning test "
                        "(pinned_by); point its declaration at the test that "
                        "proves result-neutrality",
                    )
                )
        return iter(out)


__all__ = ["EnvFlowRule", "FlowAnalysis"]
