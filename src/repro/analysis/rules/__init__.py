"""Rule modules; importing this package registers every rule.

Adding a rule: create a module here with a ``Rule`` subclass decorated
with :func:`repro.analysis.core.register`, then import it below. See
``docs/static-analysis.md`` for the full walk-through.
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    cachekey,
    determinism,
    envflow,
    hotpath,
    mmapflow,
    statscheck,
    telemetry,
    workerflow,
    workers,
)

__all__ = [
    "cachekey",
    "determinism",
    "envflow",
    "hotpath",
    "mmapflow",
    "statscheck",
    "telemetry",
    "workerflow",
    "workers",
]
