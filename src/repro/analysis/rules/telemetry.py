"""LVA006 — telemetry on the hot path must be guarded hook calls.

The telemetry subsystem's contract is zero overhead when disabled: the
simulator resolves its hook once at construction (``self._tel =
sim_hook()`` — ``None`` when telemetry is off) and the per-load methods
only touch it behind an ``if self._tel is not None:`` guard. Two drift
modes silently break that contract:

* a hook call (``self._tel.on_load(...)``) added to a hot method without
  the ``is not None`` guard crashes every disabled-mode run — or worse,
  gets "fixed" with a per-call ``getattr`` dance;
* a *module-level* telemetry call (``telemetry.metrics()``,
  ``sim_hook()``) inside a hot method re-resolves configuration on every
  load, paying dict lookups and env reads per event even when telemetry
  is off.

The rule checks the methods named in :attr:`AnalysisConfig.hot_methods`
(inside :attr:`AnalysisConfig.hotpath_packages`): calls on the hook
attributes (:attr:`AnalysisConfig.telemetry_hook_attrs`) must sit inside
a guard on that same attribute, and names imported from
:attr:`AnalysisConfig.telemetry_modules` must not be called at all.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List

from repro.analysis.config import in_packages
from repro.analysis.core import ModuleInfo, ProjectContext, Rule, Violation, register


def _telemetry_aliases(
    tree: ast.Module, telemetry_modules: tuple
) -> Dict[str, str]:
    """Local name -> telemetry origin, from the module's import statements."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if in_packages(item.name, telemetry_modules):
                    aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None:
                continue
            for item in node.names:
                full = f"{node.module}.{item.name}"
                if in_packages(full, telemetry_modules) or in_packages(
                    node.module, telemetry_modules
                ):
                    aliases[item.asname or item.name] = full
    return aliases


def _hook_attr(node: ast.AST, hook_attrs: FrozenSet[str]) -> str:
    """The hook name when ``node`` is ``self.<hook>``, else ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in hook_attrs
    ):
        return node.attr
    return ""


def _guarded_hooks(test: ast.expr, hook_attrs: FrozenSet[str]) -> FrozenSet[str]:
    """Hook names proven non-None by an ``if`` test.

    Recognises ``self._tel is not None``, plain truthiness
    (``if self._tel:``) and ``and``-conjunctions of those.
    """
    name = _hook_attr(test, hook_attrs)
    if name:
        return frozenset((name,))
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        name = _hook_attr(test.left, hook_attrs)
        if name:
            return frozenset((name,))
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        guarded: FrozenSet[str] = frozenset()
        for value in test.values:
            guarded = guarded | _guarded_hooks(value, hook_attrs)
        return guarded
    return frozenset()


@register
class TelemetryHotPathRule(Rule):
    """Hot-path telemetry goes through a guarded, pre-resolved hook."""

    rule_id = "LVA006"
    title = "hot-path telemetry must be guarded hook calls, not module API"

    def check(self, info: ModuleInfo, ctx: ProjectContext) -> Iterator[Violation]:
        if not ctx.config.is_hotpath_module(info.module):
            return iter(())
        hook_attrs = frozenset(ctx.config.telemetry_hook_attrs)
        hot_methods = frozenset(ctx.config.hot_methods)
        aliases = _telemetry_aliases(
            info.tree, tuple(ctx.config.telemetry_modules)
        )
        violations: List[Violation] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for method in node.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                qualified = f"{node.name}.{method.name}"
                if qualified not in hot_methods:
                    continue
                for stmt in method.body:
                    self._scan(
                        stmt,
                        frozenset(),
                        qualified,
                        hook_attrs,
                        aliases,
                        info,
                        violations,
                    )
        return iter(violations)

    def _scan(
        self,
        node: ast.AST,
        guarded: FrozenSet[str],
        qualified: str,
        hook_attrs: FrozenSet[str],
        aliases: Dict[str, str],
        info: ModuleInfo,
        out: List[Violation],
    ) -> None:
        if isinstance(node, ast.If):
            newly = _guarded_hooks(node.test, hook_attrs)
            self._scan_expr(
                node.test, guarded, qualified, hook_attrs, aliases, info, out
            )
            for stmt in node.body:
                self._scan(
                    stmt, guarded | newly, qualified, hook_attrs, aliases, info, out
                )
            for stmt in node.orelse:
                self._scan(stmt, guarded, qualified, hook_attrs, aliases, info, out)
            return
        self._scan_expr(node, guarded, qualified, hook_attrs, aliases, info, out)
        for child in ast.iter_child_nodes(node):
            self._scan(child, guarded, qualified, hook_attrs, aliases, info, out)

    def _scan_expr(
        self,
        node: ast.AST,
        guarded: FrozenSet[str],
        qualified: str,
        hook_attrs: FrozenSet[str],
        aliases: Dict[str, str],
        info: ModuleInfo,
        out: List[Violation],
    ) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if isinstance(func, ast.Attribute):
            hook = _hook_attr(func.value, hook_attrs)
            if hook and hook not in guarded:
                out.append(
                    self.violation(
                        info,
                        node,
                        f"hot method '{qualified}' calls self.{hook}."
                        f"{func.attr}() without an 'if self.{hook} is not "
                        "None' guard (disabled telemetry sets the hook to "
                        "None; unguarded calls crash or cost per load)",
                    )
                )
                return
            root = func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in aliases:
                out.append(
                    self.violation(
                        info,
                        node,
                        f"hot method '{qualified}' calls the telemetry "
                        f"module API ({aliases[root.id]}); resolve a hook "
                        "once in __init__ and call it behind a None guard",
                    )
                )
        elif isinstance(func, ast.Name) and func.id in aliases:
            out.append(
                self.violation(
                    info,
                    node,
                    f"hot method '{qualified}' calls {aliases[func.id]}() "
                    "per load; resolve the hook once in __init__ instead",
                )
            )
