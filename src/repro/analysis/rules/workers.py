"""LVA004 — worker safety across the ``ProcessPoolExecutor`` boundary.

Sweep points execute in pool workers; anything crossing the process
boundary is pickled, and worker results must not depend on hidden state
accumulated inside a (reused) worker process. The rule enforces:

* callables handed to ``.submit(...)`` / ``.map(...)`` or installed as a
  pool ``initializer=`` must be module-level functions — lambdas and
  functions defined inside another function capture their closure and
  either fail to pickle or silently rebind;
* worker entry points (functions matching
  :attr:`AnalysisConfig.worker_entry_patterns` inside
  :attr:`AnalysisConfig.worker_modules`) must not declare ``global`` —
  mutating module state from a worker makes results depend on which
  points a reused worker happened to run before.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.core import ModuleInfo, ProjectContext, Rule, Violation, register


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function (closures)."""
    nested: Set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                walk(child, True)
            else:
                walk(child, inside_function)

    walk(tree, False)
    return nested


@register
class WorkerSafetyRule(Rule):
    """Only module-level functions cross the process-pool boundary."""

    rule_id = "LVA004"
    title = "pool workers get picklable functions and no module-state mutation"

    def check(self, info: ModuleInfo, ctx: ProjectContext) -> Iterator[Violation]:
        violations: List[Violation] = []
        nested = _nested_function_names(info.tree)
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Call):
                self._check_call(info, node, nested, violations)
        if ctx.config.is_worker_module(info.module):
            self._check_worker_entries(info, ctx, violations)
        return iter(violations)

    def _check_call(
        self,
        info: ModuleInfo,
        node: ast.Call,
        nested: Set[str],
        out: List[Violation],
    ) -> None:
        candidates: List[ast.expr] = []
        context = ""
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "submit",
            "map",
        ):
            if node.args:
                candidates.append(node.args[0])
            context = f".{node.func.attr}()"
        else:
            callee = node.func
            name = (
                callee.attr
                if isinstance(callee, ast.Attribute)
                else callee.id
                if isinstance(callee, ast.Name)
                else None
            )
            if name == "ProcessPoolExecutor":
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        candidates.append(keyword.value)
                context = "ProcessPoolExecutor(initializer=...)"
        for candidate in candidates:
            if isinstance(candidate, ast.Lambda):
                out.append(
                    self.violation(
                        info,
                        candidate,
                        f"lambda passed to {context} cannot cross the process "
                        "boundary (unpicklable); use a module-level function",
                    )
                )
            elif isinstance(candidate, ast.Name) and candidate.id in nested:
                out.append(
                    self.violation(
                        info,
                        candidate,
                        f"locally-defined function '{candidate.id}' passed to "
                        f"{context} captures its closure and does not pickle; "
                        "move it to module level",
                    )
                )

    def _check_worker_entries(
        self, info: ModuleInfo, ctx: ProjectContext, out: List[Violation]
    ) -> None:
        for node in info.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if not ctx.config.is_worker_entry(node.name):
                continue
            for child in ast.walk(node):
                if isinstance(child, ast.Global):
                    out.append(
                        self.violation(
                            info,
                            child,
                            f"worker entry point '{node.name}' mutates "
                            "module-level state via 'global'; results would "
                            "depend on which points a reused worker ran before",
                        )
                    )
