"""LVA005 — counters written must be declared, counters declared must be written.

Every ``*Stats`` dataclass (``SimulationStats``, ``CacheStats``,
``MSHRStats``, ...) is a contract between the simulators that increment
its counters and the reports that read them. Two failure modes drift in
silently:

* a simulator increments ``self.stats.covered_missess`` (typo, or a
  counter that was renamed) — with ``slots=True`` this raises at runtime,
  without it the count vanishes into a fresh attribute;
* a counter is declared but no simulator ever updates it — the report
  column reads 0 forever and looks like a measurement.

The rule indexes every dataclass whose name ends in ``Stats`` across the
project, records every ``<expr>.stats.<counter>`` write (``+=``, ``=``,
and container mutations like ``.add(...)``/``.append(...)``), resolves
``self.stats`` to a concrete Stats class through the enclosing class's
``self.stats = XStats()`` binding when possible, and reports both
directions. Scope: :meth:`AnalysisConfig.effective_stats_packages`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis import astutil
from repro.analysis.core import ModuleInfo, ProjectContext, Rule, Violation, register

_CACHE_SLOT = "LVA005.index"

#: Container-mutation methods that count as updating a counter field.
_MUTATORS = ("add", "append", "update", "discard", "remove", "extend", "pop", "clear")


@dataclass(slots=True)
class _StatsClass:
    """One ``*Stats`` dataclass declaration."""

    name: str
    module: str
    path: str
    line: int
    #: field name -> (declaration line, annotation base).
    fields: Dict[str, Tuple[int, Optional[str]]]
    properties: Set[str] = field(default_factory=set)

    def counter_fields(self) -> Dict[str, int]:
        """Numeric fields that must have at least one write site."""
        return {
            name: line
            for name, (line, base) in self.fields.items()
            if base in ("int", "float")
        }


@dataclass(slots=True)
class _Index:
    """Project-wide Stats declarations plus accumulated write sites."""

    classes: Dict[str, _StatsClass] = field(default_factory=dict)
    all_fields: Set[str] = field(default_factory=set)
    written: Set[str] = field(default_factory=set)


def _build_index(ctx: ProjectContext) -> _Index:
    cached = ctx.caches.get(_CACHE_SLOT)
    if cached is not None:
        return cached  # type: ignore[return-value]
    index = _Index()
    for info in ctx.ordered():
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Stats"):
                continue
            if astutil.dataclass_decorator(node) is None:
                continue
            stats_class = _StatsClass(
                name=node.name,
                module=info.module,
                path=info.path,
                line=node.lineno,
                fields=astutil.class_fields(node),
                properties=set(astutil.property_names(node)),
            )
            index.classes[node.name] = stats_class
            index.all_fields |= set(stats_class.fields)
    ctx.caches[_CACHE_SLOT] = index
    return index


def _stats_binding(cls: ast.ClassDef, index: _Index) -> Optional[str]:
    """The Stats class assigned to ``self.stats`` in ``cls``, if unique."""
    bound: Set[str] = set()
    for node in ast.walk(cls):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "stats"
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(value, ast.Call)
            ):
                callee = astutil.terminal_name(value.func)
                if callee is not None and callee in index.classes:
                    bound.add(callee)
    if len(bound) == 1:
        return bound.pop()
    return None


def _counter_write(node: ast.AST) -> Optional[Tuple[str, bool, ast.AST]]:
    """Detect a ``<expr>.stats.<counter>`` update.

    Returns (counter name, is_self_stats, anchor node) or None. Handles
    ``x.stats.c += 1``, ``x.stats.c = v`` and ``x.stats.c.add(v)``.
    """
    target: Optional[ast.expr] = None
    if isinstance(node, ast.AugAssign):
        target = node.target
    elif isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATORS
    ):
        target = node.func.value
    if not isinstance(target, ast.Attribute):
        return None
    holder = target.value
    if isinstance(holder, ast.Attribute) and holder.attr == "stats":
        is_self = isinstance(holder.value, ast.Name) and holder.value.id == "self"
        return target.attr, is_self, target
    if isinstance(holder, ast.Name) and holder.id == "stats":
        # Hot paths hoist ``stats = self.stats`` into a local; writes
        # through the alias still count (checked against the field union).
        return target.attr, False, target
    return None


@register
class StatsConsistencyRule(Rule):
    """Two-way check between Stats declarations and counter writes."""

    rule_id = "LVA005"
    # check() accumulates the project-wide Stats index that finish()
    # consumes, so it must visit every module on every run.
    incremental_safe = False
    title = "stats counters: writes match declarations, declarations are written"

    def check(self, info: ModuleInfo, ctx: ProjectContext) -> Iterator[Violation]:
        index = _build_index(ctx)
        if not ctx.config.is_stats_module(info.module):
            return iter(())
        violations: List[Violation] = []
        for cls in ast.walk(info.tree):
            if isinstance(cls, ast.ClassDef):
                bound = _stats_binding(cls, index)
                for node in ast.walk(cls):
                    self._check_write(info, index, node, bound, violations)
        # Module-level writes outside any class (rare, but keep them honest).
        for node in info.tree.body:
            if not isinstance(node, ast.ClassDef):
                for child in ast.walk(node):
                    self._check_write(info, index, child, None, violations)
        return iter(violations)

    def _check_write(
        self,
        info: ModuleInfo,
        index: _Index,
        node: ast.AST,
        bound_class: Optional[str],
        out: List[Violation],
    ) -> None:
        write = _counter_write(node)
        if write is None:
            return
        counter, is_self, anchor = write
        index.written.add(counter)
        if is_self and bound_class is not None:
            stats_class = index.classes[bound_class]
            if counter not in stats_class.fields:
                out.append(
                    self.violation(
                        info,
                        anchor,
                        f"write to 'self.stats.{counter}' but {bound_class} "
                        f"declares no field '{counter}' — undeclared counters "
                        "never reach reports",
                    )
                )
        elif counter not in index.all_fields:
            out.append(
                self.violation(
                    info,
                    anchor,
                    f"write to '.stats.{counter}' matches no field of any "
                    "known *Stats dataclass — undeclared counters never "
                    "reach reports",
                )
            )

    def finish(self, ctx: ProjectContext) -> Iterator[Violation]:
        index = _build_index(ctx)
        violations: List[Violation] = []
        for stats_class in index.classes.values():
            if not ctx.config.is_stats_module(stats_class.module):
                continue
            for counter, line in sorted(stats_class.counter_fields().items()):
                if counter not in index.written:
                    violations.append(
                        Violation(
                            rule_id=self.rule_id,
                            path=stats_class.path,
                            line=line,
                            col=1,
                            message=(
                                f"counter '{stats_class.name}.{counter}' is "
                                "declared but never updated by any simulator — "
                                "its report column would read 0 forever"
                            ),
                        )
                    )
        return iter(violations)
