"""SARIF 2.1.0 output for ``lva-lint`` (``--sarif``).

One run, one tool (``lva-lint``), one result per violation. The file is
deliberately minimal — rule ids with titles, message text, and a
physical location with line/column — which is all code-scanning UIs
need to annotate a pull request. Ordering mirrors the text report
(path, line, col, rule id) so the artifact is byte-stable for a given
tree.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.analysis.core import Violation, all_rules
from repro.analysis.engine import STALE_IGNORE_RULE_ID, SYNTAX_RULE_ID

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Titles for the engine-level pseudo-rules that have no Rule class.
_PSEUDO_RULES = {
    SYNTAX_RULE_ID: "file does not parse",
    STALE_IGNORE_RULE_ID: "stale suppression comment",
}


def _rule_titles() -> Dict[str, str]:
    titles = dict(_PSEUDO_RULES)
    for rule in all_rules():
        titles[rule.rule_id] = rule.title
    return titles


def to_sarif(violations: Iterable[Violation], tool_version: str = "0") -> dict:
    """The SARIF log object for a finished run."""
    ordered = sorted(violations, key=Violation.sort_key)
    titles = _rule_titles()
    used = sorted({v.rule_id for v in ordered} | set(titles))
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": titles.get(rule_id, rule_id)},
        }
        for rule_id in used
    ]
    results: List[dict] = []
    for violation in ordered:
        results.append(
            {
                "ruleId": violation.rule_id,
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path.replace("\\", "/"),
                            },
                            "region": {
                                "startLine": violation.line,
                                "startColumn": violation.col,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "lva-lint",
                        "version": tool_version,
                        "informationUri": "docs/static-analysis.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(violations: Iterable[Violation], tool_version: str = "0") -> str:
    """The SARIF log serialized with stable key order."""
    return json.dumps(to_sarif(violations, tool_version), indent=2, sort_keys=True) + "\n"


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif", "to_sarif"]
