"""Rule framework: violations, parsed modules, suppressions, registry.

A :class:`Rule` inspects one parsed module at a time (with the whole
project visible through :class:`ProjectContext` for cross-module rules
like LVA005) and yields :class:`Violation` records. Suppressions are
ordinary comments — ``# lva: ignore[LVA001]`` silences named rules on
that line, ``# lva: ignore`` silences everything — parsed with
:mod:`tokenize` so string literals that merely *contain* the marker do
not count.
"""

from __future__ import annotations

import abc
import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple, Type

from repro.analysis.config import AnalysisConfig

#: Matches the suppression marker inside a comment token.
_SUPPRESS_RE = re.compile(r"#\s*lva:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")

#: The blanket marker silences every rule on its line.
_ALL_RULES = frozenset({"*"})


@dataclass(frozen=True, slots=True)
class Violation:
    """One rule hit, anchored to a file position."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` — the clickable report form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


def _parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule ids silenced there (``{"*"}`` = all)."""
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            names = match.group(1)
            if names is None:
                silenced = _ALL_RULES
            else:
                silenced = frozenset(
                    name.strip().upper() for name in names.split(",") if name.strip()
                )
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | silenced
    except (tokenize.TokenError, IndentationError):
        # Unparseable comment stream: no suppressions, the rules still run
        # (the AST parse either succeeded already or failed loudly).
        return suppressions
    return suppressions


@dataclass(slots=True)
class ModuleInfo:
    """One parsed source module, ready for rule visitors."""

    module: str
    path: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, module: str, path: str) -> "ModuleInfo":
        """Parse ``source``; raises SyntaxError with the path attached."""
        tree = ast.parse(source, filename=path)
        return cls(
            module=module,
            path=path,
            source=source,
            tree=tree,
            suppressions=_parse_suppressions(source),
        )

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        silenced = self.suppressions.get(line)
        if silenced is None:
            return False
        return "*" in silenced or rule_id.upper() in silenced


class ProjectContext:
    """Everything the rules may look at: all modules plus the scope config."""

    def __init__(
        self, modules: List[ModuleInfo], config: AnalysisConfig
    ) -> None:
        self.config = config
        self.modules: Dict[str, ModuleInfo] = {info.module: info for info in modules}
        #: Scratch space for cross-module rule indexes, keyed by rule id.
        self.caches: Dict[str, object] = {}

    def ordered(self) -> List[ModuleInfo]:
        return sorted(self.modules.values(), key=lambda info: info.path)


class Rule(abc.ABC):
    """Base class for one lint rule.

    Subclasses set ``rule_id``/``title`` and implement :meth:`check`,
    yielding raw violations; the engine applies suppressions afterwards.
    """

    rule_id: str = ""
    title: str = ""
    #: False when :meth:`check` feeds a cross-module index that
    #: :meth:`finish` consumes (LVA005): the incremental runner must
    #: then run ``check`` over *every* module, not just changed ones.
    incremental_safe: bool = True

    @abc.abstractmethod
    def check(self, info: ModuleInfo, ctx: ProjectContext) -> Iterator[Violation]:
        """Yield violations found in one module."""

    def finish(self, ctx: ProjectContext) -> Iterator[Violation]:
        """Yield project-level violations after every module was checked.

        Cross-module rules (LVA005's "declared but never written"
        direction) report here, once all write sites are known.
        """
        return iter(())

    def violation(
        self, info: ModuleInfo, node: ast.AST, message: str
    ) -> Violation:
        """Convenience constructor anchored at an AST node."""
        return Violation(
            rule_id=self.rule_id,
            path=info.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules(
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
) -> List[Rule]:
    """Instantiate the registered rules, honouring select/ignore sets."""
    # Rule modules register themselves on import.
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    instances: List[Rule] = []
    for rule_id in sorted(_REGISTRY):
        if select is not None and rule_id not in select:
            continue
        if ignore is not None and rule_id in ignore:
            continue
        instances.append(_REGISTRY[rule_id]())
    return instances


def rule_ids() -> List[str]:
    """The registered rule ids, sorted."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return sorted(_REGISTRY)
