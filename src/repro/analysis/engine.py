"""Lint engine: file discovery, module naming, rule execution.

Three entry points share one pipeline:

* :func:`run_paths` — lint files/directories on disk (the ``lva-lint``
  CLI and the pytest self-clean gate);
* :func:`check_source` / :func:`check_sources` — lint in-memory snippets
  under a chosen dotted module name (the fixture tests);
* :func:`run_modules` — lint pre-built :class:`ModuleInfo` objects.

Module names are derived from the filesystem: the engine walks up from
each file through directories containing ``__init__.py``, so
``src/repro/mem/cache.py`` lints as ``repro.mem.cache`` wherever the
source tree is checked out.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.core import (
    ModuleInfo,
    ProjectContext,
    Violation,
    all_rules,
)

#: Rule id used for files that fail to parse at all.
SYNTAX_RULE_ID = "LVA000"

#: Rule id used for suppression comments that no longer suppress anything.
STALE_IGNORE_RULE_ID = "LVA900"


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, walking up through packages."""
    resolved = path.resolve()
    parts: List[str] = [resolved.stem]
    current = resolved.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    if parts[0] == "__init__":
        parts = parts[1:] or [resolved.parent.name]
    return ".".join(reversed(parts))


def discover_files(paths: Iterable[str]) -> List[Tuple[Path, str]]:
    """Expand files/directories into (path, display path) pairs, sorted."""
    found: Dict[Path, str] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                found[candidate.resolve()] = os.path.normpath(str(candidate))
        elif path.suffix == ".py":
            found[path.resolve()] = os.path.normpath(str(path))
    return sorted(found.items(), key=lambda item: item[1])


def load_modules(
    files: Iterable[Tuple[Path, str]]
) -> Tuple[List[ModuleInfo], List[Violation]]:
    """Parse files into ModuleInfos; unparseable files become LVA000."""
    infos: List[ModuleInfo] = []
    errors: List[Violation] = []
    for path, display in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            errors.append(
                Violation(SYNTAX_RULE_ID, display, 1, 1, f"unreadable file: {exc}")
            )
            continue
        try:
            infos.append(
                ModuleInfo.from_source(source, module_name_for(path), display)
            )
        except SyntaxError as exc:
            errors.append(
                Violation(
                    SYNTAX_RULE_ID,
                    display,
                    exc.lineno or 1,
                    (exc.offset or 0) + 1,
                    f"syntax error: {exc.msg}",
                )
            )
    return infos, errors


def run_modules_raw(
    infos: List[ModuleInfo],
    config: AnalysisConfig = DEFAULT_CONFIG,
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
) -> List[Violation]:
    """Run the (selected) rules; sorted, deduped, suppressions NOT applied.

    The pre-suppression view feeds :func:`stale_suppressions`, which has
    to know what a ``# lva: ignore`` comment *would* have silenced.
    """
    ctx = ProjectContext(infos, config)
    raw: List[Violation] = []
    for rule in all_rules(select=select, ignore=ignore):
        for info in ctx.ordered():
            raw.extend(rule.check(info, ctx))
        raw.extend(rule.finish(ctx))
    return sorted(set(raw), key=Violation.sort_key)


def apply_suppressions(
    raw: Iterable[Violation], infos: Iterable[ModuleInfo]
) -> List[Violation]:
    """Drop violations silenced by ``# lva: ignore`` comments; sorted."""
    by_path = {info.path: info for info in infos}
    kept: List[Violation] = []
    for violation in raw:
        info = by_path.get(violation.path)
        if info is not None and info.is_suppressed(violation.line, violation.rule_id):
            continue
        kept.append(violation)
    return sorted(kept, key=Violation.sort_key)


def stale_suppressions(
    infos: List[ModuleInfo], raw: Iterable[Violation]
) -> List[Violation]:
    """Report ``# lva: ignore`` comments that no longer silence anything.

    ``raw`` must be the *pre-suppression* report (:func:`run_modules_raw`)
    over the same modules with the full rule set — a suppression is stale
    exactly when no raw violation at its line carries a rule id it names
    (or, for blanket ignores, when the line is clean altogether).
    """
    hits: Dict[Tuple[str, int], set] = {}
    for violation in raw:
        hits.setdefault((violation.path, violation.line), set()).add(
            violation.rule_id
        )
    out: List[Violation] = []
    for info in infos:
        for line, silenced in sorted(info.suppressions.items()):
            present = hits.get((info.path, line), set())
            if "*" in silenced:
                if not present:
                    out.append(
                        Violation(
                            STALE_IGNORE_RULE_ID,
                            info.path,
                            line,
                            1,
                            "stale blanket suppression: no rule triggers on "
                            "this line; delete the '# lva: ignore' comment",
                        )
                    )
                continue
            stale = sorted(silenced - present)
            if stale:
                names = ", ".join(stale)
                out.append(
                    Violation(
                        STALE_IGNORE_RULE_ID,
                        info.path,
                        line,
                        1,
                        f"stale suppression of [{names}]: the rule(s) no "
                        "longer trigger on this line; narrow or delete the "
                        "'# lva: ignore' comment",
                    )
                )
    return sorted(out, key=Violation.sort_key)


def run_modules(
    infos: List[ModuleInfo],
    config: AnalysisConfig = DEFAULT_CONFIG,
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
) -> List[Violation]:
    """Run the (selected) rules over pre-parsed modules; sorted, deduped."""
    raw = run_modules_raw(infos, config, select=select, ignore=ignore)
    return apply_suppressions(raw, infos)


def run_paths(
    paths: Iterable[str],
    config: AnalysisConfig = DEFAULT_CONFIG,
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
) -> List[Violation]:
    """Lint files/directories on disk."""
    infos, errors = load_modules(discover_files(paths))
    return sorted(
        errors + run_modules(infos, config, select=select, ignore=ignore),
        key=Violation.sort_key,
    )


def check_sources(
    sources: Dict[str, str],
    config: AnalysisConfig = DEFAULT_CONFIG,
    select: Optional[FrozenSet[str]] = None,
) -> List[Violation]:
    """Lint in-memory snippets: dotted module name -> source text.

    The display path is ``<module>`` so fixture tests can assert on it.
    """
    infos = [
        ModuleInfo.from_source(source, module, f"<{module}>")
        for module, source in sorted(sources.items())
    ]
    return run_modules(infos, config, select=select)


def check_source(
    source: str,
    module: str = "repro.sim.snippet",
    config: AnalysisConfig = DEFAULT_CONFIG,
    select: Optional[FrozenSet[str]] = None,
) -> List[Violation]:
    """Lint one in-memory snippet under the given dotted module name."""
    return check_sources({module: source}, config, select=select)
