"""Fixed-capacity FIFO history buffers (the GHB and LHBs of Figure 3).

The global history buffer (GHB) stores the precise values loaded by the most
recent load instructions; it provides global context for the table index
hash. Each approximator-table entry additionally holds a local history
buffer (LHB) of the values that followed that entry's context pattern.
Both are plain FIFO queues, modelled here by one class.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Tuple, Union

from repro.errors import ConfigurationError

Number = Union[int, float]


class HistoryBuffer:
    """A fixed-capacity FIFO of load values.

    Pushing to a full buffer evicts the oldest value, exactly like a
    hardware shift register. A capacity of zero is legal (the baseline GHB
    has zero entries) and makes the buffer a permanent no-op.
    """

    __slots__ = ("_capacity", "_values")

    def __init__(self, capacity: int, initial: Iterable[Number] = ()) -> None:
        if capacity < 0:
            raise ConfigurationError(f"history capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._values: "deque[Number]" = deque(maxlen=capacity or None)
        if capacity == 0:
            # A zero-capacity deque(maxlen=None) would grow; guard manually.
            self._values = deque(maxlen=0)
        for value in initial:
            self.push(value)

    @property
    def capacity(self) -> int:
        """Maximum number of values retained."""
        return self._capacity

    def push(self, value: Number) -> None:
        """Insert ``value`` as the newest entry, evicting the oldest if full."""
        if self._capacity == 0:
            return
        self._values.append(value)

    def values(self) -> Tuple[Number, ...]:
        """The retained values, oldest first (an immutable copy)."""
        return tuple(self._values)

    def view(self) -> "deque[Number]":
        """The underlying deque, oldest first — **read-only** by contract.

        Exists for the per-miss hot path, which applies a computation
        function to the LHB on every approximator lookup; :meth:`values`
        would copy into a fresh tuple each time.
        """
        return self._values

    def newest(self) -> Number:
        """The most recently pushed value.

        Raises:
            IndexError: if the buffer is empty.
        """
        return self._values[-1]

    def clear(self) -> None:
        """Discard all retained values (used when a table entry is re-allocated)."""
        self._values.clear()

    @property
    def is_full(self) -> bool:
        """True when the buffer holds ``capacity`` values."""
        return len(self._values) == self._capacity

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Number]:
        return iter(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    def __repr__(self) -> str:
        return f"HistoryBuffer(capacity={self._capacity}, values={list(self._values)})"
