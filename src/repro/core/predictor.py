"""Deprecated home of the idealized LVP baseline.

The implementation moved to :mod:`repro.predictors.lvp` when the
pluggable predictor registry (:mod:`repro.predictors`) was introduced;
this module re-exports the public names behind :class:`DeprecationWarning`
shims so pre-registry imports keep working for one deprecation cycle.
Each name warns exactly once per process and resolves to the *same*
object the registry serves.
"""

from __future__ import annotations

import warnings
from typing import Any, List, Set

#: Names this module still serves from their new home.
_MOVED = (
    "IdealizedLoadValuePredictor",
    "PredictionDecision",
    "PredictionToken",
    "PredictorStats",
    "Number",
)

#: Names already warned about (one warning per name per process).
_warned: Set[str] = set()


def __getattr__(name: str) -> Any:
    if name in _MOVED:
        if name not in _warned:
            _warned.add(name)
            warnings.warn(
                f"repro.core.predictor.{name} is deprecated; import it from "
                "repro.predictors.lvp (or resolve it through the "
                "repro.predictors registry)",
                DeprecationWarning,
                stacklevel=2,
            )
        from repro.predictors import lvp

        return getattr(lvp, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_MOVED))
