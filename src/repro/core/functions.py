"""LHB computation functions ``f(LHB)`` (Section III-A).

A computational approximator derives the estimate from the values in the
entry's local history buffer. The paper evaluated average, stride and delta
variants and found a plain average the most accurate; all three are provided
here (plus last-value) so the design space remains explorable.

Functions receive the LHB values oldest-first and a flag telling them
whether the load is integer-typed; integer loads round the result to the
nearest integer, since the core consumes it as an integer register value.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Union

from repro.errors import ConfigurationError

Number = Union[int, float]
ComputeFunction = Callable[[Sequence[Number]], float]


def average(values: Sequence[Number]) -> float:
    """Arithmetic mean of the LHB — the paper's baseline ``f``."""
    return sum(values) / len(values)


def last_value(values: Sequence[Number]) -> float:
    """The newest LHB value (classic last-value prediction)."""
    return float(values[-1])


def stride(values: Sequence[Number]) -> float:
    """Newest value plus the average stride between consecutive values.

    Accepts any iterable-indexable container (the hot path passes the LHB's
    underlying deque, which does not support slicing).
    """
    if len(values) < 2:
        return float(values[-1])
    deltas = []
    prev = None
    for value in values:
        if prev is not None:
            deltas.append(value - prev)
        prev = value
    return float(values[-1]) + sum(deltas) / len(deltas)


def last_delta(values: Sequence[Number]) -> float:
    """Newest value plus the most recent delta."""
    if len(values) < 2:
        return float(values[-1])
    return float(values[-1]) + (values[-1] - values[-2])


#: Registry of computation functions selectable via
#: :attr:`repro.core.config.ApproximatorConfig.compute_fn`.
COMPUTE_FUNCTIONS: Dict[str, ComputeFunction] = {
    "average": average,
    "last": last_value,
    "stride": stride,
    "delta": last_delta,
}


def compute_approximation(
    values: Sequence[Number], fn_name: str = "average", is_float: bool = True
) -> Number:
    """Apply the named computation function to a non-empty LHB.

    Integer loads are rounded to the nearest integer — the approximate
    value is consumed by the core as an integer register, and rounding
    keeps averages of bounded integer data (e.g. pixels) inside the data's
    natural range, which Section VI-B identifies as the reason integer data
    approximates so well.

    Raises:
        ConfigurationError: for an unknown function name.
        ValueError: for an empty LHB (callers must not approximate cold
            entries).
    """
    if not values:
        raise ValueError("cannot compute an approximation from an empty LHB")
    try:
        fn = COMPUTE_FUNCTIONS[fn_name]
    except KeyError:
        known = ", ".join(sorted(COMPUTE_FUNCTIONS))
        raise ConfigurationError(
            f"unknown compute function {fn_name!r} (known: {known})"
        ) from None
    result = fn(values)
    if is_float:
        return result
    return int(round(result))
