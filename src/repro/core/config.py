"""Approximator configuration (Table II of the paper).

The defaults reproduce the paper's baseline approximator exactly:

========================  =======================================
Approximator table        512 entries, direct mapped
Confidence bits           4 (saturating signed, range [-8, 7])
Confidence window         +/- 10 % (floating-point data only)
Context hash function     XOR(PC, GHB)
Global history buffer     0 entries
Computation function      AVERAGE(LHB)
Local history buffer      4 entries
Tag bits                  21
Value delay               4 load instructions
Approximation degree      0
========================  =======================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Sentinel for the "infinite" relaxed confidence window of Section VI-B.
#: With an infinite window the confidence counter is never decremented and
#: data is always approximated from the precise values in the LHB.
INFINITE_WINDOW = math.inf


@dataclass(frozen=True)
class ApproximatorConfig:
    """Immutable configuration for a :class:`LoadValueApproximator`.

    Parameters mirror Table II; see the module docstring for the baseline.

    Attributes:
        table_entries: Number of direct-mapped approximator table entries.
            Must be a power of two (the context hash is folded to
            ``log2(table_entries)`` index bits).
        confidence_bits: Width of the signed saturating confidence counter.
            4 bits gives the paper's range of [-8, 7].
        confidence_window: Relative window W; an approximation is counted as
            "close enough" when ``|approx - actual| <= W * |actual|``.
            ``0.0`` demands exact matches (traditional value prediction) and
            :data:`INFINITE_WINDOW` never penalises the approximator.
        apply_confidence_to_floats: Gate approximations of floating-point
            data on the confidence counter (baseline: True).
        apply_confidence_to_ints: Gate approximations of integer data on the
            confidence counter. The baseline disables this: Section VI-B
            finds integer data amenable enough that confidence is not
            employed for it (Figure 6 re-enables it for the sweep).
        ghb_size: Entries in the global history buffer hashed into the table
            index alongside the PC (baseline: 0, i.e. PC-only indexing).
        lhb_size: Entries in each table entry's local history buffer.
        tag_bits: Width of the stored tag compared on lookup.
        value_delay: Number of load instructions between generating an
            approximation and the actual value arriving to train the
            approximator (Section VI-C). The delay is enforced by the
            driving simulator via :class:`DelayQueue`.
        approximation_degree: How many times a generated value is reused —
            and the block fetch skipped — before the entry is trained again
            (Section III-C). Degree 0 keeps the conventional 1:1
            fetch-to-miss ratio.
        mantissa_drop_bits: Low-order single-precision mantissa bits zeroed
            before hashing floating-point GHB values (Section VII-B,
            Figure 13). 0 hashes full precision; 23 drops the whole
            mantissa.
        compute_fn: Name of the LHB computation function ``f`` (registered
            in :mod:`repro.core.functions`); the paper found ``"average"``
            most accurate.
        predictor: Registry name of the technique a ``Mode.PREDICTOR``
            simulator builds from this config (see :mod:`repro.predictors`;
            ``"lva"``, ``"lvp"``, ``"clp"``, ``"hybrid"``, ...). Ignored by
            the fixed-technique modes; as a config field it folds into
            every cache/disk/point key, so results computed by different
            predictors can never collide. Name resolution is validated by
            the registry at simulator construction time.
    """

    table_entries: int = 512
    confidence_bits: int = 4
    confidence_window: float = 0.10
    #: Maximum magnitude of one confidence adjustment. 1 reproduces the
    #: paper's baseline (+1/-1); values above 1 enable the variable-step
    #: updates Section III-B defers to future work, where better
    #: approximations earn larger increments and worse ones larger
    #: decrements (see :func:`repro.core.confidence.confidence_update_steps`).
    confidence_step_max: int = 1
    apply_confidence_to_floats: bool = True
    apply_confidence_to_ints: bool = False
    ghb_size: int = 0
    lhb_size: int = 4
    tag_bits: int = 21
    value_delay: int = 4
    approximation_degree: int = 0
    mantissa_drop_bits: int = 0
    compute_fn: str = "average"
    predictor: str = "lva"

    def __post_init__(self) -> None:
        if self.table_entries <= 0 or self.table_entries & (self.table_entries - 1):
            raise ConfigurationError(
                f"table_entries must be a positive power of two, got {self.table_entries}"
            )
        if self.confidence_bits < 1:
            raise ConfigurationError("confidence_bits must be >= 1")
        if self.confidence_window < 0:
            raise ConfigurationError("confidence_window must be >= 0 (or INFINITE_WINDOW)")
        if self.confidence_step_max < 1:
            raise ConfigurationError("confidence_step_max must be >= 1")
        if self.ghb_size < 0:
            raise ConfigurationError("ghb_size must be >= 0")
        if self.lhb_size < 1:
            raise ConfigurationError("lhb_size must be >= 1 (need history to approximate)")
        if self.tag_bits < 1:
            raise ConfigurationError("tag_bits must be >= 1")
        if self.value_delay < 0:
            raise ConfigurationError("value_delay must be >= 0")
        if self.approximation_degree < 0:
            raise ConfigurationError("approximation_degree must be >= 0")
        if not 0 <= self.mantissa_drop_bits <= 23:
            raise ConfigurationError(
                "mantissa_drop_bits must lie in [0, 23] (single-precision mantissa)"
            )
        if not self.predictor:
            raise ConfigurationError("predictor must name a registry entry")

    @property
    def index_bits(self) -> int:
        """Number of table-index bits the context hash is folded down to."""
        return self.table_entries.bit_length() - 1

    @property
    def confidence_min(self) -> int:
        """Lowest value of the saturating confidence counter (baseline -8)."""
        return -(1 << (self.confidence_bits - 1))

    @property
    def confidence_max(self) -> int:
        """Highest value of the saturating confidence counter (baseline 7)."""
        return (1 << (self.confidence_bits - 1)) - 1

    def with_overrides(self, **changes: object) -> "ApproximatorConfig":
        """Return a copy with the given fields replaced.

        Convenience for the design-space sweeps, e.g.
        ``baseline.with_overrides(ghb_size=2, approximation_degree=4)``.
        """
        return replace(self, **changes)

    def storage_bits(self, value_bits: int = 64) -> int:
        """Estimated storage of the approximator table in bits.

        Matches the paper's Section VII-A accounting: each entry stores a
        tag, a confidence counter, a degree counter and ``lhb_size`` values
        of ``value_bits`` each (the paper quotes ~18 KB for 64-bit and
        ~10 KB for 32-bit LHB values with the baseline configuration).
        """
        degree_bits = max(1, max(self.approximation_degree, 1).bit_length())
        entry_bits = (
            self.tag_bits
            + self.confidence_bits
            + degree_bits
            + self.lhb_size * value_bits
        )
        return self.table_entries * entry_bits


#: The paper's Table II baseline configuration.
BASELINE_CONFIG = ApproximatorConfig()
