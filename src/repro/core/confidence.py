"""Saturating confidence counters and the relaxed confidence window test.

Traditional value predictors only predict at high confidence and count any
inexact prediction as a miss, limiting coverage. Load value approximation
relaxes the window (Section III-B): the counter is incremented whenever the
approximation falls within +/- W of the actual value, so approximators keep
generating values that are "close enough".
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.errors import ConfigurationError

Number = Union[int, float]


class SaturatingCounter:
    """A signed saturating counter, e.g. 4 bits saturating at [-8, 7].

    The approximator makes an approximation whenever the counter is
    greater than or equal to zero (paper, Section III-B), so a freshly
    allocated entry (counter = 0) approximates immediately.
    """

    __slots__ = ("_lo", "_hi", "_value")

    def __init__(self, bits: int = 4, initial: int = 0) -> None:
        if bits < 1:
            raise ConfigurationError(f"counter width must be >= 1 bit, got {bits}")
        self._lo = -(1 << (bits - 1))
        self._hi = (1 << (bits - 1)) - 1
        if not self._lo <= initial <= self._hi:
            raise ConfigurationError(
                f"initial value {initial} outside counter range [{self._lo}, {self._hi}]"
            )
        self._value = initial

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    @property
    def minimum(self) -> int:
        """Saturation floor (e.g. -8 for 4 bits)."""
        return self._lo

    @property
    def maximum(self) -> int:
        """Saturation ceiling (e.g. 7 for 4 bits)."""
        return self._hi

    @property
    def is_confident(self) -> bool:
        """True when the approximator may generate a value (counter >= 0)."""
        return self._value >= 0

    def increment(self) -> int:
        """Add one, saturating at the ceiling; returns the new value."""
        if self._value < self._hi:
            self._value += 1
        return self._value

    def decrement(self) -> int:
        """Subtract one, saturating at the floor; returns the new value."""
        if self._value > self._lo:
            self._value -= 1
        return self._value

    def add(self, steps: int) -> int:
        """Adjust by a signed number of steps, saturating; returns the new
        value. Used by the variable-step confidence updates of
        :func:`confidence_update_steps`."""
        self._value = min(max(self._value + steps, self._lo), self._hi)
        return self._value

    def reset(self, value: int = 0) -> None:
        """Force the counter to ``value`` (clamped into range)."""
        self._value = min(max(value, self._lo), self._hi)

    def __repr__(self) -> str:
        return f"SaturatingCounter(value={self._value}, range=[{self._lo}, {self._hi}])"


def confidence_update_steps(
    approx: Number, actual: Number, window: float, step_max: int = 1
) -> int:
    """Signed confidence adjustment for one training observation.

    With ``step_max == 1`` this is the paper's baseline: +1 when the
    approximation falls within the window, -1 otherwise. ``step_max > 1``
    implements the variable-step optimisation Section III-B explicitly
    defers to future work ("the confidence counter could be adjusted by
    more than one depending on how far off the approximation is") — a
    feature impossible for traditional value prediction, whose correctness
    is binary:

    * let ``ratio = |approx - actual| / (window * |actual|)`` (the error
      measured in window-widths; 0 is perfect, 1 is the window edge);
    * inside the window the increment grows as the approximation gets
      better: ``max(1, round(step_max * (1 - ratio)))``;
    * outside, the decrement grows with the overshoot:
      ``-min(step_max, round(ratio))``.

    An infinite window always returns ``+step_max`` (never decrements); a
    zero window degenerates to exact matching at full step.
    """
    if step_max < 1:
        raise ConfigurationError(f"step_max must be >= 1, got {step_max}")
    if math.isinf(window):
        return step_max
    if window == 0:
        return step_max if approx == actual else -step_max
    denom = window * abs(actual) if actual != 0 else window
    if denom == 0:  # degenerate: actual == 0 and window relative
        return step_max if approx == actual else -step_max
    ratio = abs(approx - actual) / denom
    if ratio != ratio:  # NaN operands: treat as maximally wrong
        return -step_max
    if ratio <= 1.0:
        return max(1, round(step_max * (1.0 - ratio)))
    if ratio >= step_max:  # also guards ratio == inf against round()
        return -step_max
    return -min(step_max, max(1, round(ratio)))


def confidence_update_steps_array(
    approx: np.ndarray, actual: np.ndarray, window: float, step_max: int = 1
) -> np.ndarray:
    """Vectorized :func:`confidence_update_steps` over float64 arrays.

    Elementwise identical to the scalar function (``np.round`` applies
    the same banker's rounding as Python's ``round``); NaN operands map
    to ``-step_max``, an infinite window to ``+step_max`` everywhere.
    Exposed for the vectorized replay kernels and interval-sampling
    analyses that batch confidence outcomes per span.
    """
    if step_max < 1:
        raise ConfigurationError(f"step_max must be >= 1, got {step_max}")
    approx = np.asarray(approx, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if math.isinf(window):
        return np.full(len(approx), step_max, dtype=np.int64)
    if window == 0:
        return np.where(approx == actual, step_max, -step_max).astype(np.int64)
    denom = np.where(actual != 0, window * np.abs(actual), window)
    error = np.abs(approx - actual)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = error / denom
        inside = np.maximum(
            1, np.nan_to_num(np.round(step_max * (1.0 - ratio)), nan=1.0)
        ).astype(np.int64)
        outside = -np.minimum(
            step_max,
            np.maximum(
                1, np.where(np.isfinite(ratio), np.round(ratio), step_max)
            ),
        ).astype(np.int64)
    steps = np.where(ratio <= 1.0, inside, outside)  # NaN ratio -> outside
    # The scalar function tests `ratio <= 1.0` first, so the full-step
    # decrement only applies strictly outside the window.
    steps = np.where((ratio > 1.0) & (ratio >= step_max), -step_max, steps)
    # Degenerate denominator (actual == 0 with a relative window of 0
    # width): exact match at full step, like the scalar function.
    degenerate = denom == 0
    if degenerate.any():
        steps = np.where(
            degenerate,
            np.where(approx == actual, step_max, -step_max),
            steps,
        )
    # NaN operands: maximally wrong.
    steps = np.where(np.isnan(ratio) & ~degenerate, -step_max, steps)
    return steps.astype(np.int64)


def within_window(approx: Number, actual: Number, window: float) -> bool:
    """Is ``approx`` within the relaxed confidence window of ``actual``?

    The window is relative: ``|approx - actual| <= window * |actual|``.
    A window of 0 demands exact equality (traditional value prediction);
    ``math.inf`` always passes (the "infinitely relaxed" point of
    Figure 6). When the actual value is exactly zero a relative window is
    degenerate, so the test falls back to an absolute tolerance of
    ``window`` itself — e.g. a 10 % window accepts approximations within
    0.1 of an actual zero.
    """
    if math.isinf(window):
        return True
    if window == 0:
        return approx == actual
    if actual == 0:
        return abs(approx) <= window
    return abs(approx - actual) <= window * abs(actual)
