"""A single approximator-table entry (Figure 3).

Each direct-mapped entry holds the tag of the context that allocated it, a
saturating confidence counter, a degree counter and a local history buffer
of the precise values that followed this context.
"""

from __future__ import annotations

from typing import Union

from repro.core.confidence import SaturatingCounter
from repro.core.history import HistoryBuffer

Number = Union[int, float]


class ApproximatorEntry:
    """Mutable state of one approximator-table entry."""

    __slots__ = ("tag", "confidence", "degree_counter", "lhb", "max_degree")

    def __init__(
        self,
        tag: int,
        confidence_bits: int,
        lhb_size: int,
        max_degree: int,
    ) -> None:
        self.tag = tag
        self.confidence = SaturatingCounter(confidence_bits)
        self.lhb = HistoryBuffer(lhb_size)
        self.max_degree = max_degree
        # Initialised to the maximum approximation degree (Section III-C):
        # the first `max_degree` approximations skip the fetch, then the
        # entry fetches and trains.
        self.degree_counter = max_degree

    def reallocate(self, tag: int) -> None:
        """Repurpose the entry for a new context (tag conflict).

        Hardware would simply overwrite the entry; the confidence counter,
        degree counter and LHB all restart cold.
        """
        self.tag = tag
        self.confidence.reset(0)
        self.lhb.clear()
        self.degree_counter = self.max_degree

    @property
    def can_generate(self) -> bool:
        """True when the LHB holds at least one trained value."""
        return bool(self.lhb)

    def consume_degree(self) -> bool:
        """Advance the degree counter for one approximation.

        Returns True when the block fetch should be skipped (counter was
        above zero), False when the counter has reached zero and the entry
        must fetch + train. The reset back to ``max_degree`` happens at
        training time via :meth:`reset_degree`.
        """
        if self.degree_counter > 0:
            self.degree_counter -= 1
            return True
        return False

    def reset_degree(self) -> None:
        """Reset the degree counter after a training fetch (Section III-C)."""
        self.degree_counter = self.max_degree

    def __repr__(self) -> str:
        return (
            f"ApproximatorEntry(tag={self.tag:#x}, conf={self.confidence.value}, "
            f"degree={self.degree_counter}/{self.max_degree}, lhb={list(self.lhb)})"
        )
