"""Context hashing: ``h(PC, GHB)`` and floating-point quantization.

The approximator table is indexed by XOR-ing the load's instruction address
with the bit patterns of the values currently in the global history buffer
(Section III-A). Floating-point values hash poorly at full precision —
1.000 and 1.001 land in different entries — so Section VII-B truncates
low-order mantissa bits before hashing, improving approximate value
locality (Figure 13).
"""

from __future__ import annotations

import struct
from typing import Iterable, Tuple, Union

import numpy as np

Number = Union[int, float]

_UINT64_MASK = (1 << 64) - 1
_FLOAT32_MANTISSA_BITS = 23


def quantize_float(value: float, drop_bits: int) -> float:
    """Zero the ``drop_bits`` lowest mantissa bits of ``value`` (as float32).

    ``drop_bits == 0`` returns the single-precision rounding of ``value``;
    ``drop_bits == 23`` keeps only the sign and exponent. Non-finite values
    pass through unchanged.
    """
    if drop_bits == 0 or value != value or value in (float("inf"), float("-inf")):
        return value
    bits = struct.unpack("<I", struct.pack("<f", value))[0]
    bits &= ~((1 << drop_bits) - 1) & 0xFFFFFFFF
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def value_to_bits(value: Number, mantissa_drop_bits: int = 0) -> int:
    """Map a load value to the 64-bit pattern the hash hardware would see.

    Integers use their two's-complement 64-bit pattern. Floats are first
    rounded to single precision (the paper's Figure 13 operates on the
    single-precision mantissa), optionally with ``mantissa_drop_bits``
    low-order mantissa bits cleared, and the resulting 32-bit pattern is
    used.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & _UINT64_MASK
    quantized = quantize_float(float(value), mantissa_drop_bits)
    if quantized != quantized:  # NaN: use the canonical quiet-NaN pattern
        return 0x7FC00000
    try:
        return struct.unpack("<I", struct.pack("<f", quantized))[0]
    except OverflowError:  # exponent overflow to float32 => +/- inf pattern
        return 0x7F800000 if quantized > 0 else 0xFF800000


def _fold(value: int, out_bits: int) -> int:
    """XOR-fold a 64-bit value down to ``out_bits`` bits."""
    mask = (1 << out_bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= out_bits
    return folded


def context_hash(
    pc: int,
    ghb_values: Iterable[Number],
    index_bits: int,
    tag_bits: int,
    mantissa_drop_bits: int = 0,
) -> Tuple[int, int]:
    """Hash a load context to an approximator-table ``(index, tag)`` pair.

    The context is ``XOR(PC, GHB)``: the load's instruction address XOR-ed
    with the bit patterns of every value in the global history buffer. The
    64-bit result is XOR-folded to ``index_bits`` for the direct-mapped
    table index; the bits above the index, truncated to ``tag_bits``, form
    the stored tag (a second fold keeps tag entropy when the raw hash is
    narrow).

    Args:
        pc: Instruction address of the load.
        ghb_values: Values currently in the GHB (oldest first; order is
            irrelevant for XOR but kept for determinism).
        index_bits: log2 of the table size.
        tag_bits: Width of the stored tag.
        mantissa_drop_bits: Mantissa truncation applied to float values
            before hashing (Section VII-B).

    Returns:
        ``(index, tag)`` with ``0 <= index < 2**index_bits`` and
        ``0 <= tag < 2**tag_bits``.
    """
    context = pc & _UINT64_MASK
    for value in ghb_values:
        context ^= value_to_bits(value, mantissa_drop_bits)
    index = _fold(context, index_bits) if index_bits > 0 else 0
    tag_source = (context >> index_bits) | (pc << 1)
    tag = _fold(tag_source & _UINT64_MASK, tag_bits)
    return index, tag


# ---------------------------------------------------------------------- #
# Array forms (the vectorized replay kernels of repro.sim.kernels)        #
# ---------------------------------------------------------------------- #


def fold_array(values: np.ndarray, out_bits: int) -> np.ndarray:
    """XOR-fold an array of uint64 values down to ``out_bits`` bits.

    The vectorized twin of :func:`_fold`: identical output for every
    element, one numpy pass per ``out_bits`` window (at most
    ``ceil(64 / out_bits)`` passes — bounded by the word width, never by
    the number of events).
    """
    mask = np.uint64((1 << out_bits) - 1)
    shift = np.uint64(out_bits)
    folded = np.zeros_like(values)
    remaining = values.copy()
    while remaining.any():
        folded ^= remaining & mask
        remaining = remaining >> shift
    return folded


def context_hash_array(
    pcs: np.ndarray, index_bits: int, tag_bits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`context_hash` for the empty-GHB case.

    With no GHB values the context is the PC alone, so the hash is a pure
    elementwise function and whole columns of PCs hash in a handful of
    numpy passes. Matches ``context_hash(pc, (), index_bits, tag_bits)``
    bit-for-bit (uint64 wrap-around reproduces the scalar's explicit
    64-bit masking).

    Returns ``(index, tag)`` uint64 arrays aligned with ``pcs``.
    """
    context = pcs.astype(np.uint64)
    if index_bits > 0:
        index = fold_array(context, index_bits)
    else:
        index = np.zeros(len(context), dtype=np.uint64)
    tag_source = (context >> np.uint64(index_bits)) | (context << np.uint64(1))
    tag = fold_array(tag_source, tag_bits)
    return index, tag
