"""The paper's primary contribution: the load value approximator.

This subpackage is a bit-accurate software model of the hardware described in
Section III and Figure 3 of *Load Value Approximation* (MICRO 2014):

* :class:`~repro.core.history.HistoryBuffer` — the FIFO global history
  buffer (GHB) and per-entry local history buffers (LHBs);
* :mod:`~repro.core.hashing` — the context hash ``h(PC, GHB)`` including the
  floating-point mantissa truncation of Section VII-B;
* :class:`~repro.core.confidence.SaturatingCounter` and the relaxed
  confidence window test of Section III-B;
* :class:`~repro.core.approximator.LoadValueApproximator` — the approximator
  table with tag, confidence, degree counter and LHB per entry;
* :class:`~repro.predictors.lvp.IdealizedLoadValuePredictor` — the idealized
  LVP baseline used throughout Section VI.
"""

from repro.core.approximator import (
    ApproximationDecision,
    DelayQueue,
    LoadValueApproximator,
    TrainToken,
)
from repro.core.config import BASELINE_CONFIG, INFINITE_WINDOW, ApproximatorConfig
from repro.core.entry import ApproximatorEntry
from repro.core.confidence import (
    SaturatingCounter,
    confidence_update_steps,
    within_window,
)
from repro.core.functions import COMPUTE_FUNCTIONS, compute_approximation
from repro.core.hashing import context_hash, quantize_float, value_to_bits
from repro.core.history import HistoryBuffer
from repro.predictors.lvp import IdealizedLoadValuePredictor, PredictionDecision

__all__ = [
    "ApproximationDecision",
    "ApproximatorConfig",
    "ApproximatorEntry",
    "BASELINE_CONFIG",
    "DelayQueue",
    "INFINITE_WINDOW",
    "COMPUTE_FUNCTIONS",
    "HistoryBuffer",
    "IdealizedLoadValuePredictor",
    "LoadValueApproximator",
    "PredictionDecision",
    "SaturatingCounter",
    "TrainToken",
    "compute_approximation",
    "confidence_update_steps",
    "context_hash",
    "quantize_float",
    "value_to_bits",
    "within_window",
]
