"""The load value approximator (Sections III-A through III-C, Figure 3).

On an L1 load miss to approximable data the simulator asks the approximator
for a decision:

* **approximated** — the core continues immediately with ``f(LHB)``;
* **fetch** — whether the block is fetched from the next level. With a
  non-zero approximation degree most approximated misses skip the fetch
  entirely (the energy-error trade-off of Section III-C);
* **token** — when a fetch is issued, the actual value arriving later (after
  the *value delay*) trains the approximator via :meth:`train`.

There is no speculation and no rollback: an inexact approximation merely
nudges the confidence counter down.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import math

from repro.core.config import ApproximatorConfig
from repro.core.confidence import confidence_update_steps
from repro.core.entry import ApproximatorEntry
from repro.core.functions import COMPUTE_FUNCTIONS
from repro.core.hashing import context_hash
from repro.core.history import HistoryBuffer
from repro.errors import ConfigurationError
from repro.telemetry.registry import safe_ratio

Number = Union[int, float]

#: Shared empty result for :meth:`DelayQueue.tick` when nothing is due.
_NOTHING_DUE: Tuple = ()


@dataclass(slots=True)
class TrainToken:
    """Ties an in-flight fetch back to the table entry that requested it.

    The value delay (Section VI-C) means the actual value arrives several
    load instructions after the decision was made; by then the entry may
    have been re-allocated to a different context, so the token carries the
    tag to detect staleness.
    """

    index: int
    tag: int
    #: The value the approximator produced (or would have produced) for this
    #: miss; used to adjust confidence against the actual value. ``None``
    #: for cold entries that had no history to compute from.
    shadow_value: Optional[Number]
    is_float: bool


@dataclass(slots=True)
class ApproximationDecision:
    """Outcome of one load miss presented to the approximator."""

    #: True when the core continues with :attr:`value` instead of stalling.
    approximated: bool
    #: The approximate value (valid only when :attr:`approximated`).
    value: Optional[Number]
    #: True when the block must still be fetched from the next level.
    fetch: bool
    #: Training handle for the fetch, if one was issued.
    token: Optional[TrainToken]


@dataclass
class ApproximatorStats:
    """Event counters exposed for the evaluation and for energy accounting."""

    lookups: int = 0
    tag_misses: int = 0
    cold_misses: int = 0
    low_confidence_rejections: int = 0
    approximations: int = 0
    fetches_skipped: int = 0
    trainings: int = 0
    stale_trainings: int = 0
    confidence_increments: int = 0
    confidence_decrements: int = 0
    #: Distinct PCs observed (Figure 12 counts static approximate loads).
    static_pcs: set = field(default_factory=set)

    @property
    def coverage(self) -> float:
        """Fraction of presented misses that were approximated."""
        return safe_ratio(self.approximations, self.lookups)


class DelayQueue:
    """Defers training by the value delay, measured in load instructions.

    The driving simulator calls :meth:`tick` once per load instruction and
    trains the approximator with whatever items have become due. A delay of
    zero makes items due on the very next tick.
    """

    __slots__ = ("_delay", "_clock", "_pending")

    def __init__(self, delay: int) -> None:
        self._delay = delay
        self._clock = 0
        self._pending: Deque[Tuple[int, TrainToken, Number]] = deque()

    def push(self, token: TrainToken, actual: Number) -> None:
        """Schedule ``(token, actual)`` to become due after the delay."""
        self._pending.append((self._clock + self._delay, token, actual))

    def tick(self) -> Sequence[Tuple[TrainToken, Number]]:
        """Advance one load instruction; return the trainings now due.

        The common case — nothing pending, or nothing due yet — returns a
        shared empty tuple, so ticking once per load instruction allocates
        nothing on hit-dominated or technique-free paths.
        """
        clock = self._clock + 1
        self._clock = clock
        pending = self._pending
        if not pending or pending[0][0] > clock:
            return _NOTHING_DUE
        due: List[Tuple[TrainToken, Number]] = []
        while pending and pending[0][0] <= clock:
            _, token, actual = pending.popleft()
            due.append((token, actual))
        return due

    def drain(self) -> List[Tuple[TrainToken, Number]]:
        """Return every pending training (end-of-run flush)."""
        due = [(token, actual) for _, token, actual in self._pending]
        self._pending.clear()
        return due

    def __len__(self) -> int:
        return len(self._pending)


class LoadValueApproximator:
    """Direct-mapped approximator table plus global history buffer.

    This models the hardware of Figure 3 exactly: ``table_entries``
    direct-mapped entries, each with a ``tag_bits`` tag, a signed saturating
    confidence counter, a degree counter and an ``lhb_size``-entry LHB; one
    shared GHB of ``ghb_size`` precise values; the table index is
    ``XOR(PC, GHB)``.
    """

    def __init__(self, config: Optional[ApproximatorConfig] = None) -> None:
        self.config = config or ApproximatorConfig()
        self.ghb = HistoryBuffer(self.config.ghb_size)
        self.stats = ApproximatorStats()
        # Entries are allocated lazily: a hardware table is all-invalid at
        # reset, and most workloads touch a small fraction of the 512 slots.
        self._table: Dict[int, ApproximatorEntry] = {}
        # Config-derived constants, hoisted out of the per-miss path (the
        # dataclass properties and registry lookups are measurable there).
        config = self.config
        self._index_bits = config.index_bits
        self._tag_bits = config.tag_bits
        self._drop_bits = config.mantissa_drop_bits
        try:
            self._compute = COMPUTE_FUNCTIONS[config.compute_fn]
        except KeyError:
            known = ", ".join(sorted(COMPUTE_FUNCTIONS))
            raise ConfigurationError(
                f"unknown compute function {config.compute_fn!r} (known: {known})"
            ) from None
        self._window = config.confidence_window
        self._window_is_inf = math.isinf(config.confidence_window)
        self._step_max = config.confidence_step_max
        self._gate_float = config.apply_confidence_to_floats
        self._gate_int = config.apply_confidence_to_ints
        # With the baseline's empty GHB the context hash is a pure function
        # of the PC, so (index, tag) pairs are memoised per PC.
        self._pc_hashes: Optional[Dict[int, Tuple[int, int]]] = (
            {} if config.ghb_size == 0 else None
        )

    # ------------------------------------------------------------------ #
    # Lookup / generation                                                #
    # ------------------------------------------------------------------ #

    def _locate(self, pc: int) -> Tuple[ApproximatorEntry, bool, int, int]:
        """Find (allocating or re-allocating as needed) the entry for ``pc``.

        Returns the entry, whether the lookup hit an entry already trained
        for this context (tag match), and the (index, tag) pair.
        """
        pc_hashes = self._pc_hashes
        if pc_hashes is not None:
            hashed = pc_hashes.get(pc)
            if hashed is None:
                hashed = pc_hashes[pc] = context_hash(
                    pc, (), self._index_bits, self._tag_bits, self._drop_bits
                )
            index, tag = hashed
        else:
            index, tag = context_hash(
                pc,
                self.ghb.values(),
                self._index_bits,
                self._tag_bits,
                self._drop_bits,
            )
        entry = self._table.get(index)
        if entry is None:
            entry = ApproximatorEntry(
                tag,
                self.config.confidence_bits,
                self.config.lhb_size,
                self.config.approximation_degree,
            )
            self._table[index] = entry
            return entry, False, index, tag
        if entry.tag != tag:
            entry.reallocate(tag)
            return entry, False, index, tag
        return entry, True, index, tag

    def _confidence_gates(self, is_float: bool) -> bool:
        """Does the confidence counter gate approximations for this type?"""
        if is_float:
            return self.config.apply_confidence_to_floats
        return self.config.apply_confidence_to_ints

    def on_miss(self, pc: int, is_float: bool) -> ApproximationDecision:
        """Present one load miss; returns the approximation decision.

        The caller is responsible for issuing the fetch when
        ``decision.fetch`` is set, and for feeding the actual value back via
        :meth:`train` (after the value delay) using ``decision.token``.
        """
        stats = self.stats
        stats.lookups += 1
        stats.static_pcs.add(pc)
        entry, tag_hit, index, tag = self._locate(pc)

        if not tag_hit:
            stats.tag_misses += 1
            return ApproximationDecision(
                approximated=False,
                value=None,
                fetch=True,
                token=TrainToken(index, tag, None, is_float),
            )

        lhb = entry.lhb
        if not lhb:
            stats.cold_misses += 1
            return ApproximationDecision(
                approximated=False,
                value=None,
                fetch=True,
                token=TrainToken(index, tag, None, is_float),
            )

        shadow = self._compute(lhb.view())
        if not is_float:
            shadow = int(round(shadow))

        gated = self._gate_float if is_float else self._gate_int
        if gated and not entry.confidence.is_confident:
            stats.low_confidence_rejections += 1
            # The miss proceeds precisely, but the fetch still trains the
            # entry — confidence can recover once approximations would have
            # been accurate again.
            return ApproximationDecision(
                approximated=False,
                value=None,
                fetch=True,
                token=TrainToken(index, tag, shadow, is_float),
            )

        stats.approximations += 1
        if entry.consume_degree():
            # Degree counter still above zero: reuse the value, skip the
            # fetch entirely (Section III-C). The LHB is untouched, so the
            # next approximation from this entry returns the same value.
            stats.fetches_skipped += 1
            return ApproximationDecision(
                approximated=True, value=shadow, fetch=False, token=None
            )

        return ApproximationDecision(
            approximated=True,
            value=shadow,
            fetch=True,
            token=TrainToken(index, tag, shadow, is_float),
        )

    def on_miss_batch(
        self,
        pcs: Sequence[int],
        float_flags: Sequence[bool],
        addrs: Sequence[int],
    ) -> List[ApproximationDecision]:
        """Batch half of the ``MissPredictor`` protocol: scalar loop.

        Registry-driven replay never takes this path for the approximator
        (the vector kernel replays it through its dedicated flat core),
        but the contract is honoured so ``lva`` remains a full registry
        citizen. Addresses are ignored, as in :meth:`on_miss`.
        """
        del addrs
        on_miss = self.on_miss
        return [on_miss(pcs[i], float_flags[i]) for i in range(len(pcs))]

    def train_batch(
        self, tokens: Sequence[TrainToken], actuals: Sequence[Number]
    ) -> int:
        """Batch training loop; always 0 — LVA coverage is counted at
        decision time, never at training time."""
        train = self.train
        for i in range(len(tokens)):
            train(tokens[i], actuals[i])
        return 0

    # ------------------------------------------------------------------ #
    # Training                                                           #
    # ------------------------------------------------------------------ #

    def train(self, token: TrainToken, actual: Number) -> None:
        """Train with the actual value fetched from memory (step 4, Fig. 2).

        Pushes the precise value into the GHB and — provided the entry
        still belongs to the same context — into the entry's LHB, adjusts
        the confidence counter against the relaxed window, and resets the
        degree counter.
        """
        stats = self.stats
        stats.trainings += 1
        if self._pc_hashes is None:
            self.ghb.push(actual)
        entry = self._table.get(token.index)
        if entry is None or entry.tag != token.tag:
            # The entry was re-allocated while the fetch was in flight; the
            # training is stale and only the GHB benefits.
            stats.stale_trainings += 1
            return
        entry.lhb.push(actual)
        entry.reset_degree()
        shadow = token.shadow_value
        if shadow is not None:
            if self._step_max == 1 and not self._window_is_inf:
                # Baseline +1/-1 updates: a plain window test, inlined —
                # exactly confidence_update_steps() specialised to step 1.
                denom = self._window * abs(actual) if actual != 0 else self._window
                steps = 1 if abs(shadow - actual) <= denom else -1
            else:
                steps = confidence_update_steps(
                    shadow, actual, self._window, self._step_max
                )
            entry.confidence.add(steps)
            if steps > 0:
                stats.confidence_increments += 1
            else:
                stats.confidence_decrements += 1

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def allocated_entries(self) -> int:
        """Number of table slots touched so far (hardware-budget insight)."""
        return len(self._table)

    def entry_at(self, index: int) -> Optional[ApproximatorEntry]:
        """The entry at a table index, or None if never allocated."""
        return self._table.get(index)

    def reset(self) -> None:
        """Clear all architectural state (table, GHB) and statistics."""
        self._table.clear()
        self.ghb.clear()
        self.stats = ApproximatorStats()
