"""Exception types for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. Configuration mistakes raise early, at construction
time, rather than corrupting a long simulation run.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """A simulator was driven into an inconsistent state."""


class WorkloadError(ReproError):
    """A workload was given invalid parameters or produced invalid output."""


class AddressError(ReproError):
    """An address outside any allocated region was accessed."""


class SweepExecutionError(ReproError):
    """A sweep point could not be computed by the experiment engine."""


class PointTimeoutError(SweepExecutionError):
    """A sweep point exceeded its per-point wall-clock budget."""


class WorkerCrashError(SweepExecutionError):
    """A worker process died (or was injected to die) computing a point."""


class FaultInjectionError(ReproError):
    """A deterministic injected fault fired (see :mod:`repro.faults`)."""
