"""Exception types for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. Configuration mistakes raise early, at construction
time, rather than corrupting a long simulation run.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """A simulator was driven into an inconsistent state."""


class WorkloadError(ReproError):
    """A workload was given invalid parameters or produced invalid output."""


class AddressError(ReproError):
    """An address outside any allocated region was accessed."""
