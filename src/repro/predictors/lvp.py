"""Idealized load value prediction (LVP) baseline (Section VI).

The paper compares LVA against an *idealized* LVP: a prediction counts as
correct whenever **any** of the values in the entry's LHB matches the
precise value in memory, i.e. the selection mechanism is a perfect oracle.
This upper-bounds LVP's ability to reduce MPKI.

Differences from the approximator:

* predictions must be exactly right — a confidence window of 0 %;
* every miss still fetches its block (the prediction must be validated), so
  the fetch-to-miss ratio is pinned at 1:1 and no energy is saved;
* a misprediction triggers a rollback, so the application always finishes
  with precise values: LVP has zero output error by construction.

Historically this lived in ``repro.core.predictor``; it is now the
``"lvp"`` entry of the predictor registry (:mod:`repro.predictors`) and
the old module re-exports these names behind deprecation shims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.core.config import ApproximatorConfig
from repro.core.entry import ApproximatorEntry
from repro.core.hashing import context_hash
from repro.core.history import HistoryBuffer
from repro.predictors.base import ScalarBatchFallback
from repro.predictors.registry import PredictorInfo, register_predictor

Number = Union[int, float]


@dataclass(slots=True)
class PredictionToken:
    """Handle tying an in-flight fetch to the predicting entry."""

    index: int
    tag: int
    #: Snapshot of the LHB at prediction time; the oracle selection checks
    #: the actual value against this set when the block arrives.
    lhb_snapshot: Tuple[Number, ...]


@dataclass(slots=True)
class PredictionDecision:
    """Outcome of presenting a load miss to the predictor."""

    #: True when a prediction was attempted (LHB held at least one value).
    predicted: bool
    token: PredictionToken


@dataclass(slots=True)
class PredictorStats:
    """Event counters for the LVP baseline."""

    lookups: int = 0
    predictions: int = 0
    correct: int = 0
    incorrect: int = 0
    tag_misses: int = 0
    cold_misses: int = 0
    stale_trainings: int = 0
    static_pcs: set = field(default_factory=set)

    @property
    def accuracy(self) -> float:
        """Fraction of attempted predictions validated as exactly correct."""
        resolved = self.correct + self.incorrect
        return self.correct / resolved if resolved else 0.0


class IdealizedLoadValuePredictor(ScalarBatchFallback):
    """LVP sharing the approximator's table organisation (GHB + LHB).

    Reuses :class:`ApproximatorEntry` so that LVP-GHB-*n* in Figure 4 is an
    apples-to-apples comparison with LVA-GHB-*n*: same table size, same
    history depths, same hash.
    """

    def __init__(self, config: Optional[ApproximatorConfig] = None) -> None:
        self.config = config or ApproximatorConfig()
        self.ghb = HistoryBuffer(self.config.ghb_size)
        self.stats = PredictorStats()
        self._table: Dict[int, ApproximatorEntry] = {}

    def on_miss(self, pc: int, is_float: bool, addr: int = 0) -> PredictionDecision:
        """Present a load miss; the block is always fetched regardless."""
        del is_float, addr  # the oracle needs neither type nor address
        self.stats.lookups += 1
        self.stats.static_pcs.add(pc)
        index, tag = context_hash(
            pc,
            self.ghb.values(),
            self.config.index_bits,
            self.config.tag_bits,
            self.config.mantissa_drop_bits,
        )
        entry = self._table.get(index)
        if entry is None:
            entry = ApproximatorEntry(
                tag, self.config.confidence_bits, self.config.lhb_size, 0
            )
            self._table[index] = entry
            self.stats.tag_misses += 1
        elif entry.tag != tag:
            entry.reallocate(tag)
            self.stats.tag_misses += 1

        snapshot = entry.lhb.values()
        if not snapshot:
            self.stats.cold_misses += 1
            return PredictionDecision(
                predicted=False, token=PredictionToken(index, tag, snapshot)
            )
        self.stats.predictions += 1
        return PredictionDecision(
            predicted=True, token=PredictionToken(index, tag, snapshot)
        )

    def train(self, token: PredictionToken, actual: Number) -> bool:
        """Validate against the arrived value and train the tables.

        Returns True when the (idealized) prediction was correct — the
        actual value appears exactly in the LHB snapshot — so the driving
        simulator can count the miss as covered.
        """
        correct = bool(token.lhb_snapshot) and any(
            value == actual for value in token.lhb_snapshot
        )
        if token.lhb_snapshot:
            if correct:
                self.stats.correct += 1
            else:
                self.stats.incorrect += 1
        self.ghb.push(actual)
        entry = self._table.get(token.index)
        if entry is None or entry.tag != token.tag:
            self.stats.stale_trainings += 1
            return correct
        entry.lhb.push(actual)
        return correct

    @property
    def allocated_entries(self) -> int:
        """Number of table slots touched so far."""
        return len(self._table)

    def reset(self) -> None:
        """Clear all architectural state and statistics."""
        self._table.clear()
        self.ghb.clear()
        self.stats = PredictorStats()


register_predictor(
    PredictorInfo(
        name="lvp",
        factory=IdealizedLoadValuePredictor,
        description="idealized load value predictor: oracle selection, rollback on miss",
        zero_output_error=True,
        batch_kernel="lvp",
    )
)
