"""The pluggable predictor registry.

Predictors register themselves by name at import time; the simulators,
the API facade and the sweep engine resolve them exclusively through
this module, so a new miss-handling technique plugs in without touching
``repro.sim`` (ROADMAP item 3):

    from repro.predictors import PredictorInfo, register_predictor

    register_predictor(PredictorInfo(
        name="mine",
        factory=MyPredictor,
        description="...",
        zero_output_error=True,
    ))

``REPRO_PREDICTOR`` overrides the registry name for ``Mode.PREDICTOR``
runs; it is a *keyed* variable — :func:`active_override` is the single
read site and its result folds into the experiment disk keys (see
``repro.envspec`` and lint rule LVA007).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.config import ApproximatorConfig
from repro.envspec import PREDICTOR_ENV
from repro.errors import ConfigurationError

#: Registry name a default-constructed config resolves to.
DEFAULT_PREDICTOR = "lva"


class UnknownPredictorError(ConfigurationError):
    """A lookup named no registered predictor."""


@dataclass(frozen=True, slots=True)
class PredictorInfo:
    """One registry entry: how to build a predictor and what it guarantees."""

    #: Registry name (``config.predictor`` / ``REPRO_PREDICTOR`` value).
    name: str
    #: Builds the predictor from an :class:`ApproximatorConfig`.
    factory: Callable[[ApproximatorConfig], object]
    #: One-line description shown by error messages and docs.
    description: str
    #: True when mispredictions roll back: the run always finishes with
    #: precise values, so the output error is zero by construction.
    zero_output_error: bool
    #: Which vector replay core drives this predictor: "lva"/"lvp" name
    #: the dedicated flat miss cores, "batch" routes through the generic
    #: ``on_miss_batch``/``train_batch`` driver, and "" falls back to the
    #: scalar-loop batch driver (still vector-eligible — the oracle and
    #: column passes stay vectorized around it).
    batch_kernel: str = ""
    #: True when the predictor honors ``approximation_degree`` (skips
    #: fetches after confident approximations). Degree-active replays
    #: take the interleaved vector path because the L1 hit stream
    #: becomes data-dependent on the technique state.
    uses_degree: bool = False


_REGISTRY: Dict[str, PredictorInfo] = {}


def register_predictor(info: PredictorInfo) -> PredictorInfo:
    """Add ``info`` to the registry; duplicate names are a configuration bug."""
    if info.name in _REGISTRY:
        raise ConfigurationError(f"predictor {info.name!r} is already registered")
    _REGISTRY[info.name] = info
    return info


def available_predictors() -> Tuple[str, ...]:
    """Registered predictor names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_info(name: str) -> PredictorInfo:
    """The registry entry for ``name``; unknown names list what exists."""
    info = _REGISTRY.get(name)
    if info is None:
        known = ", ".join(available_predictors())
        raise UnknownPredictorError(
            f"unknown predictor {name!r} (available: {known})"
        )
    return info


def create(name: str, config: Optional[ApproximatorConfig] = None) -> object:
    """Build the predictor registered as ``name`` from ``config``."""
    return get_info(name).factory(config or ApproximatorConfig())


def active_override(mode_value: str = "predictor") -> str:
    """The ``REPRO_PREDICTOR`` override for a run in ``mode_value``.

    Canonicalised (stripped, lowered); the empty string when unset or
    when the mode is not ``"predictor"`` — the override never retargets
    the fixed-technique modes, and experiment keys stay clean for them.
    """
    if mode_value != "predictor":
        return ""
    return os.environ.get(PREDICTOR_ENV, "").strip().lower()


def resolve_name(mode_value: str, config: ApproximatorConfig) -> str:
    """The registry name a simulator in ``mode_value`` should build.

    ``Mode.LVA`` and ``Mode.LVP`` pin their historical techniques by
    name (bit-for-bit compatibility); ``Mode.PREDICTOR`` takes the
    environment override, then ``config.predictor``.
    """
    if mode_value == "predictor":
        return active_override(mode_value) or config.predictor or DEFAULT_PREDICTOR
    return mode_value
