"""Cache-level prediction (CLP) baseline.

Following "Reducing Load Latency with Cache Level Prediction" (Jalili &
Erez), the stronger baseline family predicts *where* a load hits rather
than its value: a correct level prediction lets the core issue the fill
request directly to the right level and hide the lookup latencies above
it. This model keeps the trace-driven framing of the repo:

* the phase-1 simulator only models L1 + backing store, so the CLP
  carries its own small modelled L2 (plain-LRU block set) between them;
  every presented miss probes it for the *actual* hit level and then
  fills it, exactly like a fetch would;
* a tag-history table — same ``context_hash`` indexing as the
  approximator — records the recent hit levels per context and predicts
  by majority vote (ties predict the deeper level, the safe direction);
* like LVP, the prediction is validated against the simulated hierarchy
  and a misprediction rolls back: the block is always fetched, no value
  is ever approximated, so the output error is zero by construction. A
  *correct* level prediction counts the miss as covered.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import ApproximatorConfig
from repro.core.hashing import context_hash, context_hash_array
from repro.core.history import HistoryBuffer
from repro.predictors.base import PredictorDecision, ScalarBatchFallback
from repro.predictors.registry import PredictorInfo, register_predictor
from repro.telemetry.registry import safe_ratio

Number = Union[int, float]

#: Hit levels the CLP distinguishes (L1 is excluded: only misses arrive).
LEVEL_L2 = 2
LEVEL_MEMORY = 3

#: Capacity of the modelled L2 in blocks (4096 × 64 B = 256 KB).
CLP_L2_BLOCKS = 4096
#: log2 of the block size shared with the L1 model.
CLP_BLOCK_BITS = 6

#: Below this many misses, ``on_miss_batch`` hashes scalar — a numpy
#: round-trip on a run of one or two PCs costs more than it saves.
_BATCH_HASH_MIN = 32


@dataclass(slots=True)
class LevelToken:
    """Ties an in-flight fetch back to the predicting table entry."""

    index: int
    tag: int
    #: The level the table predicted, or ``None`` when it had no history.
    predicted_level: Optional[int]
    #: The level the modelled hierarchy actually served the miss from.
    actual_level: int


@dataclass(slots=True)
class CacheLevelStats:
    """Event counters for the CLP baseline."""

    lookups: int = 0
    predictions: int = 0
    correct: int = 0
    incorrect: int = 0
    tag_misses: int = 0
    cold_misses: int = 0
    stale_trainings: int = 0
    #: Misses the modelled L2 served vs. filled from memory.
    l2_hits: int = 0
    memory_fills: int = 0
    static_pcs: set = field(default_factory=set)

    @property
    def accuracy(self) -> float:
        """Fraction of attempted level predictions that were correct."""
        return safe_ratio(self.correct, self.correct + self.incorrect)


@dataclass(slots=True)
class LevelEntry:
    """One tag-history table slot: a tag plus recent hit levels."""

    tag: int
    levels: HistoryBuffer

    def reallocate(self, tag: int) -> None:
        self.tag = tag
        self.levels.clear()


class CacheLevelPredictor(ScalarBatchFallback):
    """Tag-history table predicting the hit level of approximable misses.

    Table organisation mirrors the approximator (``table_entries`` slots
    indexed by ``context_hash``, ``lhb_size``-deep per-entry history) so
    the comparison with LVA/LVP holds hardware budget constant.
    """

    def __init__(self, config: Optional[ApproximatorConfig] = None) -> None:
        self.config = config or ApproximatorConfig()
        self.stats = CacheLevelStats()
        self._table: Dict[int, LevelEntry] = {}
        #: Modelled L2: block address -> True, plain LRU via move_to_end.
        self._l2: "OrderedDict[int, bool]" = OrderedDict()
        self._index_bits = self.config.index_bits
        self._tag_bits = self.config.tag_bits

    def _probe_hierarchy(self, addr: int) -> int:
        """The level this miss is actually served from; fills the L2."""
        block = addr >> CLP_BLOCK_BITS
        l2 = self._l2
        if block in l2:
            l2.move_to_end(block)
            self.stats.l2_hits += 1
            return LEVEL_L2
        self.stats.memory_fills += 1
        l2[block] = True
        if len(l2) > CLP_L2_BLOCKS:
            l2.popitem(last=False)
        return LEVEL_MEMORY

    def on_miss(self, pc: int, is_float: bool, addr: int = 0) -> PredictorDecision:
        """Present a load miss; the block is always fetched regardless."""
        del is_float  # levels are value-type agnostic
        stats = self.stats
        stats.lookups += 1
        stats.static_pcs.add(pc)
        index, tag = context_hash(pc, (), self._index_bits, self._tag_bits, 0)
        entry = self._table.get(index)
        if entry is None:
            entry = LevelEntry(tag, HistoryBuffer(self.config.lhb_size))
            self._table[index] = entry
            stats.tag_misses += 1
        elif entry.tag != tag:
            entry.reallocate(tag)
            stats.tag_misses += 1

        actual_level = self._probe_hierarchy(addr)
        history = entry.levels.values()
        if not history:
            stats.cold_misses += 1
            return PredictorDecision(
                predicted=False,
                value=None,
                fetch=True,
                token=LevelToken(index, tag, None, actual_level),
            )
        stats.predictions += 1
        l2_votes = sum(1 for level in history if level == LEVEL_L2)
        predicted = LEVEL_L2 if 2 * l2_votes > len(history) else LEVEL_MEMORY
        return PredictorDecision(
            predicted=True,
            value=None,
            fetch=True,
            token=LevelToken(index, tag, predicted, actual_level),
        )

    def on_miss_batch(
        self,
        pcs: Sequence[int],
        float_flags: Sequence[bool],
        addrs: Sequence[int],
    ) -> List[PredictorDecision]:
        """Columnar ``on_miss``: hash the whole PC run in numpy passes.

        The CLP's context never includes the GHB (``context_hash(pc, ())``),
        so the index/tag hashing — the bulk of the per-miss arithmetic —
        batches with :func:`context_hash_array`. The table walk, the
        modelled-L2 probe (whose LRU order is the miss order, preserved
        here) and the majority vote stay a tight scalar loop over plain
        lists; results are bit-identical to the scalar path.

        Batches shorter than ``_BATCH_HASH_MIN`` hash scalar instead:
        the value-delay window keeps most runs to a handful of misses,
        and a numpy round-trip per tiny run costs more than it saves.
        Both hashers produce identical index/tag pairs, so the cutover
        is invisible to results.
        """
        del float_flags  # levels are value-type agnostic
        n = len(pcs)
        if n < _BATCH_HASH_MIN:
            index_bits, tag_bits = self._index_bits, self._tag_bits
            pairs = [context_hash(pc, (), index_bits, tag_bits, 0) for pc in pcs]
            indices = [pair[0] for pair in pairs]
            tags = [pair[1] for pair in pairs]
        else:
            index_arr, tag_arr = context_hash_array(
                np.asarray(pcs, dtype=np.uint64), self._index_bits, self._tag_bits
            )
            indices = index_arr.tolist()
            tags = tag_arr.tolist()
        stats = self.stats
        table = self._table
        lhb_size = self.config.lhb_size
        decisions: List[PredictorDecision] = []
        stats.lookups += n
        stats.static_pcs.update(pcs)
        for i in range(n):
            index = indices[i]
            tag = tags[i]
            entry = table.get(index)
            if entry is None:
                entry = LevelEntry(tag, HistoryBuffer(lhb_size))
                table[index] = entry
                stats.tag_misses += 1
            elif entry.tag != tag:
                entry.reallocate(tag)
                stats.tag_misses += 1
            actual_level = self._probe_hierarchy(addrs[i])
            history = entry.levels.values()
            if not history:
                stats.cold_misses += 1
                decisions.append(
                    PredictorDecision(
                        predicted=False,
                        value=None,
                        fetch=True,
                        token=LevelToken(index, tag, None, actual_level),
                    )
                )
                continue
            stats.predictions += 1
            l2_votes = sum(1 for level in history if level == LEVEL_L2)
            predicted = LEVEL_L2 if 2 * l2_votes > len(history) else LEVEL_MEMORY
            decisions.append(
                PredictorDecision(
                    predicted=True,
                    value=None,
                    fetch=True,
                    token=LevelToken(index, tag, predicted, actual_level),
                )
            )
        return decisions

    def train(self, token: LevelToken, actual: Number) -> bool:
        """Validate the level prediction and record the observed level.

        The fetched *value* is irrelevant to a level predictor; only the
        level recorded at probe time trains the history. Returns True
        when the prediction was correct — the miss latency above the
        predicted level was covered.
        """
        del actual
        correct = token.predicted_level == token.actual_level
        if token.predicted_level is not None:
            if correct:
                self.stats.correct += 1
            else:
                self.stats.incorrect += 1
        entry = self._table.get(token.index)
        if entry is None or entry.tag != token.tag:
            self.stats.stale_trainings += 1
            return correct
        entry.levels.push(token.actual_level)
        return correct

    @property
    def allocated_entries(self) -> int:
        """Number of table slots touched so far."""
        return len(self._table)

    def reset(self) -> None:
        """Clear all architectural state (table, modelled L2) and statistics."""
        self._table.clear()
        self._l2.clear()
        self.stats = CacheLevelStats()


register_predictor(
    PredictorInfo(
        name="clp",
        factory=CacheLevelPredictor,
        description="cache-level predictor: tag-history table over hit levels, rollback on miss",
        zero_output_error=True,
        batch_kernel="batch",
    )
)
