"""Cache-level prediction (CLP) baseline.

Following "Reducing Load Latency with Cache Level Prediction" (Jalili &
Erez), the stronger baseline family predicts *where* a load hits rather
than its value: a correct level prediction lets the core issue the fill
request directly to the right level and hide the lookup latencies above
it. This model keeps the trace-driven framing of the repo:

* the phase-1 simulator only models L1 + backing store, so the CLP
  carries its own small modelled L2 (plain-LRU block set) between them;
  every presented miss probes it for the *actual* hit level and then
  fills it, exactly like a fetch would;
* a tag-history table — same ``context_hash`` indexing as the
  approximator — records the recent hit levels per context and predicts
  by majority vote (ties predict the deeper level, the safe direction);
* like LVP, the prediction is validated against the simulated hierarchy
  and a misprediction rolls back: the block is always fetched, no value
  is ever approximated, so the output error is zero by construction. A
  *correct* level prediction counts the miss as covered.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.config import ApproximatorConfig
from repro.core.hashing import context_hash
from repro.core.history import HistoryBuffer
from repro.predictors.base import PredictorDecision
from repro.predictors.registry import PredictorInfo, register_predictor
from repro.telemetry.registry import safe_ratio

Number = Union[int, float]

#: Hit levels the CLP distinguishes (L1 is excluded: only misses arrive).
LEVEL_L2 = 2
LEVEL_MEMORY = 3

#: Capacity of the modelled L2 in blocks (4096 × 64 B = 256 KB).
CLP_L2_BLOCKS = 4096
#: log2 of the block size shared with the L1 model.
CLP_BLOCK_BITS = 6


@dataclass(slots=True)
class LevelToken:
    """Ties an in-flight fetch back to the predicting table entry."""

    index: int
    tag: int
    #: The level the table predicted, or ``None`` when it had no history.
    predicted_level: Optional[int]
    #: The level the modelled hierarchy actually served the miss from.
    actual_level: int


@dataclass(slots=True)
class CacheLevelStats:
    """Event counters for the CLP baseline."""

    lookups: int = 0
    predictions: int = 0
    correct: int = 0
    incorrect: int = 0
    tag_misses: int = 0
    cold_misses: int = 0
    stale_trainings: int = 0
    #: Misses the modelled L2 served vs. filled from memory.
    l2_hits: int = 0
    memory_fills: int = 0
    static_pcs: set = field(default_factory=set)

    @property
    def accuracy(self) -> float:
        """Fraction of attempted level predictions that were correct."""
        return safe_ratio(self.correct, self.correct + self.incorrect)


@dataclass(slots=True)
class LevelEntry:
    """One tag-history table slot: a tag plus recent hit levels."""

    tag: int
    levels: HistoryBuffer

    def reallocate(self, tag: int) -> None:
        self.tag = tag
        self.levels.clear()


class CacheLevelPredictor:
    """Tag-history table predicting the hit level of approximable misses.

    Table organisation mirrors the approximator (``table_entries`` slots
    indexed by ``context_hash``, ``lhb_size``-deep per-entry history) so
    the comparison with LVA/LVP holds hardware budget constant.
    """

    def __init__(self, config: Optional[ApproximatorConfig] = None) -> None:
        self.config = config or ApproximatorConfig()
        self.stats = CacheLevelStats()
        self._table: Dict[int, LevelEntry] = {}
        #: Modelled L2: block address -> True, plain LRU via move_to_end.
        self._l2: "OrderedDict[int, bool]" = OrderedDict()
        self._index_bits = self.config.index_bits
        self._tag_bits = self.config.tag_bits

    def _probe_hierarchy(self, addr: int) -> int:
        """The level this miss is actually served from; fills the L2."""
        block = addr >> CLP_BLOCK_BITS
        l2 = self._l2
        if block in l2:
            l2.move_to_end(block)
            self.stats.l2_hits += 1
            return LEVEL_L2
        self.stats.memory_fills += 1
        l2[block] = True
        if len(l2) > CLP_L2_BLOCKS:
            l2.popitem(last=False)
        return LEVEL_MEMORY

    def on_miss(self, pc: int, is_float: bool, addr: int = 0) -> PredictorDecision:
        """Present a load miss; the block is always fetched regardless."""
        del is_float  # levels are value-type agnostic
        stats = self.stats
        stats.lookups += 1
        stats.static_pcs.add(pc)
        index, tag = context_hash(pc, (), self._index_bits, self._tag_bits, 0)
        entry = self._table.get(index)
        if entry is None:
            entry = LevelEntry(tag, HistoryBuffer(self.config.lhb_size))
            self._table[index] = entry
            stats.tag_misses += 1
        elif entry.tag != tag:
            entry.reallocate(tag)
            stats.tag_misses += 1

        actual_level = self._probe_hierarchy(addr)
        history = entry.levels.values()
        if not history:
            stats.cold_misses += 1
            return PredictorDecision(
                predicted=False,
                value=None,
                fetch=True,
                token=LevelToken(index, tag, None, actual_level),
            )
        stats.predictions += 1
        l2_votes = sum(1 for level in history if level == LEVEL_L2)
        predicted = LEVEL_L2 if 2 * l2_votes > len(history) else LEVEL_MEMORY
        return PredictorDecision(
            predicted=True,
            value=None,
            fetch=True,
            token=LevelToken(index, tag, predicted, actual_level),
        )

    def train(self, token: LevelToken, actual: Number) -> bool:
        """Validate the level prediction and record the observed level.

        The fetched *value* is irrelevant to a level predictor; only the
        level recorded at probe time trains the history. Returns True
        when the prediction was correct — the miss latency above the
        predicted level was covered.
        """
        del actual
        correct = token.predicted_level == token.actual_level
        if token.predicted_level is not None:
            if correct:
                self.stats.correct += 1
            else:
                self.stats.incorrect += 1
        entry = self._table.get(token.index)
        if entry is None or entry.tag != token.tag:
            self.stats.stale_trainings += 1
            return correct
        entry.levels.push(token.actual_level)
        return correct

    @property
    def allocated_entries(self) -> int:
        """Number of table slots touched so far."""
        return len(self._table)

    def reset(self) -> None:
        """Clear all architectural state (table, modelled L2) and statistics."""
        self._table.clear()
        self._l2.clear()
        self.stats = CacheLevelStats()


register_predictor(
    PredictorInfo(
        name="clp",
        factory=CacheLevelPredictor,
        description="cache-level predictor: tag-history table over hit levels, rollback on miss",
        zero_output_error=True,
    )
)
