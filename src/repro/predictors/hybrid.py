"""Context-mixing hybrid: arbitrate LVA vs. LVP per entry by recent accuracy.

Runs the approximator and the idealized LVP side by side on the same
config and, per static load, chooses which one's decision drives the
core. The chooser is a signed saturating counter (one per PC, the same
tournament organisation as a combining branch predictor): every resolved
training bumps it toward whichever component was right when the other
was wrong, so each load converges on the technique that works for *its*
value stream — approximation for smoothly varying data, exact
prediction for small repeating value sets.

When the chooser picks LVA the decision (value, fetch skip, confidence
gating) is the approximator's and coverage is counted at decision time;
when it picks LVP the miss proceeds precisely with rollback semantics
and a correct oracle prediction counts the miss as covered at training
time. Both components train on every fetched value regardless of who
drove the decision, so neither starves while the other is selected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.approximator import LoadValueApproximator, TrainToken
from repro.core.config import ApproximatorConfig
from repro.core.confidence import confidence_update_steps
from repro.predictors.base import PredictorDecision, ScalarBatchFallback
from repro.predictors.lvp import IdealizedLoadValuePredictor, PredictionToken
from repro.predictors.registry import PredictorInfo, register_predictor

Number = Union[int, float]

#: Chooser saturation bounds; >= 0 selects LVA (the paper's technique is
#: the default until LVP proves more accurate for an entry).
CHOOSER_MIN = -4
CHOOSER_MAX = 3


@dataclass(slots=True)
class HybridToken:
    """Training handle carrying both components' tokens plus the choice."""

    pc: int
    chose_lva: bool
    lva_token: Optional[TrainToken]
    lvp_token: PredictionToken


@dataclass(slots=True)
class HybridStats:
    """Event counters for the hybrid arbiter."""

    lookups: int = 0
    #: Decisions driven by each component.
    lva_selected: int = 0
    lvp_selected: int = 0
    #: Misses the core continued approximately (LVA chosen + approximated).
    approximations: int = 0
    trainings: int = 0
    #: Resolved trainings where each component was (window-)correct.
    lva_correct_trainings: int = 0
    lvp_correct_trainings: int = 0
    static_pcs: set = field(default_factory=set)


class HybridPredictor(ScalarBatchFallback):
    """Tournament arbiter over a :class:`LoadValueApproximator` and an
    :class:`IdealizedLoadValuePredictor` built from the same config.

    The batch interface is the scalar-loop fallback: the chooser makes
    every decision data-dependent on the previous training outcome, so
    there is no columnar shortcut — the vector kernel still wins by
    batching everything *around* the miss stream (oracle, hashing,
    span segmentation)."""

    def __init__(self, config: Optional[ApproximatorConfig] = None) -> None:
        self.config = config or ApproximatorConfig()
        self.lva = LoadValueApproximator(self.config)
        self.lvp = IdealizedLoadValuePredictor(self.config)
        self.stats = HybridStats()
        self._chooser: Dict[int, int] = {}

    def on_miss(self, pc: int, is_float: bool, addr: int = 0) -> PredictorDecision:
        """Present one miss to both components; the chooser picks the driver."""
        del addr
        stats = self.stats
        stats.lookups += 1
        stats.static_pcs.add(pc)
        lva_decision = self.lva.on_miss(pc, is_float)
        lvp_decision = self.lvp.on_miss(pc, is_float)
        chose_lva = self._chooser.get(pc, 0) >= 0
        if chose_lva:
            stats.lva_selected += 1
            value = lva_decision.value if lva_decision.approximated else None
            if value is not None:
                stats.approximations += 1
            fetch = lva_decision.fetch
        else:
            stats.lvp_selected += 1
            value = None  # rollback semantics: the core stays precise
            fetch = True
        token = HybridToken(pc, chose_lva, lva_decision.token, lvp_decision.token)
        return PredictorDecision(
            predicted=value is not None or (not chose_lva and lvp_decision.predicted),
            value=value,
            fetch=fetch,
            # A skipped fetch (LVA degree reuse) resolves no training round.
            token=token if fetch else None,
        )

    def train(self, token: HybridToken, actual: Number) -> bool:
        """Train both components, settle the chooser, report coverage.

        Returns True only for LVP-driven decisions whose oracle
        prediction was correct — LVA-driven coverage was already counted
        at decision time by the simulator.
        """
        stats = self.stats
        stats.trainings += 1
        lva_token = token.lva_token
        shadow = lva_token.shadow_value if lva_token is not None else None
        if lva_token is not None:
            self.lva.train(lva_token, actual)
        lva_correct = shadow is not None and (
            confidence_update_steps(shadow, actual, self.config.confidence_window, 1) > 0
        )
        lvp_correct = self.lvp.train(token.lvp_token, actual)
        if lva_correct:
            stats.lva_correct_trainings += 1
        if lvp_correct:
            stats.lvp_correct_trainings += 1
        if lva_correct != lvp_correct:
            chooser = self._chooser
            counter = chooser.get(token.pc, 0)
            if lva_correct:
                chooser[token.pc] = min(CHOOSER_MAX, counter + 1)
            else:
                chooser[token.pc] = max(CHOOSER_MIN, counter - 1)
        return (not token.chose_lva) and lvp_correct

    @property
    def allocated_entries(self) -> int:
        """Table slots touched in the larger of the two component tables."""
        return max(self.lva.allocated_entries, self.lvp.allocated_entries)

    def reset(self) -> None:
        """Clear both components, the chooser, and statistics."""
        self.lva.reset()
        self.lvp.reset()
        self._chooser.clear()
        self.stats = HybridStats()


register_predictor(
    PredictorInfo(
        name="hybrid",
        description="tournament hybrid: per-PC chooser arbitrating LVA vs. idealized LVP",
        factory=HybridPredictor,
        zero_output_error=False,
        batch_kernel="batch",
        uses_degree=True,
    )
)
