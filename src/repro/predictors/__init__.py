"""Pluggable miss-predictor registry (ROADMAP item 3).

Every technique a :class:`~repro.sim.tracesim.TraceSimulator` can drive
on approximable load misses lives here behind the
:class:`~repro.predictors.base.MissPredictor` protocol and is resolved
by name through :mod:`~repro.predictors.registry`:

========= ==============================================================
``lva``   the paper's load value approximator (:mod:`repro.core.approximator`)
``lvp``   idealized load value predictor, Section VI baseline
``clp``   cache-level predictor (Jalili & Erez style hit-level prediction)
``hybrid`` per-PC tournament arbiter mixing LVA and LVP
========= ==============================================================

Importing this package registers the built-in entries; out-of-tree
predictors call :func:`register_predictor` themselves.
"""

from repro.predictors.base import (
    MissPredictor,
    PredictorDecision,
    ScalarBatchFallback,
)
from repro.predictors.registry import (
    DEFAULT_PREDICTOR,
    PredictorInfo,
    UnknownPredictorError,
    active_override,
    available_predictors,
    create,
    get_info,
    register_predictor,
    resolve_name,
)

# Built-in registrations (import order fixes the registry's insertion
# order; available_predictors() sorts, so only duplicates would matter).
from repro.predictors import lva as _lva
from repro.predictors import lvp as _lvp
from repro.predictors import clp as _clp
from repro.predictors import hybrid as _hybrid

__all__ = [
    "DEFAULT_PREDICTOR",
    "MissPredictor",
    "PredictorDecision",
    "PredictorInfo",
    "ScalarBatchFallback",
    "UnknownPredictorError",
    "active_override",
    "available_predictors",
    "create",
    "get_info",
    "register_predictor",
    "resolve_name",
]
