"""Registry entry for the paper's load value approximator.

The implementation stays in :mod:`repro.core.approximator` (it is the
paper's central artifact, not a baseline); this module only registers it
as the ``"lva"`` entry so ``Mode.PREDICTOR`` runs and the cross-predictor
comparison resolve it by name. The factory is the class itself — exactly
what ``Mode.LVA`` has always constructed, so the registry path is
bit-for-bit identical to the historical hard-coded one.
"""

from __future__ import annotations

from repro.core.approximator import LoadValueApproximator
from repro.predictors.registry import PredictorInfo, register_predictor

register_predictor(
    PredictorInfo(
        name="lva",
        factory=LoadValueApproximator,
        description="load value approximation: approximate f(LHB) values, no rollback",
        zero_output_error=False,
        batch_kernel="lva",
        uses_degree=True,
    )
)
