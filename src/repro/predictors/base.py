"""The ``MissPredictor`` protocol shared by every registry predictor.

A predictor is the technique object a :class:`~repro.sim.tracesim.TraceSimulator`
drives on approximable L1 load misses. The contract is exactly what the
simulator and the vectorized replay kernels already call:

* ``on_miss(pc, is_float, addr=0)`` — probe with one miss; returns a
  decision object carrying (at least) a training ``token`` and whether
  the block must still be fetched;
* ``train(token, actual)`` — validate against the actual value once the
  fetch lands (after the value delay). Predictors with rollback
  semantics return ``True`` when the prediction was correct, i.e. the
  miss latency was genuinely covered; the approximator returns ``None``
  because its coverage is counted at decision time;
* ``stats`` / ``reset()`` / ``allocated_entries`` — deterministic event
  counters and architectural-state introspection;
* ``config`` — the :class:`~repro.core.config.ApproximatorConfig` the
  predictor was built from (the disk/cache key component).

Generic predictors (anything that is not the LVA approximator or the
idealized LVP, which keep their historical decision dataclasses) return
:class:`PredictorDecision` from ``on_miss``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    List,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ApproximatorConfig

Number = Union[int, float]


@dataclass(slots=True)
class PredictorDecision:
    """Outcome of one load miss presented to a generic registry predictor."""

    #: True when the predictor produced *something* for this miss (a value
    #: or a structural prediction such as a hit level).
    predicted: bool
    #: The value the core continues with instead of stalling, or ``None``
    #: when the miss proceeds precisely (rollback-on-miss predictors never
    #: return a value, which is what makes their output error zero).
    value: Optional[Number]
    #: True when the block must still be fetched from the next level.
    fetch: bool
    #: Training handle threaded through the value-delay queue, if the
    #: prediction wants to be validated against the actual value.
    token: Optional[object]


@runtime_checkable
class MissPredictor(Protocol):
    """Structural protocol every registry predictor satisfies."""

    config: "ApproximatorConfig"
    stats: object

    def on_miss(self, pc: int, is_float: bool, addr: int = 0) -> object:
        """Probe with one approximable load miss; return a decision."""
        ...

    def train(self, token: object, actual: Number) -> Optional[bool]:
        """Validate/train with the actual value; ``True`` = miss covered."""
        ...

    def reset(self) -> None:
        """Clear all architectural state and statistics."""
        ...

    def on_miss_batch(
        self,
        pcs: Sequence[int],
        float_flags: Sequence[bool],
        addrs: Sequence[int],
    ) -> List[object]:
        """Probe with a run of consecutive misses; one decision per miss."""
        ...

    def train_batch(
        self, tokens: Sequence[object], actuals: Sequence[Number]
    ) -> int:
        """Train with a run of landed fetches; return covered-miss count."""
        ...

    @property
    def allocated_entries(self) -> int:
        """Number of table slots touched so far."""
        ...


class ScalarBatchFallback:
    """Default ``*_batch`` implementations that loop over the scalar API.

    Mixing this into a predictor satisfies the batch half of the
    :class:`MissPredictor` protocol without any vectorization work: the
    vector replay kernel hands the predictor pre-extracted scalar
    columns, and the fallback simply replays them through ``on_miss`` /
    ``train`` one element at a time. Predictors with genuinely batchable
    math (e.g. the cache-level predictor's context hashing) override
    ``on_miss_batch`` with a columnar implementation.

    The batch methods receive plain scalar sequences — never event
    objects — so they stay clean under the LVA003 batch-contract lint.
    """

    def on_miss_batch(
        self,
        pcs: Sequence[int],
        float_flags: Sequence[bool],
        addrs: Sequence[int],
    ) -> List[object]:
        on_miss = self.on_miss  # type: ignore[attr-defined]
        return [
            on_miss(pcs[i], float_flags[i], addrs[i]) for i in range(len(pcs))
        ]

    def train_batch(
        self, tokens: Sequence[object], actuals: Sequence[Number]
    ) -> int:
        train = self.train  # type: ignore[attr-defined]
        covered = 0
        for i in range(len(tokens)):
            if train(tokens[i], actuals[i]):
                covered += 1
        return covered
