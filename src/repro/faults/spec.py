"""Parsing and matching of fault-injection specifications.

A *spec* is a compact string naming one or more deterministic faults,
e.g. ``"crash:workload=canneal,mode=lva"`` or
``"flip:prob=0.001,seed=7;drop:prob=0.01"``. Clauses are separated by
``;``; each clause is ``kind`` optionally followed by ``:key=value``
parameters. Two families exist:

* **engine faults** (:data:`ENGINE_KINDS`) fire inside sweep workers and
  exercise the supervision paths of the experiment engine — crashing the
  worker process, hanging it, or raising deterministically;
* **memory faults** (:data:`MEMORY_KINDS`) perturb the simulated memory
  hierarchy itself — flipping bits in fetched values or dropping block
  fetches — so approximator behaviour under silent data corruption can
  be measured as an ablation;
* **storage faults** (:data:`STORAGE_KINDS`) perturb the persistence
  layer — torn writes, failed renames, ENOSPC/EIO, lost fsyncs,
  truncated mmaps, byte corruption, and hard kills at publish crash
  points — exercising the crash-consistency machinery of the disk
  cache, trace store and run journal (see
  :mod:`repro.faults.fsfaults`). Storage faults never change *what* a
  run computes (a corrupted entry heals as a miss and is recomputed),
  so, unlike memory faults, they fold into **nothing**: they must never
  enter cache keys.

Engine clauses select which sweep points they apply to via parameters:
``workload=``, ``mode=``, ``seed=``, ``small=``, ``kind=``
(``technique``/``precise``/``any``, default ``technique``) — plus any
:class:`~repro.core.config.ApproximatorConfig` field name
(e.g. ``mantissa_drop_bits=11``) for single-point precision.
Storage clauses select I/O operations instead: ``target=``
(``cache``/``trace``/``journal``/``any``), ``op=``/``site=`` (substring
of the operation site name), ``path=`` (substring of the file path),
and a deterministic occurrence window ``at=``/``count=``.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: Clause kinds that fire in sweep workers (engine supervision faults).
ENGINE_KINDS = frozenset({"crash", "hang", "raise", "flaky"})

#: Clause kinds that perturb the simulated memory hierarchy.
MEMORY_KINDS = frozenset({"flip", "drop"})

#: Clause kinds that perturb the storage layer (see repro.faults.fsfaults):
#: ``torn`` (partial write), ``fsync`` (lost write: tail reads back as
#: zeros), ``corrupt`` (byte flip), ``trunc`` (published file truncated),
#: ``enospc``/``eio`` (failing syscalls), ``rename`` (failed publish
#: rename), ``kill`` (hard process exit at a named publish crash point).
STORAGE_KINDS = frozenset(
    {"torn", "fsync", "corrupt", "trunc", "enospc", "eio", "rename", "kill"}
)


def _parse_value(text: str) -> object:
    """Parse a clause parameter: int, float, bool or bare string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


@dataclasses.dataclass(frozen=True)
class FaultClause:
    """One parsed fault: a kind plus its (sorted, hashable) parameters."""

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    def get(self, name: str, default: object = None) -> object:
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def is_engine(self) -> bool:
        return self.kind in ENGINE_KINDS

    @property
    def is_memory(self) -> bool:
        return self.kind in MEMORY_KINDS

    @property
    def is_storage(self) -> bool:
        return self.kind in STORAGE_KINDS

    def canonical(self) -> str:
        """Re-serialised clause text (stable: params are sorted)."""
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}:{inner}"

    # -- engine-clause point selection --------------------------------- #

    _SELECTORS: ClassVar[Tuple[str, ...]] = ("workload", "mode", "seed", "small", "kind")

    def matches(
        self,
        point_kind: str,
        workload: str,
        mode: Optional[str],
        seed: int,
        small: bool,
        config: object = None,
    ) -> bool:
        """True when this engine clause selects the given sweep point.

        ``config`` is the point's ApproximatorConfig (or None); any
        parameter that is neither a known selector nor a retry count is
        treated as a config field name and compared against it.
        """
        wanted_kind = self.get("kind", "technique")
        if wanted_kind != "any" and wanted_kind != point_kind:
            return False
        for key, value in self.params:
            if key in ("kind", "fails", "seconds"):
                continue
            if key == "workload":
                if value != workload:
                    return False
            elif key == "mode":
                if mode is None or str(value).lower() != mode.lower():
                    return False
            elif key == "seed":
                if value != seed:
                    return False
            elif key == "small":
                if bool(value) != small:
                    return False
            else:  # an ApproximatorConfig field
                if config is None or getattr(config, str(key), None) != value:
                    return False
        return True


def parse_spec(spec: str) -> Tuple[FaultClause, ...]:
    """Parse a fault spec string into clauses; raises on unknown kinds."""
    clauses: List[FaultClause] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, rest = chunk.partition(":")
        kind = kind.strip().lower()
        if kind not in ENGINE_KINDS | MEMORY_KINDS | STORAGE_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; known: "
                f"{', '.join(sorted(ENGINE_KINDS | MEMORY_KINDS | STORAGE_KINDS))}"
            )
        params: Dict[str, object] = {}
        for pair in rest.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise ConfigurationError(f"malformed fault parameter {pair!r}")
            key, _, value = pair.partition("=")
            params[key.strip()] = _parse_value(value.strip())
        clauses.append(FaultClause(kind=kind, params=tuple(sorted(params.items()))))
    return tuple(clauses)


def canonical_spec(clauses: Tuple[FaultClause, ...]) -> str:
    """A stable textual form of a clause set (participates in cache keys)."""
    return ";".join(clause.canonical() for clause in sorted(clauses, key=lambda c: c.canonical()))


def memory_clauses(clauses: Tuple[FaultClause, ...]) -> Tuple[FaultClause, ...]:
    return tuple(c for c in clauses if c.is_memory)


def engine_clauses(clauses: Tuple[FaultClause, ...]) -> Tuple[FaultClause, ...]:
    return tuple(c for c in clauses if c.is_engine)


def storage_clauses(clauses: Tuple[FaultClause, ...]) -> Tuple[FaultClause, ...]:
    return tuple(c for c in clauses if c.is_storage)


def params_from_mapping(params: Mapping[str, object]) -> Tuple[Tuple[str, object], ...]:
    """Helper for building clauses programmatically (tests, drivers)."""
    return tuple(sorted(params.items()))
