"""Deterministic memory-fault models: bit flips and dropped fetches.

The model perturbs values *as they arrive from the memory hierarchy* —
the silent-data-corruption regime of approximate-memory studies. Both
fault channels are driven by one seeded :class:`random.Random` stream,
so a given (spec, point) pair produces the identical fault pattern on
every run, across resume, and regardless of worker scheduling.

Activation is layered:

1. a *context spec* pushed with :func:`memory_faults` (what sweep
   workers do for points that carry a ``faults=`` field);
2. otherwise, the memory clauses of the global ``REPRO_INJECT``
   environment spec (what ``--inject flip:prob=1e-3`` sets), which
   worker processes inherit with no extra plumbing;
3. :func:`no_memory_faults` suppresses both — precise reference runs
   always execute clean, so injected error is always measured against an
   uncorrupted baseline.

The active canonical spec participates in the result-cache keys (see
:mod:`repro.experiments.common`), so faulty results can never poison the
clean cache and vice versa.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import random
import struct
from typing import Optional, Tuple, Union

from repro.envspec import INJECT_ENV
from repro.faults import spec as spec_mod

Number = Union[int, float]

# INJECT_ENV (the --inject spec carrier) is declared in repro.envspec —
# it is the one environment variable classified `keyed`: its memory
# clauses fold into the result-cache keys through active_memory_spec().

#: Float bit regions selectable with ``region=`` (IEEE-754 double).
_FLOAT_REGIONS = {
    "mantissa": (0, 52),   # flips change magnitude slightly; value stays finite
    "exponent": (52, 63),
    "any": (0, 64),
}


class MemoryFaultModel:
    """Seeded bit-flip / fetch-drop model for one simulator instance.

    ``flip_prob`` is the per-memory-served-value probability of flipping
    ``bits`` random bits; floats flip within ``region`` of the IEEE-754
    pattern (default ``mantissa``, keeping values finite), integers flip
    within the low ``width`` bits. ``drop_prob`` is the per-fetch
    probability that a block fetch is silently lost.
    """

    def __init__(
        self,
        flip_prob: float = 0.0,
        drop_prob: float = 0.0,
        bits: int = 1,
        width: int = 16,
        region: str = "mantissa",
        seed: int = 0,
    ) -> None:
        self.flip_prob = flip_prob
        self.drop_prob = drop_prob
        self.bits = max(1, bits)
        self.width = max(1, width)
        self.region = region if region in _FLOAT_REGIONS else "mantissa"
        self.seed = seed
        self._rng = random.Random(seed)
        self.flips = 0
        self.drops = 0

    @classmethod
    def from_clauses(
        cls, clauses: Tuple[spec_mod.FaultClause, ...]
    ) -> Optional["MemoryFaultModel"]:
        """Build a model from the memory clauses of a spec (or None)."""
        flip_prob = drop_prob = 0.0
        bits, width, region, seed = 1, 16, "mantissa", 0
        seen = False
        for clause in spec_mod.memory_clauses(clauses):
            seen = True
            if clause.kind == "flip":
                flip_prob = float(clause.get("prob", 1e-3))
                bits = int(clause.get("bits", 1))
                width = int(clause.get("width", 16))
                region = str(clause.get("region", "mantissa"))
                seed = int(clause.get("seed", seed))
            elif clause.kind == "drop":
                drop_prob = float(clause.get("prob", 1e-2))
                seed = int(clause.get("seed", seed))
        if not seen:
            return None
        return cls(
            flip_prob=flip_prob,
            drop_prob=drop_prob,
            bits=bits,
            width=width,
            region=region,
            seed=seed,
        )

    # -- fault channels ------------------------------------------------- #

    def corrupt_value(self, value: Number, is_float: bool) -> Tuple[Number, bool]:
        """Possibly flip bits in a memory-served value.

        Returns ``(value, flipped)``; the RNG is consumed exactly once
        per call regardless of outcome, keeping the fault pattern
        independent of where in the run the faults actually land.
        """
        if self.flip_prob <= 0.0 or self._rng.random() >= self.flip_prob:
            return value, False
        self.flips += 1
        if is_float:
            lo, hi = _FLOAT_REGIONS[self.region]
            (pattern,) = struct.unpack("<Q", struct.pack("<d", float(value)))
            for _ in range(self.bits):
                pattern ^= 1 << self._rng.randrange(lo, hi)
            (flipped,) = struct.unpack("<d", struct.pack("<Q", pattern))
            return flipped, True
        flipped_int = int(value)
        for _ in range(self.bits):
            flipped_int ^= 1 << self._rng.randrange(self.width)
        return flipped_int, True

    def drop_fetch(self) -> bool:
        """True when this block fetch is silently lost."""
        if self.drop_prob <= 0.0:
            return False
        if self._rng.random() < self.drop_prob:
            self.drops += 1
            return True
        return False


# --------------------------------------------------------------------- #
# Activation context                                                     #
# --------------------------------------------------------------------- #

#: Context override: None = fall through to the environment spec.
_CONTEXT_SPEC: Optional[str] = None
#: Suppression depth (precise reference runs execute clean).
_SUPPRESS_DEPTH = 0


@contextlib.contextmanager
def memory_faults(spec: str):
    """Activate a memory-fault spec for the duration of the block.

    An empty spec is a no-op context (the environment spec, if any,
    stays in effect) so callers can wrap unconditionally.
    """
    global _CONTEXT_SPEC
    if not spec:
        yield
        return
    previous = _CONTEXT_SPEC
    _CONTEXT_SPEC = spec
    try:
        yield
    finally:
        _CONTEXT_SPEC = previous


@contextlib.contextmanager
def no_memory_faults():
    """Suppress every memory fault source (clean baselines)."""
    global _SUPPRESS_DEPTH
    _SUPPRESS_DEPTH += 1
    try:
        yield
    finally:
        _SUPPRESS_DEPTH -= 1


def active_memory_spec() -> str:
    """The canonical memory-fault spec in effect ("" when none).

    Canonicalisation makes equivalent spellings key-identical, and the
    returned string is exactly what the result-cache keys embed.
    """
    if _SUPPRESS_DEPTH:
        return ""
    raw = _CONTEXT_SPEC if _CONTEXT_SPEC is not None else os.environ.get(INJECT_ENV, "")
    if not raw:
        return ""
    clauses = spec_mod.memory_clauses(spec_mod.parse_spec(raw))
    return spec_mod.canonical_spec(clauses)


def build_memory_model() -> Optional[MemoryFaultModel]:
    """A fresh model for the active spec, or None when clean.

    Each simulator gets its own model (and RNG stream) so fault patterns
    are per-run deterministic whatever the worker scheduling; the stream
    seed mixes the spec's ``seed=`` with a hash of the spec itself so
    distinct specs never share a stream.
    """
    spec_text = active_memory_spec()
    if not spec_text:
        return None
    clauses = spec_mod.parse_spec(spec_text)
    model = MemoryFaultModel.from_clauses(clauses)
    if model is not None:
        digest = int(hashlib.sha256(spec_text.encode("utf-8")).hexdigest()[:8], 16)
        model._rng = random.Random(model.seed ^ digest)
    return model
