"""Deterministic fault injection for the engine, simulator and storage.

Three fault families share one spec grammar (see :mod:`repro.faults.spec`):

* **engine faults** (``crash``/``hang``/``raise``/``flaky``) fire inside
  sweep workers to exercise the supervision machinery of
  :mod:`repro.experiments.sweep` — retries, per-point timeouts,
  ``BrokenProcessPool`` recovery and serial degradation;
* **memory faults** (``flip``/``drop``) perturb the simulated memory
  hierarchy — bit flips in fetched values, silently lost block fetches —
  so approximator confidence/error behaviour under silent data
  corruption is measurable (the ``ablate-memory-faults`` experiment);
* **storage faults** (``torn``/``fsync``/``corrupt``/``trunc``/
  ``enospc``/``eio``/``rename``/``kill``) perturb the persistence layer
  (:mod:`repro.faults.fsfaults`) to exercise the crash-consistency
  machinery of the disk cache, trace store and run journal.

Activate globally with ``--inject SPEC`` (environment-carried, so worker
processes inherit it) or per sweep point via ``SweepPoint.faults``.
"""

from repro.faults.fsfaults import (
    CRASH_POINTS,
    KILL_EXIT_STATUS,
    active_storage_clauses,
    storage_spec_is_foldable,
)
from repro.faults.injector import (
    CRASH_EXIT_STATUS,
    activate,
    active_engine_clauses,
    before_point,
    corrupt_entry,
    deactivate,
)
from repro.faults.memory import (
    INJECT_ENV,
    MemoryFaultModel,
    active_memory_spec,
    build_memory_model,
    memory_faults,
    no_memory_faults,
)
from repro.faults.spec import (
    ENGINE_KINDS,
    MEMORY_KINDS,
    STORAGE_KINDS,
    FaultClause,
    canonical_spec,
    engine_clauses,
    memory_clauses,
    parse_spec,
    storage_clauses,
)

__all__ = [
    "CRASH_EXIT_STATUS",
    "CRASH_POINTS",
    "ENGINE_KINDS",
    "FaultClause",
    "INJECT_ENV",
    "KILL_EXIT_STATUS",
    "MEMORY_KINDS",
    "MemoryFaultModel",
    "STORAGE_KINDS",
    "activate",
    "active_engine_clauses",
    "active_memory_spec",
    "active_storage_clauses",
    "before_point",
    "build_memory_model",
    "canonical_spec",
    "corrupt_entry",
    "deactivate",
    "engine_clauses",
    "memory_clauses",
    "memory_faults",
    "no_memory_faults",
    "parse_spec",
    "storage_clauses",
    "storage_spec_is_foldable",
]
