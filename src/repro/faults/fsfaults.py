"""Deterministic filesystem fault injection for the storage layer.

The persistence tier — the pickled result :mod:`~repro.experiments.
diskcache`, the ``.npy`` column :mod:`~repro.experiments.tracestore` and
the JSONL run :mod:`~repro.experiments.journal` — promises that a sweep
either completes **bit-identical** to a fault-free run or fails loudly.
This module is how that promise is adversarially exercised: the storage
modules route their I/O through four narrow hooks (:func:`on_write`,
:func:`on_rename`, :func:`on_read`, :func:`damage_published`) plus named
:func:`crash_point` markers at every step of an atomic publish, and the
active ``REPRO_INJECT`` spec (see :mod:`repro.faults.spec`) decides,
deterministically, which operations misbehave and how.

Fault kinds (``STORAGE_KINDS``):

=========  ==============================================================
``torn``   a write persists only its first ``frac`` fraction (crash or
           lost buffer mid-write)
``fsync``  a write "succeeds" but the tail ``frac`` fraction reads back
           as zeros (blocks that never reached the platter)
``corrupt``  one payload byte is XORed with ``xor=`` (silent bit rot);
           fires at write sites by default, or post-publish when the
           clause selects a published site (``site=published``)
``trunc``  a *published* file is truncated to ``frac`` of its length —
           the shape a torn mmap presents to readers
``enospc`` the write raises ``OSError(ENOSPC)``
``eio``    the matching operation raises ``OSError(EIO)`` (select reads
           with ``op=read``, writes with ``op=write``)
``rename`` the publish rename raises ``OSError(EIO)``
``kill``   the process hard-exits (``os._exit``, indistinguishable from
           SIGKILL for consistency purposes) at the crash point whose
           name contains ``site=``
=========  ==============================================================

Selectors shared by every kind: ``target=`` (``cache``/``trace``/
``journal``/``any``; default ``any``), ``op=`` and ``site=`` (substring
of the dotted operation-site name, e.g. ``op=write`` or
``site=trace.publish.pre_meta``), ``path=`` (substring of the file
path), and a deterministic occurrence window ``at=`` (1-based index of
the first matching operation that fires; default 1) and ``count=``
(how many matching operations fire from ``at``; default 0 = all).
Occurrence counters are per-process and reset with
:func:`reset_counters`, so a given (spec, process) pair replays the
identical fault schedule on every run.

Storage faults are *environmental*, not semantic: a faulted entry heals
as a cache miss and is recomputed, never served wrong. They therefore
fold into **nothing** — :func:`repro.faults.memory.active_memory_spec`
filters them out, so they can never enter a result-cache key.
"""

from __future__ import annotations

import errno
import os
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.faults import spec as spec_mod
from repro.faults.memory import INJECT_ENV

PathLike = Union[str, "os.PathLike[str]"]

#: Exit status of an injected storage ``kill`` (distinct from the engine
#: ``crash`` status 23, so logs attribute a death to the right injector).
KILL_EXIT_STATUS = 24

#: The publish crash points, in publish order, as wired into the storage
#: modules. ``kill:site=<substring>`` matches against these names; the
#: crash-recovery property suite iterates the full list.
CRASH_POINTS: Tuple[str, ...] = (
    "cache.publish.pre_write",
    "cache.publish.pre_rename",
    "cache.publish.post_rename",
    "trace.publish.pre_columns",
    "trace.publish.pre_meta",
    "trace.publish.pre_rename",
    "trace.publish.post_rename",
    "journal.append.pre_write",
    "journal.append.post_write",
)

# --------------------------------------------------------------------- #
# Active-spec resolution                                                #
# --------------------------------------------------------------------- #

#: Cache of the parsed storage clauses, keyed by the raw env value so a
#: monkeypatched/changed spec is picked up on the next operation.
_cached_raw: Optional[str] = None
_cached_clauses: Tuple[spec_mod.FaultClause, ...] = ()

#: Per-process occurrence counters: clause canonical form -> operations
#: matched so far (selectors only; the at/count window reads this).
_counts: Dict[str, int] = {}


def active_storage_clauses() -> Tuple[spec_mod.FaultClause, ...]:
    """The storage clauses of the ``REPRO_INJECT`` spec (cached parse)."""
    global _cached_raw, _cached_clauses
    raw = os.environ.get(INJECT_ENV, "")
    if raw != _cached_raw:
        _cached_raw = raw
        _cached_clauses = (
            spec_mod.storage_clauses(spec_mod.parse_spec(raw)) if raw else ()
        )
        _counts.clear()
    return _cached_clauses


def reset_counters() -> None:
    """Forget every occurrence counter (test isolation)."""
    _counts.clear()


# --------------------------------------------------------------------- #
# Selector matching                                                     #
# --------------------------------------------------------------------- #


def _fires(clause: spec_mod.FaultClause, site: str, path: PathLike) -> bool:
    """Whether ``clause`` selects this operation — and, if so, whether
    the occurrence falls inside the clause's deterministic ``at``/
    ``count`` window. Matching occurrences are counted even when outside
    the window, so the window indexes *operations*, not prior fires."""
    target = str(clause.get("target", "any"))
    if target not in ("any", site.split(".", 1)[0]):
        return False
    op = clause.get("op")
    if op is not None and str(op) not in site:
        return False
    wanted_site = clause.get("site")
    if wanted_site is not None and str(wanted_site) not in site:
        return False
    fragment = clause.get("path")
    if fragment is not None and str(fragment) not in str(path):
        return False
    token = clause.canonical()
    occurrence = _counts.get(token, 0) + 1
    _counts[token] = occurrence
    at = int(clause.get("at", 1))  # type: ignore[call-overload, arg-type]
    count = int(clause.get("count", 0))  # type: ignore[call-overload, arg-type]
    if occurrence < at:
        return False
    return count == 0 or occurrence < at + count


def _note(kind: str, site: str, path: PathLike) -> None:
    """Record an injected storage fault in the telemetry surfaces."""
    from repro import telemetry  # late: telemetry -> experiments cycles

    if telemetry.enabled():
        telemetry.metrics().counter(f"storage.fault.{kind}").add(1)
    tracer = telemetry.tracer()
    if tracer is not None:
        tracer.emit("fault.storage", kind=kind, site=site, path=str(path))


# --------------------------------------------------------------------- #
# The injection hooks                                                   #
# --------------------------------------------------------------------- #


def on_write(site: str, path: PathLike, data: bytes) -> bytes:
    """Filter payload bytes through the active write faults.

    Raises ``OSError(ENOSPC/EIO)`` for the failing-syscall kinds;
    returns a mangled payload for ``torn`` (prefix only), ``fsync``
    (tail zeroed) and ``corrupt`` (one byte XORed). The caller writes
    whatever comes back — checksums are computed over the *intended*
    bytes beforehand, which is exactly what lets verify-on-read detect
    the damage.
    """
    clauses = active_storage_clauses()
    if not clauses:
        return data
    for clause in clauses:
        if clause.kind not in ("torn", "fsync", "corrupt", "enospc", "eio"):
            continue
        if not _fires(clause, site, path):
            continue
        _note(clause.kind, site, path)
        if clause.kind == "enospc":
            raise OSError(errno.ENOSPC, "injected ENOSPC", str(path))
        if clause.kind == "eio":
            raise OSError(errno.EIO, "injected EIO", str(path))
        frac = float(clause.get("frac", 0.5))  # type: ignore[arg-type]
        if clause.kind == "torn":
            data = data[: int(len(data) * frac)]
        elif clause.kind == "fsync":
            kept = int(len(data) * frac)
            data = data[:kept] + b"\x00" * (len(data) - kept)
        elif clause.kind == "corrupt":
            data = _flip_byte(data, clause)
    return data


def on_rename(site: str, path: PathLike) -> None:
    """Raise for ``rename`` clauses selecting this publish rename."""
    for clause in active_storage_clauses():
        if clause.kind == "rename" and _fires(clause, site, path):
            _note("rename", site, path)
            raise OSError(errno.EIO, "injected rename failure", str(path))


def on_read(site: str, path: PathLike) -> None:
    """Raise ``OSError(EIO)`` for ``eio`` clauses selecting this read."""
    for clause in active_storage_clauses():
        if clause.kind == "eio" and _fires(clause, site, path):
            _note("eio", site, path)
            raise OSError(errno.EIO, "injected EIO", str(path))


def damage_published(site: str, path: PathLike) -> None:
    """Apply post-publish damage (``trunc``/``corrupt``) to an entry.

    Models media bit rot and crash-truncated files *after* a successful
    atomic publish — the regime checksums-on-read exist for. ``path``
    may be a file or an entry directory (every regular file inside is a
    candidate; ``path=`` selects among them). Never raises: simulated
    rot must not turn into a new writer failure mode.
    """
    clauses = active_storage_clauses()
    if not clauses or not any(c.kind in ("trunc", "corrupt") for c in clauses):
        return
    root = Path(path)
    targets = sorted(p for p in root.rglob("*") if p.is_file()) if root.is_dir() else [root]
    for clause in clauses:
        if clause.kind not in ("trunc", "corrupt"):
            continue
        if clause.kind == "corrupt" and not (
            clause.get("site") is not None or clause.get("op") is not None
        ):
            # An unselective ``corrupt`` already fired at the write site;
            # XOR-ing the same byte again here would cancel the damage.
            # Post-publish rot must be asked for (site=published).
            continue
        for target in targets:
            if not _fires(clause, site, target):
                continue
            _note(clause.kind, site, target)
            try:
                blob = target.read_bytes()
                if clause.kind == "trunc":
                    frac = float(clause.get("frac", 0.5))  # type: ignore[arg-type]
                    blob = blob[: int(len(blob) * frac)]
                else:
                    blob = _flip_byte(blob, clause)
                target.write_bytes(blob)
            except OSError:
                pass


def crash_point(site: str) -> None:
    """Hard-exit at a named publish step when a ``kill`` clause matches.

    ``os._exit`` skips every atexit/finally handler — from the
    filesystem's point of view this is a SIGKILL landing exactly between
    two syscalls of the publish sequence, which is what the
    crash-recovery property suite needs to pin down.
    """
    for clause in active_storage_clauses():
        if clause.kind == "kill" and _fires(clause, site, site):
            _note("kill", site, site)
            os._exit(KILL_EXIT_STATUS)


def _flip_byte(data: bytes, clause: spec_mod.FaultClause) -> bytes:
    """XOR one byte of ``data`` per the clause's ``offset=``/``xor=``."""
    if not data:
        return data
    offset = int(clause.get("offset", -1))  # type: ignore[call-overload, arg-type]
    if offset < 0 or offset >= len(data):
        offset = len(data) // 2
    mask = int(clause.get("xor", 0xFF)) & 0xFF  # type: ignore[call-overload, arg-type]
    mutable = bytearray(data)
    mutable[offset] ^= mask or 0xFF  # xor=0 would be a silent no-op
    return bytes(mutable)


def storage_spec_is_foldable(keys: Iterable[str]) -> bool:
    """True when no storage clause text appears in any cache key.

    A convenience assertion for tests pinning the fold-into-nothing
    contract: storage faults change *whether* an entry survives on disk,
    never *what* a point computes, so their spec text must be absent
    from every result-cache key.
    """
    clauses = active_storage_clauses()
    if not clauses:
        return True
    fragments = [clause.canonical() for clause in clauses]
    return not any(fragment in key for key in keys for fragment in fragments)
