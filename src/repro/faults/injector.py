"""Engine-fault injectors: crash, hang, raise and flaky sweep workers.

:func:`before_point` is called by every sweep worker (and by the serial
executor in the parent) at the top of a point's computation. When the
active spec (``REPRO_INJECT`` / :func:`activate`) contains an engine
clause matching the point, the injector fires:

* ``crash`` — the worker process dies via ``os._exit`` (exercising
  ``BrokenProcessPool`` recovery). In the parent process it degrades to
  raising :class:`~repro.errors.WorkerCrashError` so the serial fallback
  records a :class:`~repro.experiments.sweep.PointFailure` instead of
  killing the whole run.
* ``hang`` — the worker sleeps ``seconds`` (default 3600; exercising the
  per-point timeout and pool-rebuild path).
* ``raise`` — raises :class:`~repro.errors.FaultInjectionError`
  deterministically on every attempt (exercising retry exhaustion).
* ``flaky`` — raises :class:`~repro.errors.WorkerCrashError` while
  ``attempt < fails`` (default 1), then succeeds (exercising that
  bounded retries actually recover transient failures).

Matching is deterministic and purely point-predicated (see
:meth:`repro.faults.spec.FaultClause.matches`), so the same point fails
the same way on every attempt of every run — which is what makes the
engine's recovery behaviour testable.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Optional

from repro import telemetry
from repro.errors import FaultInjectionError, WorkerCrashError
from repro.faults import spec as spec_mod
from repro.faults.memory import INJECT_ENV

#: Exit status of an injected worker crash (visible in pool diagnostics).
CRASH_EXIT_STATUS = 23


def activate(spec: str) -> None:
    """Install a fault spec process-wide (validates it first).

    The spec travels through the environment so pool workers inherit it
    with no extra plumbing — exactly like the disk-cache configuration.
    """
    spec_mod.parse_spec(spec)  # fail fast on typos, before any fork
    os.environ[INJECT_ENV] = spec


def deactivate() -> None:
    """Remove the active fault spec (mainly for tests)."""
    os.environ.pop(INJECT_ENV, None)


def active_engine_clauses() -> tuple:
    raw = os.environ.get(INJECT_ENV, "")
    if not raw:
        return ()
    return spec_mod.engine_clauses(spec_mod.parse_spec(raw))


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


def before_point(
    point_kind: str,
    workload: str,
    mode: Optional[str],
    seed: int,
    small: bool,
    config: object = None,
    attempt: int = 0,
) -> None:
    """Fire any matching engine fault for this point computation."""
    for clause in active_engine_clauses():
        if not clause.matches(point_kind, workload, mode, seed, small, config):
            continue
        description = f"injected {clause.kind} at {workload}/{mode or 'precise'}"
        tracer = telemetry.tracer()
        if tracer is not None:
            tracer.emit(
                "fault.engine",
                kind=clause.kind,
                point=f"{workload}/{mode or 'precise'}/seed={seed}",
                attempt=attempt,
            )
        if clause.kind == "crash":
            if _in_worker_process():
                os._exit(CRASH_EXIT_STATUS)
            raise WorkerCrashError(f"{description} (in-process)")
        if clause.kind == "hang":
            time.sleep(float(clause.get("seconds", 3600)))
        elif clause.kind == "raise":
            raise FaultInjectionError(description)
        elif clause.kind == "flaky":
            if attempt < int(clause.get("fails", 1)):
                raise WorkerCrashError(f"{description} (attempt {attempt})")


def corrupt_entry(path) -> None:
    """Garble one on-disk cache entry in place (test helper).

    Overwrites the file with bytes that start like a pickle but are
    truncated mid-stream — the shape a crash mid-write (on a filesystem
    without atomic rename) or disk pressure would leave behind.
    """
    with open(path, "wb") as handle:
        handle.write(b"\x80\x05INJECTED-CORRUPTION")
