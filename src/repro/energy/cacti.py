"""Analytical per-access dynamic energies at 32 nm (CACTI-like).

CACTI models an SRAM access as decoder + wordline + bitline + sense-amp +
output-driver energy; to first order the dominant bitline/wordline terms
scale with the square root of capacity (the array is laid out near-square)
and linearly with associativity's extra tag/data reads. We use

    E(size, assoc) = (base + k * sqrt(size_bytes) ) * (1 + alpha*(assoc-1))

with constants calibrated so the model lands on published CACTI 5.1-class
numbers at 32 nm:

* 16 KB 8-way L1  -> ~0.025 nJ/access
* 64 KB 8-way L1  -> ~0.045 nJ/access
* 512 KB 16-way L2 -> ~0.18 nJ/access

DRAM access energy (row activation + column read + I/O for a 64 B block)
is charged at 2 nJ per block, in line with DDR3-era measurements scaled to
a single-channel 1 GB part. NoC flit-hop energy (~6 pJ per flit per hop,
link + router at 32 nm) follows ORION-class estimates.

These constants matter only as *relative* weights between components; the
paper's headline results are normalized (energy savings, EDP ratios), which
are insensitive to the absolute calibration.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: Technology node the constants are calibrated for.
TECH_NM = 32

_SRAM_BASE_NJ = 0.004
_SRAM_K_NJ = 1.55e-4
_SRAM_ASSOC_ALPHA = 0.02

#: DRAM energy per 64-byte block access.
_DRAM_BLOCK_NJ = 2.0

#: Energy per flit per hop (link traversal + router switching).
_NOC_FLIT_HOP_NJ = 0.006


def sram_access_energy_nj(size_bytes: int, associativity: int = 1, tech_nm: int = TECH_NM) -> float:
    """Dynamic energy of one SRAM (cache or table) access, in nanojoules.

    Scales as sqrt(capacity) with a small per-way penalty; energy scales
    quadratically-ish with feature size, approximated as (tech/32)^2.
    """
    if size_bytes <= 0:
        raise ConfigurationError("SRAM size must be positive")
    if associativity < 1:
        raise ConfigurationError("associativity must be >= 1")
    scale = (tech_nm / TECH_NM) ** 2
    base = _SRAM_BASE_NJ + _SRAM_K_NJ * math.sqrt(size_bytes)
    return base * (1 + _SRAM_ASSOC_ALPHA * (associativity - 1)) * scale


def dram_access_energy_nj(block_bytes: int = 64, tech_nm: int = TECH_NM) -> float:
    """Dynamic energy of fetching one block from main memory, in nJ."""
    if block_bytes <= 0:
        raise ConfigurationError("block size must be positive")
    del tech_nm  # DRAM energy is dominated by the array, not the logic node
    return _DRAM_BLOCK_NJ * block_bytes / 64


def noc_flit_hop_energy_nj(tech_nm: int = TECH_NM) -> float:
    """Energy of moving one flit across one router + link, in nJ."""
    return _NOC_FLIT_HOP_NJ * (tech_nm / TECH_NM) ** 2


def approximator_table_energy_nj(
    table_entries: int = 512,
    lhb_size: int = 4,
    value_bits: int = 64,
    tag_bits: int = 21,
    confidence_bits: int = 4,
    tech_nm: int = TECH_NM,
) -> float:
    """Energy of one approximator-table lookup or training access, in nJ.

    The table is a small SRAM (Section VII-A: ~18 KB for 64-bit values);
    we size it exactly from the configuration and reuse the SRAM model, so
    the overhead the paper "factors into the energy results" is charged
    here too.
    """
    entry_bits = tag_bits + confidence_bits + 8 + lhb_size * value_bits
    size_bytes = max(1, table_entries * entry_bits // 8)
    return sram_access_energy_nj(size_bytes, associativity=1, tech_nm=tech_nm)
