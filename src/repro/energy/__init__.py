"""Dynamic-energy model (the CACTI substitute).

The paper feeds cache/memory/approximator geometries to CACTI 5.1 at 32 nm
and charges a fixed dynamic energy per access. We reproduce that flow with
an analytical SRAM/DRAM access-energy model calibrated against published
CACTI numbers, then account system energy from the simulators' access
counters — including the approximator-table overhead, as the paper does.
"""

from repro.energy.cacti import (
    approximator_table_energy_nj,
    dram_access_energy_nj,
    noc_flit_hop_energy_nj,
    sram_access_energy_nj,
)
from repro.energy.model import (
    EnergyBreakdown,
    EnergyModel,
    energy_delay_product,
    normalized_edp,
)

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "energy_delay_product",
    "normalized_edp",
    "approximator_table_energy_nj",
    "dram_access_energy_nj",
    "noc_flit_hop_energy_nj",
    "sram_access_energy_nj",
]
