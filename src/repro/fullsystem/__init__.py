"""Phase-2: full-system multiprocessor simulation (the FeS2 substitute).

Replays the 4-thread load traces captured in phase 1 through a timing model
of the Table II system: four 4-wide OoO cores with private 16 KB L1s, a
512 KB shared L2 distributed over a 2x2 mesh (3-cycle routers), 160-cycle
main memory and a per-core load value approximator. Reports the phase-2
metrics of Section VI-E: speedup, interconnect traffic, L1 miss latency,
dynamic energy savings and L1-miss EDP.
"""

from repro.fullsystem.config import FullSystemConfig
from repro.fullsystem.system import FullSystemResult, FullSystemSimulator

__all__ = ["FullSystemConfig", "FullSystemResult", "FullSystemSimulator"]
