"""Full-system configuration (Table II)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import ApproximatorConfig
from repro.cpu.core import CoreConfig
from repro.errors import ConfigurationError
from repro.mem.cache import CacheConfig
from repro.mem.dram import DRAMConfig
from repro.noc.network import NocConfig


@dataclass(frozen=True)
class FullSystemConfig:
    """The Table II platform.

    ================  ==========================================
    Processor         4 IA-32 cores, 2 GHz, 4-wide OoO, 32-entry ROB
    Private L1 cache  16 KB, 8-way, 1-cycle latency, 64 B blocks
    Shared L2 cache   512 KB distributed, 16-way, 6-cycle latency
    Main memory       1 GB, 160-cycle latency
    Cache coherence   MSI protocol
    Network-on-chip   2x2 mesh, 3-cycle routers
    ================  ==========================================

    ``approximate`` selects LVA mode; ``approximator`` configures the
    per-core approximators (value delay is *not* applied from the config in
    phase 2 — the real in-flight fetch latency provides it, averaging ~1 as
    the paper observes).
    """

    num_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=16 * 1024, associativity=8, block_bytes=64, latency=1
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=512 * 1024, associativity=16, block_bytes=64, latency=6
        )
    )
    memory_latency: int = 160
    #: "fixed" charges :attr:`memory_latency` per access (Table II);
    #: "dram" uses the banked row-buffer model of :mod:`repro.mem.dram`.
    memory_model: str = "fixed"
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    approximate: bool = False
    approximator: Optional[ApproximatorConfig] = None

    def __post_init__(self) -> None:
        if self.num_cores != self.noc.width * self.noc.height:
            raise ConfigurationError(
                "one core per mesh node required: "
                f"{self.num_cores} cores vs {self.noc.width}x{self.noc.height} mesh"
            )
        if self.l1.block_bytes != self.l2.block_bytes:
            raise ConfigurationError("L1 and L2 must share a block size")
        if self.memory_latency < 0:
            raise ConfigurationError("memory latency must be >= 0")
        if self.memory_model not in ("fixed", "dram"):
            raise ConfigurationError(
                f"memory_model must be 'fixed' or 'dram', got {self.memory_model!r}"
            )

    def resolved_approximator(self) -> ApproximatorConfig:
        """The approximator configuration, defaulting to the baseline."""
        return self.approximator or ApproximatorConfig()
