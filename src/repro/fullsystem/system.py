"""The 4-core full-system timing and energy simulator.

Trace-driven: each captured thread is pinned to a core; cores advance their
own clocks and the simulator always processes the core that is furthest
behind, so cross-core NoC contention is resolved in (approximate) global
time order. An L1 miss sends a request packet to the home L2 bank of the
block, pays the L2 (and, on an L2 miss, main-memory) latency, and returns a
data packet; the core overlaps the latency with younger work until its ROB
fills.

With approximation enabled, each core owns a private approximator. An
approximated miss retires immediately (never occupying the miss window);
its training fetch — when the approximation degree allows one — still
traverses the NoC and L2 off the critical path, and the approximator is
trained when that fetch completes, so the *value delay emerges from real
fetch latencies* instead of being a configured constant (Section VI-E
observes ~1 load on average).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.approximator import LoadValueApproximator, TrainToken
from repro.cpu.core import CoreTimingModel
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.errors import SimulationError
from repro.mem.cache import SetAssociativeCache
from repro.mem.coherence import CoherenceAction, MSIDirectory
from repro.mem.dram import DRAMModel
from repro.noc.network import MeshNetwork
from repro.fullsystem.config import FullSystemConfig
from repro.sim import kernels
from repro.sim.trace import PackedTrace, Trace
from repro.telemetry.registry import safe_ratio

Number = Union[int, float]


@dataclass
class FullSystemResult:
    """Phase-2 metrics for one replay."""

    cycles: float
    instructions: int
    loads: int
    raw_misses: int
    covered_misses: int
    fetches: int
    l2_accesses: int
    memory_accesses: int
    noc_flit_hops: int
    approximator_accesses: int
    total_miss_latency: float
    energy: EnergyBreakdown
    #: Per-core retire times, for load-balance inspection.
    core_cycles: List[float] = field(default_factory=list)
    #: Failure message for a sweep point that exhausted its retries
    #: (None for every real replay); set only by
    #: :func:`repro.experiments.common.failed_fullsystem_result`.
    failure: Optional[str] = None

    @property
    def average_miss_latency(self) -> float:
        """Mean latency over *all* raw misses; approximated misses count as
        zero, which is exactly how the paper's 'average L1 miss latency'
        falls by 41 % under LVA."""
        return safe_ratio(self.total_miss_latency, self.raw_misses)

    @property
    def miss_edp(self) -> float:
        """Energy-delay product of L1 misses (Figure 11's metric):
        miss-path dynamic energy x average L1 miss latency."""
        return self.energy.miss_path_nj * self.average_miss_latency

    def speedup_over(self, baseline: "FullSystemResult") -> float:
        """Relative speedup versus a baseline replay (0.085 = 8.5 %)."""
        return safe_ratio(baseline.cycles, self.cycles, default=1.0) - 1.0

    def energy_savings_over(self, baseline: "FullSystemResult") -> float:
        """Fractional dynamic-energy savings versus a baseline replay."""
        return 1.0 - safe_ratio(
            self.energy.total_nj, baseline.energy.total_nj, default=1.0
        )


class _PendingTraining:
    """Per-core queue of in-flight training fetches, ordered by completion."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, TrainToken, Number]] = []
        self._seq = 0

    def push(self, completion: float, token: TrainToken, value: Number) -> None:
        heapq.heappush(self._heap, (completion, self._seq, token, value))
        self._seq += 1

    def due(self, now: float) -> List[Tuple[TrainToken, Number]]:
        ready = []
        while self._heap and self._heap[0][0] <= now:
            _, _, token, value = heapq.heappop(self._heap)
            ready.append((token, value))
        return ready

    def drain(self) -> List[Tuple[TrainToken, Number]]:
        ready = [(token, value) for _, _, token, value in self._heap]
        self._heap.clear()
        return ready


class FullSystemSimulator:
    """Replay a 4-thread trace through the Table II platform."""

    def __init__(self, config: Optional[FullSystemConfig] = None) -> None:
        self.config = config or FullSystemConfig()
        cfg = self.config
        self.cores = [CoreTimingModel(cfg.core) for _ in range(cfg.num_cores)]
        self.l1s = [
            SetAssociativeCache(cfg.l1, name=f"L1-{i}") for i in range(cfg.num_cores)
        ]
        self.l2 = SetAssociativeCache(cfg.l2, name="L2")
        self.dram = DRAMModel(cfg.dram) if cfg.memory_model == "dram" else None
        self.noc = MeshNetwork(cfg.noc)
        self.directory = MSIDirectory(cfg.num_cores)
        self.energy_model = EnergyModel(
            l1_size_bytes=cfg.l1.size_bytes,
            l1_associativity=cfg.l1.associativity,
            l2_size_bytes=cfg.l2.size_bytes,
            l2_associativity=cfg.l2.associativity,
            approximator_entries=cfg.resolved_approximator().table_entries,
            approximator_lhb=cfg.resolved_approximator().lhb_size,
        )
        if cfg.approximate:
            approx_cfg = cfg.resolved_approximator()
            self.approximators: Optional[List[LoadValueApproximator]] = [
                LoadValueApproximator(approx_cfg) for _ in range(cfg.num_cores)
            ]
        else:
            self.approximators = None
        self._pending = [_PendingTraining() for _ in range(cfg.num_cores)]
        # Outstanding-fetch completion times per core: a finite MSHR file
        # paces how fast a core can pump fetches into the NoC (8 entries,
        # a typical L1 MSHR budget). Training fetches for approximated
        # misses are off the critical path and deprioritized (Section VI-C
        # suggests exactly this): they have their own small budget and are
        # *dropped* rather than queued when it is exhausted, so they can
        # never delay a demand miss.
        self._outstanding_demand: List[List[float]] = [[] for _ in range(cfg.num_cores)]
        self._outstanding_training: List[List[float]] = [
            [] for _ in range(cfg.num_cores)
        ]
        self.mshr_entries = 8
        self.training_fetch_budget = 4
        self.dropped_trainings = 0
        # Counters.
        self._loads = 0
        self._raw_misses = 0
        self._covered = 0
        self._fetches = 0
        self._l2_accesses = 0
        self._memory_accesses = 0
        self._total_miss_latency = 0.0
        self._instructions = 0

    # ------------------------------------------------------------------ #
    # Topology helpers                                                    #
    # ------------------------------------------------------------------ #

    def _bank_of(self, addr: int) -> int:
        """Home L2 bank (mesh node) of a block: low block-address interleave."""
        block = addr >> (self.config.l1.block_bytes.bit_length() - 1)
        return block % self.config.num_cores

    # ------------------------------------------------------------------ #
    # Miss servicing                                                      #
    # ------------------------------------------------------------------ #

    def _fetch_block(
        self, core_id: int, addr: int, departure: float, training: bool = False
    ) -> Optional[float]:
        """Fetch a block through NoC + L2 (+ memory); returns the completion
        time at the requesting core (or None for a dropped training fetch).
        Charges traffic and fills caches.

        Demand issue is paced by the core's MSHR file: with
        ``mshr_entries`` fetches already in flight the request waits for
        the oldest to complete. Training fetches use their own small budget
        and are dropped when it is full.
        """
        pool = (
            self._outstanding_training[core_id]
            if training
            else self._outstanding_demand[core_id]
        )
        while pool and pool[0] <= departure:
            heapq.heappop(pool)
        if training:
            if len(pool) >= self.training_fetch_budget:
                self.dropped_trainings += 1
                return None
        else:
            while len(pool) >= self.mshr_entries:
                departure = max(departure, heapq.heappop(pool))
        self._fetches += 1
        bank = self._bank_of(addr)
        request = self.noc.send(
            core_id,
            bank,
            int(departure),
            self.config.noc.control_flits,
            low_priority=training,
        )
        self._l2_accesses += 1
        service_done = request.arrival + self.config.l2.latency
        if not self.l2.probe(addr):
            self._memory_accesses += 1
            if self.dram is not None:
                service_done += self.dram.access(addr, service_done)
            else:
                service_done += self.config.memory_latency
            self.l2.fill(addr)
        reply = self.noc.send(
            bank,
            core_id,
            int(service_done),
            self.config.noc.data_flits(self.config.l1.block_bytes),
            low_priority=training,
        )
        self.directory.read(core_id, addr)
        self.l1s[core_id].fill(addr)
        heapq.heappush(pool, float(reply.arrival))
        return float(reply.arrival)

    # ------------------------------------------------------------------ #
    # Event processing                                                    #
    # ------------------------------------------------------------------ #

    def _apply_due_trainings(self, core_id: int) -> None:
        if self.approximators is None:
            return
        for token, value in self._pending[core_id].due(self.cores[core_id].clock):
            self.approximators[core_id].train(token, value)

    def _process_store(self, core_id: int, addr: int) -> None:
        """A store event (present only in traces captured with
        ``record_stores=True``): write-no-allocate with MSI invalidation of
        remote sharers. Stores retire through the store buffer and never
        stall the core (Section V-A: store misses are off the critical
        path); their cost here is the coherence traffic they generate."""
        core = self.cores[core_id]
        block = self.l1s[core_id].block_address(addr)
        hit = self.l1s[core_id].contains(addr)
        response = self.directory.write(core_id, block)
        for target, action in response.actions:
            if action is CoherenceAction.INVALIDATE and target != core_id:
                if self.l1s[target].invalidate(addr):
                    # One invalidation control message per remote sharer.
                    self.noc.send(
                        self._bank_of(addr), target,
                        int(core.clock), self.config.noc.control_flits,
                    )
        if hit:
            self.l1s[core_id].probe(addr, is_write=True)
        else:
            # Write-through to the home bank: a control-sized message.
            self.noc.send(
                core_id, self._bank_of(addr),
                int(core.clock), self.config.noc.control_flits,
            )
            self.directory.evict(core_id, block)  # no allocation performed
        core.advance(1)

    def _process_load(
        self,
        core_id: int,
        pc: int,
        addr: int,
        value: Number,
        is_float: bool,
        approximable: bool,
    ) -> None:
        core = self.cores[core_id]
        self._apply_due_trainings(core_id)
        self._loads += 1

        l1 = self.l1s[core_id]
        if l1.probe(addr):
            core.issue_load(0)
            return

        self._raw_misses += 1
        if self.approximators is not None and approximable:
            decision = self.approximators[core_id].on_miss(pc, is_float)
            if decision.approximated:
                self._covered += 1
                core.issue_load(0, blocking=False)
                if decision.fetch:
                    # Off the critical path: the fetch trains the entry when
                    # it lands, providing the emergent value delay. It may
                    # be dropped entirely under pressure.
                    completion = self._fetch_block(
                        core_id, addr, core.clock, training=True
                    )
                    if completion is not None:
                        self._pending[core_id].push(
                            completion, decision.token, value
                        )
                return
            # Not approximated (cold/unconfident): a normal blocking miss
            # whose arrival also trains the approximator.
            completion = self._fetch_block(core_id, addr, core.clock)
            latency = completion - core.clock
            self._total_miss_latency += latency
            core.issue_load(int(latency))
            if decision.token is not None:
                self._pending[core_id].push(completion, decision.token, value)
            return

        completion = self._fetch_block(core_id, addr, core.clock)
        latency = completion - core.clock
        self._total_miss_latency += latency
        core.issue_load(int(latency))

    # ------------------------------------------------------------------ #
    # Entry point                                                         #
    # ------------------------------------------------------------------ #

    def run(self, trace: Union[Trace, PackedTrace]) -> FullSystemResult:
        """Replay ``trace`` and return the phase-2 metrics.

        The hot loop consumes the packed (structure-of-arrays) form:
        a vectorized pre-pass partitions the trace into per-core event
        queues of plain tuples, and the scheduling loop then indexes
        those queues — no per-event dataclass allocation or attribute
        dispatch. ``Trace`` inputs are packed first; the result is
        bit-identical to :meth:`replay_events` on the same events.

        ``REPRO_REPLAY_KERNEL`` selects how the queues are built (the
        scheduling loop itself is genuinely sequential and shared by all
        paths): ``vector`` (the default) gathers each core's rows
        columnarily (``select`` + ``event_tuples`` over
        ``per_core_indices`` spans), ``packed`` indexes one global tuple
        list per row, and ``object`` delegates to the
        :meth:`replay_events` reference interpreter.
        """
        path = kernels.select_fullsystem_path()
        if path == "object":
            source = trace.to_trace() if isinstance(trace, PackedTrace) else trace
            return self.replay_events(source)
        packed = trace.pack() if isinstance(trace, Trace) else trace
        if not len(packed):
            raise SimulationError("cannot replay an empty trace")
        per_core = packed.per_core_indices(self.config.num_cores)
        if path == "packed":
            # Scalar pre-pass: one global tuple list, indexed per row.
            tuples = packed.event_tuples()
            queues: Dict[int, List[tuple]] = {
                core_id: [tuples[i] for i in rows.tolist()]
                for core_id, rows in per_core.items()
            }
        else:
            # Vectorized pre-pass: gather each core's rows as columns,
            # then one zip into per-event tuples (C-speed throughout).
            queues = {
                core_id: packed.select(rows).event_tuples()
                for core_id, rows in per_core.items()
            }
        cursors = {core_id: 0 for core_id in queues}
        gap_pending = {core_id: True for core_id in queues}
        cores = self.cores

        # Always advance the core that is furthest behind in time, so NoC
        # link reservations happen in near-global time order. Gap execution
        # and the load itself are separate scheduling steps: otherwise a
        # long gap would let one core stamp a packet far in the future and
        # spuriously queue every slower core's traffic behind it.
        while cursors:
            core_id = min(cursors, key=lambda c: cores[c].clock)
            events = queues[core_id]
            index = cursors[core_id]
            pc, addr, value, is_float, approximable, gap, is_store = events[index]
            if gap_pending[core_id]:
                gap_pending[core_id] = False
                if gap:
                    cores[core_id].advance(gap)
                    continue
            if is_store:
                self._process_store(core_id, addr)
            else:
                self._process_load(core_id, pc, addr, value, is_float, approximable)
            if index + 1 >= len(events):
                del cursors[core_id]
            else:
                cursors[core_id] = index + 1
                gap_pending[core_id] = True

        return self._finalize()

    def replay_events(self, trace: Trace) -> FullSystemResult:
        """Replay the object-list representation directly.

        The reference interpreter for the packed hot loop: identical
        scheduling over ``LoadEvent`` objects, kept so the differential
        tests can pin :meth:`run`'s bit-equality against it. Not the
        production path — :meth:`run` packs and uses the columnar loop.
        """
        streams = trace.per_thread()
        if not streams:
            raise SimulationError("cannot replay an empty trace")
        queues: Dict[int, List] = {}
        for tid, events in streams.items():
            queues.setdefault(tid % self.config.num_cores, []).extend(events)
        cursors = {core_id: 0 for core_id in queues}
        gap_pending = {core_id: True for core_id in queues}

        while cursors:
            core_id = min(cursors, key=lambda c: self.cores[c].clock)
            events = queues[core_id]
            index = cursors[core_id]
            event = events[index]
            if gap_pending[core_id]:
                gap_pending[core_id] = False
                if event.gap:
                    self.cores[core_id].advance(event.gap)
                    continue
            if event.is_store:
                self._process_store(core_id, event.addr)
            else:
                self._process_load(
                    core_id,
                    event.pc,
                    event.addr,
                    event.value,
                    event.is_float,
                    event.approximable,
                )
            if index + 1 >= len(events):
                del cursors[core_id]
            else:
                cursors[core_id] = index + 1
                gap_pending[core_id] = True

        return self._finalize()

    def _finalize(self) -> FullSystemResult:
        for core_id, core in enumerate(self.cores):
            core.finish()
            if self.approximators is not None:
                for token, value in self._pending[core_id].drain():
                    self.approximators[core_id].train(token, value)

        self._instructions = sum(core.stats.instructions for core in self.cores)
        approximator_accesses = 0
        if self.approximators is not None:
            approximator_accesses = sum(
                approx.stats.lookups + approx.stats.trainings
                for approx in self.approximators
            )
        energy = self.energy_model.account(
            l1_accesses=self._loads,
            l2_accesses=self._l2_accesses,
            memory_accesses=self._memory_accesses,
            noc_flit_hops=self.noc.stats.flit_hops,
            approximator_accesses=approximator_accesses,
        )
        return FullSystemResult(
            cycles=max(core.clock for core in self.cores),
            instructions=self._instructions,
            loads=self._loads,
            raw_misses=self._raw_misses,
            covered_misses=self._covered,
            fetches=self._fetches,
            l2_accesses=self._l2_accesses,
            memory_accesses=self._memory_accesses,
            noc_flit_hops=self.noc.stats.flit_hops,
            approximator_accesses=approximator_accesses,
            total_miss_latency=self._total_miss_latency,
            energy=energy,
            core_cycles=[core.clock for core in self.cores],
        )
