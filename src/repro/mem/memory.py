"""Main-memory timing/energy endpoint (1 GB, 160-cycle latency in Table II)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class MemoryStats:
    """Main-memory access counters (reads = block fetches, writes = writebacks)."""

    reads: int = 0
    writes: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses of either kind."""
        return self.reads + self.writes


class MainMemory:
    """Fixed-latency main memory.

    The paper models 1 GB at a 160-cycle access latency; contention in the
    memory controller is secondary to NoC and L2 effects at this scale, so
    accesses are unqueued. Energy is accounted per access by
    :mod:`repro.energy`.
    """

    def __init__(self, latency: int = 160, size_bytes: int = 1 << 30) -> None:
        if latency < 0:
            raise ConfigurationError("memory latency must be >= 0")
        if size_bytes <= 0:
            raise ConfigurationError("memory size must be positive")
        self.latency = latency
        self.size_bytes = size_bytes
        self.stats = MemoryStats()

    def read(self, addr: int) -> int:
        """Fetch the block containing ``addr``; returns the access latency."""
        del addr
        self.stats.reads += 1
        return self.latency

    def write(self, addr: int) -> int:
        """Write back the block containing ``addr``; returns the latency."""
        del addr
        self.stats.writes += 1
        return self.latency

    def reset(self) -> None:
        """Clear statistics."""
        self.stats = MemoryStats()
