"""Main-memory timing/energy endpoint (1 GB, 160-cycle latency in Table II)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(slots=True)
class MemoryStats:
    """Main-memory access counters (reads = block fetches, writes = writebacks)."""

    reads: int = 0
    writes: int = 0
    #: Block fetches silently lost to an injected fault (repro.faults).
    dropped_reads: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses of either kind."""
        return self.reads + self.writes


class MainMemory:
    """Fixed-latency main memory.

    The paper models 1 GB at a 160-cycle access latency; contention in the
    memory controller is secondary to NoC and L2 effects at this scale, so
    accesses are unqueued. Energy is accounted per access by
    :mod:`repro.energy`.
    """

    def __init__(
        self,
        latency: int = 160,
        size_bytes: int = 1 << 30,
        fault_model: Optional[object] = None,
    ) -> None:
        if latency < 0:
            raise ConfigurationError("memory latency must be >= 0")
        if size_bytes <= 0:
            raise ConfigurationError("memory size must be positive")
        self.latency = latency
        self.size_bytes = size_bytes
        #: Optional :class:`repro.faults.MemoryFaultModel` dropping fetches.
        self.fault_model = fault_model
        self.stats = MemoryStats()

    def read(self, addr: int) -> int:
        """Fetch the block containing ``addr``; returns the access latency."""
        del addr
        self.stats.reads += 1
        return self.latency

    def fetch_block(self, addr: int) -> Tuple[int, bool]:
        """Fault-aware block fetch: ``(latency, delivered)``.

        A dropped fetch still pays the full access latency (the request
        went out; the fill never came back) but delivers no data — the
        caller must not fill any cache level from it.
        """
        del addr
        if self.fault_model is not None and self.fault_model.drop_fetch():
            self.stats.dropped_reads += 1
            return self.latency, False
        self.stats.reads += 1
        return self.latency, True

    def write(self, addr: int) -> int:
        """Write back the block containing ``addr``; returns the latency."""
        del addr
        self.stats.writes += 1
        return self.latency

    def reset(self) -> None:
        """Clear statistics."""
        self.stats = MemoryStats()
