"""Replacement policies for set-associative caches.

Policies pick a victim way within one set. They are stateless objects —
all recency/insertion metadata lives in the blocks themselves — so one
policy instance can serve every set of every cache.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.mem.block import CacheBlock


class ReplacementPolicy(abc.ABC):
    """Strategy interface: choose which way of a set to evict."""

    @abc.abstractmethod
    def victim(self, ways: Sequence[CacheBlock]) -> int:
        """Index of the way to evict. Invalid ways are preferred by caches
        before this is ever consulted, so implementations may assume every
        way is valid."""

    def on_hit(self, block: CacheBlock, now: int) -> None:
        """Metadata update on an access hit (default: bump recency)."""
        block.last_use = now


class LRUPolicy(ReplacementPolicy):
    """Evict the least-recently-used way (the usual L1 choice)."""

    def victim(self, ways: Sequence[CacheBlock]) -> int:
        oldest = 0
        for i, block in enumerate(ways):
            if block.last_use < ways[oldest].last_use:
                oldest = i
        return oldest


class FIFOPolicy(ReplacementPolicy):
    """Evict the earliest-inserted way, ignoring recency."""

    def victim(self, ways: Sequence[CacheBlock]) -> int:
        oldest = 0
        for i, block in enumerate(ways):
            if block.inserted_at < ways[oldest].inserted_at:
                oldest = i
        return oldest

    def on_hit(self, block: CacheBlock, now: int) -> None:
        # FIFO deliberately does not track recency.
        del block, now


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way (cheap hardware, decent behaviour)."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def victim(self, ways: Sequence[CacheBlock]) -> int:
        return int(self._rng.integers(0, len(ways)))
