"""Memory-hierarchy substrate: caches, MSHRs, coherence, main memory.

These are the structures the paper's evaluation platform provides (64 KB
private L1s in the Pin phase; 16 KB L1s + 512 KB shared L2 + 1 GB memory in
the full-system phase, Table II). Everything is built from scratch: blocks,
replacement policies, set-associative caches, an MSHR file, an MSI
directory and a two-level hierarchy helper.
"""

from repro.mem.block import CacheBlock, CoherenceState
from repro.mem.cache import AccessResult, CacheConfig, SetAssociativeCache
from repro.mem.coherence import MSIDirectory
from repro.mem.dram import DRAMConfig, DRAMModel
from repro.mem.hierarchy import HierarchyAccess, TwoLevelHierarchy
from repro.mem.memory import MainMemory
from repro.mem.mshr import MSHRFile
from repro.mem.replacement import FIFOPolicy, LRUPolicy, RandomPolicy, ReplacementPolicy

__all__ = [
    "AccessResult",
    "CacheBlock",
    "CacheConfig",
    "CoherenceState",
    "DRAMConfig",
    "DRAMModel",
    "FIFOPolicy",
    "HierarchyAccess",
    "LRUPolicy",
    "MainMemory",
    "MSHRFile",
    "MSIDirectory",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "TwoLevelHierarchy",
]
