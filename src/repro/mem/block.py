"""Cache blocks and coherence states."""

from __future__ import annotations

import enum


class CoherenceState(enum.Enum):
    """MSI coherence states (the protocol of Table II)."""

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


class CacheBlock:
    """One cache block's bookkeeping state.

    The simulators track presence and metadata only; data values live in
    the workload-facing value store (:mod:`repro.sim.frontend`), mirroring
    how a trace-driven timing simulator separates timing from functional
    state.
    """

    __slots__ = ("tag", "valid", "dirty", "state", "last_use", "inserted_at", "prefetched")

    def __init__(self, tag: int = 0) -> None:
        self.tag = tag
        self.valid = False
        self.dirty = False
        self.state = CoherenceState.INVALID
        self.last_use = 0
        self.inserted_at = 0
        #: Set when the block was brought in by a prefetch and not yet
        #: demanded; used to measure useful vs. useless prefetches.
        self.prefetched = False

    def fill(self, tag: int, now: int, prefetched: bool = False) -> None:
        """Install a new block in this frame."""
        self.tag = tag
        self.valid = True
        self.dirty = False
        self.state = CoherenceState.SHARED
        self.last_use = now
        self.inserted_at = now
        self.prefetched = prefetched

    def invalidate(self) -> None:
        """Drop the block (eviction or coherence invalidation)."""
        self.valid = False
        self.dirty = False
        self.state = CoherenceState.INVALID
        self.prefetched = False

    def __repr__(self) -> str:
        return (
            f"CacheBlock(tag={self.tag:#x}, valid={self.valid}, dirty={self.dirty}, "
            f"state={self.state.value})"
        )
