"""A directory-based MSI coherence protocol (Table II).

The full-system configuration runs MSI over a 2x2 mesh. This directory
tracks, per block, which cores hold it and in what state, and returns the
invalidation/downgrade messages a request generates so the caller can
charge NoC traffic and invalidate the private caches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.mem.block import CoherenceState


class CoherenceAction(enum.Enum):
    """Messages the directory asks the requester/system to perform."""

    INVALIDATE = "invalidate"
    DOWNGRADE = "downgrade"  # M -> S at the former owner, with writeback
    FETCH_FROM_MEMORY = "fetch"
    FETCH_FROM_OWNER = "forward"


@dataclass(slots=True)
class CoherenceResponse:
    """Result of a directory request."""

    #: Per-core actions, as (core_id, action) pairs; charge one NoC control
    #: message for each.
    actions: List[tuple]
    #: State the requester installs the block in.
    new_state: CoherenceState


@dataclass(slots=True)
class DirectoryEntry:
    """Sharers/owner bookkeeping for one block."""

    sharers: Set[int] = field(default_factory=set)
    owner: int = -1  # core holding the block Modified, or -1


@dataclass(slots=True)
class DirectoryStats:
    """Protocol event counters."""

    read_requests: int = 0
    write_requests: int = 0
    invalidations_sent: int = 0
    downgrades_sent: int = 0
    memory_fetches: int = 0
    owner_forwards: int = 0


class MSIDirectory:
    """Full-map directory for an ``num_cores``-core MSI system."""

    def __init__(self, num_cores: int = 4) -> None:
        self.num_cores = num_cores
        self.stats = DirectoryStats()
        self._entries: Dict[int, DirectoryEntry] = {}

    def _entry(self, block_addr: int) -> DirectoryEntry:
        entry = self._entries.get(block_addr)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[block_addr] = entry
        return entry

    def read(self, core: int, block_addr: int) -> CoherenceResponse:
        """Core issues a GetS (read miss) for the block."""
        self.stats.read_requests += 1
        entry = self._entry(block_addr)
        actions: List[tuple] = []
        if entry.owner >= 0 and entry.owner != core:
            # Owner must downgrade M -> S and supply the data.
            actions.append((entry.owner, CoherenceAction.DOWNGRADE))
            self.stats.downgrades_sent += 1
            entry.sharers.add(entry.owner)
            entry.owner = -1
            self.stats.owner_forwards += 1
            actions.append((core, CoherenceAction.FETCH_FROM_OWNER))
        else:
            self.stats.memory_fetches += 1
            actions.append((core, CoherenceAction.FETCH_FROM_MEMORY))
        entry.sharers.add(core)
        return CoherenceResponse(actions=actions, new_state=CoherenceState.SHARED)

    def write(self, core: int, block_addr: int) -> CoherenceResponse:
        """Core issues a GetM (write miss / upgrade) for the block."""
        self.stats.write_requests += 1
        entry = self._entry(block_addr)
        actions: List[tuple] = []
        if entry.owner >= 0 and entry.owner != core:
            actions.append((entry.owner, CoherenceAction.INVALIDATE))
            self.stats.invalidations_sent += 1
            self.stats.owner_forwards += 1
            actions.append((core, CoherenceAction.FETCH_FROM_OWNER))
        else:
            for sharer in sorted(entry.sharers):
                if sharer != core:
                    actions.append((sharer, CoherenceAction.INVALIDATE))
                    self.stats.invalidations_sent += 1
            if core not in entry.sharers:
                self.stats.memory_fetches += 1
                actions.append((core, CoherenceAction.FETCH_FROM_MEMORY))
        entry.sharers = {core}
        entry.owner = core
        return CoherenceResponse(actions=actions, new_state=CoherenceState.MODIFIED)

    def evict(self, core: int, block_addr: int) -> None:
        """Core silently drops (or writes back) its copy."""
        entry = self._entries.get(block_addr)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = -1
        if not entry.sharers and entry.owner < 0:
            del self._entries[block_addr]

    def state_of(self, core: int, block_addr: int) -> CoherenceState:
        """The directory's view of ``core``'s copy of the block."""
        entry = self._entries.get(block_addr)
        if entry is None:
            return CoherenceState.INVALID
        if entry.owner == core:
            return CoherenceState.MODIFIED
        if core in entry.sharers:
            return CoherenceState.SHARED
        return CoherenceState.INVALID

    @property
    def tracked_blocks(self) -> int:
        """Number of blocks with at least one cached copy."""
        return len(self._entries)

    def reset(self) -> None:
        """Drop all directory state and statistics."""
        self._entries.clear()
        self.stats = DirectoryStats()
