"""A set-associative, write-back cache model.

Used for the 64 KB L1s of the Pin-style design-space phase and the
16 KB L1 / 512 KB L2 of the full-system phase (Table II). The cache tracks
block presence and metadata; functional data lives in the value store of
the simulation front-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.mem.block import CacheBlock
from repro.mem.replacement import LRUPolicy, ReplacementPolicy


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry and latency of one cache level.

    Attributes:
        size_bytes: Total capacity. Must be divisible by
            ``block_bytes * associativity``.
        associativity: Ways per set (1 = direct mapped).
        block_bytes: Cache line size; the paper uses 64 B throughout.
        latency: Access latency in cycles (1 for L1, 6 for L2 in Table II).
    """

    size_bytes: int = 64 * 1024
    associativity: int = 8
    block_bytes: int = 64
    latency: int = 1

    def __post_init__(self) -> None:
        if self.block_bytes <= 0 or self.block_bytes & (self.block_bytes - 1):
            raise ConfigurationError("block_bytes must be a positive power of two")
        if self.associativity < 1:
            raise ConfigurationError("associativity must be >= 1")
        if self.size_bytes < self.block_bytes * self.associativity:
            raise ConfigurationError("cache smaller than one set")
        sets = self.size_bytes // (self.block_bytes * self.associativity)
        if sets * self.block_bytes * self.associativity != self.size_bytes:
            raise ConfigurationError("size must be a whole number of sets")
        if sets & (sets - 1):
            raise ConfigurationError("number of sets must be a power of two")
        if self.latency < 0:
            raise ConfigurationError("latency must be >= 0")

    @property
    def num_sets(self) -> int:
        """Number of sets = size / (block * ways)."""
        return self.size_bytes // (self.block_bytes * self.associativity)


@dataclass(slots=True)
class AccessResult:
    """Outcome of one cache access.

    The unremarkable outcomes (plain hit, plain miss) are returned as
    shared singleton instances so the per-load hot path allocates nothing;
    treat results as read-only.
    """

    hit: bool
    #: Block address (block-aligned byte address) of a dirty block evicted
    #: to make room, or None. Only produced by fills.
    writeback: Optional[int] = None
    #: True when the access hit a block that was prefetched and had not yet
    #: been demanded (a *useful* prefetch).
    prefetch_hit: bool = False


#: Shared results for the overwhelmingly common outcomes (see AccessResult).
_HIT = AccessResult(hit=True)
_MISS = AccessResult(hit=False)

#: Internal probe outcomes (prefetch hits are rare enough to allocate for).
_PROBE_MISS = 0
_PROBE_HIT = 1
_PROBE_PREFETCH_HIT = 2


@dataclass(slots=True)
class CacheStats:
    """Per-cache event counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0
    useful_prefetches: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict:
        """Plain-dict view, handy for reports."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations,
            "useful_prefetches": self.useful_prefetches,
            "miss_rate": self.miss_rate,
        }


class SetAssociativeCache:
    """Set-associative cache with pluggable replacement (default LRU).

    Each set is a ``tag -> CacheBlock`` dictionary, so lookups are O(1)
    rather than a way scan — the simulators probe the cache on every load,
    so this is the hottest path in the whole library.
    """

    def __init__(
        self,
        config: Optional[CacheConfig] = None,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "cache",
    ) -> None:
        self.config = config or CacheConfig()
        self.policy = policy or LRUPolicy()
        self.name = name
        self.stats = CacheStats()
        self._sets: List[dict] = [{} for _ in range(self.config.num_sets)]
        self._clock = 0
        self._offset_bits = self.config.block_bytes.bit_length() - 1
        self._index_mask = self.config.num_sets - 1
        self._index_bits = self._index_mask.bit_length()
        # Plain LRU (the default) only bumps recency on a hit; inlining that
        # one store skips a virtual dispatch on the hottest path. Any other
        # policy — including an LRU subclass — goes through on_hit.
        self._plain_lru = type(self.policy) is LRUPolicy

    # ------------------------------------------------------------------ #
    # Address helpers                                                    #
    # ------------------------------------------------------------------ #

    def block_address(self, addr: int) -> int:
        """Block-aligned byte address containing ``addr``."""
        return addr & ~(self.config.block_bytes - 1)

    def _decompose(self, addr: int) -> tuple:
        block = addr >> self._offset_bits
        return block & self._index_mask, block >> self._index_bits

    def _find(self, addr: int) -> Optional[CacheBlock]:
        block = addr >> self._offset_bits
        return self._sets[block & self._index_mask].get(block >> self._index_bits)

    # ------------------------------------------------------------------ #
    # Accesses                                                           #
    # ------------------------------------------------------------------ #

    def access(self, addr: int, is_write: bool = False) -> AccessResult:
        """Probe the cache for ``addr``; updates stats and recency.

        A miss does *not* implicitly fill — the caller decides whether a
        fetch happens at all (that decoupling is the heart of the paper's
        approximation degree). Call :meth:`fill` when the block arrives.

        Plain hits and misses return shared :class:`AccessResult`
        singletons (no allocation); callers must not mutate results.
        """
        outcome = self._probe(addr, is_write)
        if outcome == _PROBE_HIT:
            return _HIT
        if outcome == _PROBE_MISS:
            return _MISS
        return AccessResult(hit=True, prefetch_hit=True)

    def probe(self, addr: int, is_write: bool = False) -> bool:
        """Boolean fast-path of :meth:`access`: same stats/recency updates,
        but returns just the hit outcome and never allocates.

        The simulators probe the L1 on every load instruction and only ever
        look at ``.hit`` — this is the hottest path in the whole library.
        """
        return self._probe(addr, is_write) != _PROBE_MISS

    def _probe(self, addr: int, is_write: bool) -> int:
        clock = self._clock + 1
        self._clock = clock
        stats = self.stats
        stats.accesses += 1
        block_bits = addr >> self._offset_bits
        block = self._sets[block_bits & self._index_mask].get(
            block_bits >> self._index_bits
        )
        if block is None:
            stats.misses += 1
            return _PROBE_MISS
        stats.hits += 1
        if is_write:
            block.dirty = True
        if self._plain_lru:
            block.last_use = clock
        else:
            self.policy.on_hit(block, clock)
        if block.prefetched:
            stats.useful_prefetches += 1
            block.prefetched = False
            return _PROBE_PREFETCH_HIT
        return _PROBE_HIT

    def contains(self, addr: int) -> bool:
        """Non-destructive presence probe (no stats, no recency update)."""
        return self._find(addr) is not None

    def fill(self, addr: int, prefetched: bool = False) -> AccessResult:
        """Install the block holding ``addr``, evicting if necessary.

        Returns an :class:`AccessResult` whose ``writeback`` carries the
        block address of any dirty victim. Filling a block already present
        is a no-op (e.g. a prefetch racing a demand fetch).
        """
        self._clock += 1
        index, tag = self._decompose(addr)
        ways = self._sets[index]
        if tag in ways:
            return _HIT
        writeback = None
        if len(ways) >= self.config.associativity:
            blocks = list(ways.values())
            victim = blocks[self.policy.victim(blocks)]
            del ways[victim.tag]
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                writeback = self._recompose(index, victim.tag)
        block = CacheBlock(tag)
        block.fill(tag, self._clock, prefetched=prefetched)
        ways[tag] = block
        self.stats.fills += 1
        if writeback is None:
            return _MISS
        return AccessResult(hit=False, writeback=writeback)

    def invalidate(self, addr: int) -> bool:
        """Drop the block holding ``addr`` if present (coherence)."""
        index, tag = self._decompose(addr)
        if tag not in self._sets[index]:
            return False
        del self._sets[index][tag]
        self.stats.invalidations += 1
        return True

    def _recompose(self, index: int, tag: int) -> int:
        return ((tag << self._index_bits) | index) << self._offset_bits

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def resident_blocks(self) -> int:
        """Number of valid blocks currently cached."""
        return sum(len(ways) for ways in self._sets)

    def reset(self) -> None:
        """Invalidate everything and clear statistics."""
        for ways in self._sets:
            ways.clear()
        self.stats = CacheStats()
        self._clock = 0
