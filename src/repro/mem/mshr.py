"""Miss-status holding registers (MSHRs).

MSHRs track outstanding misses so that secondary misses to an in-flight
block merge instead of issuing duplicate fetches. The full-system simulator
uses them to bound memory-level parallelism per core and to model the value
delay realistically (~1 load on average, Section VI-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, SimulationError


@dataclass(slots=True)
class MSHREntry:
    """One outstanding block fetch."""

    block_addr: int
    issue_time: int
    #: Opaque per-load payloads merged onto this miss (e.g. ROB slots).
    waiters: List[object] = field(default_factory=list)


@dataclass(slots=True)
class MSHRStats:
    """MSHR event counters."""

    allocations: int = 0
    merges: int = 0
    stalls_full: int = 0


class MSHRFile:
    """A fixed-size file of MSHR entries keyed by block address."""

    def __init__(self, num_entries: int = 8) -> None:
        if num_entries < 1:
            raise ConfigurationError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        self.stats = MSHRStats()
        self._entries: Dict[int, MSHREntry] = {}

    @property
    def is_full(self) -> bool:
        """True when no further primary miss can be accepted."""
        return len(self._entries) >= self.num_entries

    @property
    def outstanding(self) -> int:
        """Number of in-flight block fetches."""
        return len(self._entries)

    def lookup(self, block_addr: int) -> Optional[MSHREntry]:
        """The entry tracking ``block_addr``, or None."""
        return self._entries.get(block_addr)

    def allocate(self, block_addr: int, now: int, waiter: object = None) -> MSHREntry:
        """Allocate an entry for a primary miss.

        Raises:
            SimulationError: if the file is full (callers must check
                :attr:`is_full` and stall instead) or the block is already
                in flight (callers must merge via :meth:`merge`).
        """
        if block_addr in self._entries:
            raise SimulationError(f"block {block_addr:#x} already has an MSHR")
        if self.is_full:
            self.stats.stalls_full += 1
            raise SimulationError("MSHR file full")
        entry = MSHREntry(block_addr, now)
        if waiter is not None:
            entry.waiters.append(waiter)
        self._entries[block_addr] = entry
        self.stats.allocations += 1
        return entry

    def merge(self, block_addr: int, waiter: object) -> MSHREntry:
        """Attach a secondary miss to an in-flight block."""
        entry = self._entries.get(block_addr)
        if entry is None:
            raise SimulationError(f"no MSHR in flight for block {block_addr:#x}")
        entry.waiters.append(waiter)
        self.stats.merges += 1
        return entry

    def complete(self, block_addr: int) -> MSHREntry:
        """Retire the entry when the fill arrives; returns it (with waiters)."""
        entry = self._entries.pop(block_addr, None)
        if entry is None:
            raise SimulationError(f"completing unknown block {block_addr:#x}")
        return entry

    def reset(self) -> None:
        """Drop all entries and statistics."""
        self._entries.clear()
        self.stats = MSHRStats()
