"""A banked DRAM timing model with row-buffer state.

Table II models main memory as a flat 160-cycle latency; this module
provides the finer-grained alternative: multiple banks, each with an open
row, timed by the classic tRCD / tCAS / tRP parameters (in core cycles at
2 GHz). Accesses to the open row of an idle bank pay only column access +
burst; closed rows add activation; row conflicts add precharge. Bank busy
windows serialise back-to-back requests to the same bank.

Select it in the full-system simulator via
``FullSystemConfig(memory_model="dram")``; the default remains the paper's
fixed latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class DRAMConfig:
    """DDR3-1600-ish timing, expressed in 2 GHz core cycles.

    The defaults land an average access near Table II's 160-cycle figure:
    a row hit costs ~`tCAS + tBurst + overhead`, a row miss adds tRCD, and
    a conflict adds tRP on top.

    Attributes:
        banks: Independent banks (bank = block address interleave).
        row_bytes: Row-buffer size per bank.
        t_rcd: Activate-to-read delay (row open), core cycles.
        t_cas: Read latency after the column command.
        t_rp: Precharge time (closing a row).
        t_burst: Data-burst transfer time for one 64 B block.
        overhead: Fixed controller/PHY overhead per access (queueing,
            command scheduling, bus turnaround).
    """

    banks: int = 8
    row_bytes: int = 8 * 1024
    t_rcd: int = 28
    t_cas: int = 28
    t_rp: int = 28
    t_burst: int = 8
    overhead: int = 90

    def __post_init__(self) -> None:
        if self.banks < 1 or self.banks & (self.banks - 1):
            raise ConfigurationError("banks must be a positive power of two")
        if self.row_bytes <= 0 or self.row_bytes & (self.row_bytes - 1):
            raise ConfigurationError("row_bytes must be a positive power of two")
        for name in ("t_rcd", "t_cas", "t_rp", "t_burst", "overhead"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")


@dataclass(slots=True)
class DRAMStats:
    """Row-buffer behaviour counters."""

    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    bank_wait_cycles: int = 0

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses served from an already-open row."""
        return self.row_hits / self.accesses if self.accesses else 0.0


class _Bank:
    """One bank's row-buffer and busy window."""

    __slots__ = ("open_row", "busy_until")

    def __init__(self) -> None:
        self.open_row = -1  # no row open
        self.busy_until = 0.0


class DRAMModel:
    """Open-page banked DRAM; returns per-access latencies."""

    def __init__(self, config: DRAMConfig = DRAMConfig()) -> None:
        self.config = config
        self.stats = DRAMStats()
        self._banks: List[_Bank] = [_Bank() for _ in range(config.banks)]
        self._bank_mask = config.banks - 1
        self._row_shift = config.row_bytes.bit_length() - 1

    def _locate(self, addr: int) -> Tuple[_Bank, int]:
        block = addr >> 6  # 64 B blocks interleave across banks
        bank = self._banks[block & self._bank_mask]
        row = addr >> self._row_shift
        return bank, row

    def access(self, addr: int, now: float = 0.0) -> int:
        """Access the block at ``addr`` at time ``now``; returns latency.

        The latency covers waiting for the bank, any precharge/activate the
        row-buffer state requires, column access and the data burst, plus
        the fixed controller overhead.
        """
        cfg = self.config
        bank, row = self._locate(addr)
        self.stats.accesses += 1

        start = max(now, bank.busy_until)
        wait = start - now
        self.stats.bank_wait_cycles += int(wait)

        if bank.open_row == row:
            self.stats.row_hits += 1
            service = cfg.t_cas + cfg.t_burst
        elif bank.open_row < 0:
            self.stats.row_misses += 1
            service = cfg.t_rcd + cfg.t_cas + cfg.t_burst
        else:
            self.stats.row_conflicts += 1
            service = cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_burst

        bank.open_row = row
        bank.busy_until = start + service
        return int(wait + service + cfg.overhead)

    @property
    def average_latency_estimate(self) -> float:
        """Rough expected latency for mixed traffic (for calibration checks)."""
        cfg = self.config
        hit = cfg.t_cas + cfg.t_burst
        conflict = cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_burst
        return cfg.overhead + (hit + conflict) / 2

    def reset(self) -> None:
        """Close every row and clear counters."""
        for bank in self._banks:
            bank.open_row = -1
            bank.busy_until = 0.0
        self.stats = DRAMStats()
