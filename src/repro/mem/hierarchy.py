"""A two-level cache hierarchy convenience wrapper.

Composes an L1, an L2 and main memory for single-stream studies (the
full-system simulator wires its own multi-core topology in
:mod:`repro.fullsystem` because the L2 there is distributed across NoC
nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.memory import MainMemory


@dataclass(slots=True)
class HierarchyAccess:
    """Outcome of a load walking the hierarchy."""

    #: "l1", "l2" or "memory" — the level that supplied the data; "none"
    #: when the fetch was cancelled, "dropped" when an injected memory
    #: fault silently lost it.
    served_by: str
    #: Total latency in cycles, summing each level traversed.
    latency: int
    #: True when a block was brought into the L1.
    l1_filled: bool


class TwoLevelHierarchy:
    """L1 + L2 + memory with inclusive fills on the demand path."""

    def __init__(
        self,
        l1: Optional[SetAssociativeCache] = None,
        l2: Optional[SetAssociativeCache] = None,
        memory: Optional[MainMemory] = None,
        fault_model: Optional[object] = None,
    ) -> None:
        self.l1 = l1 or SetAssociativeCache(
            CacheConfig(size_bytes=16 * 1024, associativity=8, latency=1), name="l1"
        )
        self.l2 = l2 or SetAssociativeCache(
            CacheConfig(size_bytes=512 * 1024, associativity=16, latency=6), name="l2"
        )
        self.memory = memory or MainMemory(fault_model=fault_model)

    def load(self, addr: int, fetch_on_miss: bool = True) -> HierarchyAccess:
        """Access ``addr``; on an L1 miss optionally fetch through L2/memory.

        ``fetch_on_miss=False`` models an approximated miss whose fetch was
        cancelled by the approximation degree: the miss is recorded but no
        lower level is touched and nothing is filled.
        """
        latency = self.l1.config.latency
        if self.l1.probe(addr):
            return HierarchyAccess(served_by="l1", latency=latency, l1_filled=False)
        if not fetch_on_miss:
            return HierarchyAccess(served_by="none", latency=latency, l1_filled=False)
        latency += self.l2.config.latency
        if self.l2.probe(addr):
            self._fill_l1(addr)
            return HierarchyAccess(served_by="l2", latency=latency, l1_filled=True)
        memory_latency, delivered = self.memory.fetch_block(addr)
        latency += memory_latency
        if not delivered:
            # Injected fault: the fill never arrives, nothing is cached.
            return HierarchyAccess(served_by="dropped", latency=latency, l1_filled=False)
        self.l2.fill(addr)
        self._fill_l1(addr)
        return HierarchyAccess(served_by="memory", latency=latency, l1_filled=True)

    def store(self, addr: int) -> HierarchyAccess:
        """Write ``addr`` (write-allocate, write-back)."""
        access = self.load(addr)
        self.l1.probe(addr, is_write=True)
        return access

    def _fill_l1(self, addr: int) -> None:
        result = self.l1.fill(addr)
        if result.writeback is not None:
            # Dirty L1 victim lands in the L2 (write-back).
            self.l2.fill(result.writeback)
            self.l2.probe(result.writeback, is_write=True)

    def reset(self) -> None:
        """Reset every level."""
        self.l1.reset()
        self.l2.reset()
        self.memory.reset()
