"""Workload abstraction shared by the seven benchmarks.

A workload is a deterministic program parameterised by a seed: it builds
its input data, stores it into the simulated address space, runs the
algorithm issuing loads through a :class:`~repro.sim.frontend.MemoryFrontend`
and returns an output object. Running the same workload against
:class:`~repro.sim.frontend.PreciseMemory` and against a
:class:`~repro.sim.tracesim.TraceSimulator` in LVA mode yields the precise
and approximate outputs whose distance is the paper's *output error*.

Workloads spread their iterations across four logical threads
(``mem.set_thread``), matching the paper's 4-thread PARSEC configuration
and enabling the full-system trace replay.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.sim.frontend import MemoryFrontend, PreciseMemory


class PCTable:
    """Stable synthetic instruction addresses for load sites.

    Each distinct site name receives a unique, deterministic PC. Sites are
    numbered in first-use order, which is deterministic because workloads
    are deterministic; the workload id keeps PCs disjoint across
    benchmarks (they never share an approximator anyway, but disjoint PCs
    keep traces unambiguous).
    """

    def __init__(self, workload_id: int) -> None:
        self._base = (workload_id & 0xFF) << 20
        self._sites: Dict[str, int] = {}

    def site(self, name: str) -> int:
        """The PC for load site ``name`` (allocated on first use)."""
        pc = self._sites.get(name)
        if pc is None:
            pc = self._base | (len(self._sites) << 2)
            self._sites[name] = pc
        return pc

    def __len__(self) -> int:
        return len(self._sites)


class Workload(abc.ABC):
    """One benchmark: build input, run, and score output error."""

    #: Benchmark name as used in the paper's figures.
    name: str = "workload"
    #: Whether the annotated (approximable) data is floating point.
    float_data: bool = True
    #: Stable small integer distinguishing this workload's PCs.
    workload_id: int = 0
    #: Number of logical threads iterations are spread across.
    threads: int = 4

    def __init__(self, params: Optional[dict] = None) -> None:
        merged = dict(self.default_params())
        if params:
            unknown = set(params) - set(merged)
            if unknown:
                raise WorkloadError(
                    f"{self.name}: unknown parameters {sorted(unknown)}"
                )
            merged.update(params)
        self.params = merged
        self.pcs = PCTable(self.workload_id)

    # ------------------------------------------------------------------ #
    # Contract                                                           #
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def default_params(self) -> dict:
        """Input-scale parameters for the evaluation runs."""

    @classmethod
    def small(cls) -> "Workload":
        """A reduced instance for fast tests."""
        return cls(cls.small_params())

    @staticmethod
    def small_params() -> dict:
        """Parameter overrides for :meth:`small`; subclasses shrink here."""
        return {}

    @abc.abstractmethod
    def run(self, mem: MemoryFrontend, rng: np.random.Generator) -> object:
        """Execute the benchmark against ``mem``; returns the output object.

        Implementations must draw randomness only from ``rng`` and in an
        order independent of loaded values, so a precise and an approximate
        run see identical random streams and differ only through
        approximated values.
        """

    @abc.abstractmethod
    def output_error(self, precise: object, approx: object) -> float:
        """The paper's per-benchmark output-error metric, in [0, 1]."""

    # ------------------------------------------------------------------ #
    # Conveniences                                                       #
    # ------------------------------------------------------------------ #

    def execute(self, mem: MemoryFrontend, seed: int = 0) -> object:
        """Run with a fresh seeded generator (the standard entry point)."""
        return self.run(mem, np.random.default_rng(seed))


def run_precise(workload: Workload, seed: int = 0) -> Tuple[object, int]:
    """Run against :class:`PreciseMemory`; returns (output, instructions)."""
    mem = PreciseMemory()
    output = workload.execute(mem, seed)
    return output, mem.instructions


def run_with_frontend(
    workload: Workload, mem: MemoryFrontend, seed: int = 0
) -> object:
    """Run against an arbitrary front-end (helper mirroring run_precise)."""
    return workload.execute(mem, seed)
