"""blackscholes — Black–Scholes option pricing (PARSEC financial kernel).

The input portfolio is highly redundant, mirroring the paper's observation
about the simlarge input set: the underlying asset price takes only four
distinct values, two of which cover over 98 % of the options; strikes,
volatilities and times similarly come from small discrete sets. The option
parameters are annotated approximate (they are read repeatedly but never
updated), and each option's price is computed with the closed-form
Black–Scholes formula.

Output error (Section IV-A): the percentage of option prices whose relative
error versus precise execution exceeds 1 %.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.sim.frontend import MemoryFrontend
from repro.workloads.base import Workload

#: Spot prices: two dominant values (98 %) plus two rare outliers — the
#: distribution the paper reports for simlarge.
_SPOTS = np.array([100.0, 98.0, 42.0, 173.0])
_SPOT_PROBS = np.array([0.55, 0.43, 0.01, 0.01])
_STRIKES = np.array([90.0, 95.0, 100.0, 105.0, 110.0, 120.0])
_VOLS = np.array([0.20, 0.22, 0.35, 0.50])
_TIMES = np.array([0.25, 0.5, 1.0, 2.0])
_RATE = 0.02


def _cdf(x: float) -> float:
    """Standard normal CDF via the error function."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def black_scholes_price(
    spot: float, strike: float, rate: float, vol: float, time: float, is_call: bool
) -> float:
    """Closed-form Black–Scholes price of a European option."""
    spot = max(spot, 1e-9)
    strike = max(strike, 1e-9)
    vol = max(vol, 1e-6)
    time = max(time, 1e-6)
    sigma_rt = vol * math.sqrt(time)
    d1 = (math.log(spot / strike) + (rate + 0.5 * vol * vol) * time) / sigma_rt
    d2 = d1 - sigma_rt
    if is_call:
        return spot * _cdf(d1) - strike * math.exp(-rate * time) * _cdf(d2)
    return strike * math.exp(-rate * time) * _cdf(-d2) - spot * _cdf(-d1)


class Blackscholes(Workload):
    """Price a portfolio of European options with annotated inputs."""

    name = "blackscholes"
    float_data = True
    workload_id = 1

    def default_params(self) -> dict:
        return {
            "n_options": 4096,
            #: Non-load instructions per option (calibrates MPKI towards the
            #: paper's Table I figure of ~0.9 for precise execution).
            "compute_cost": 620,
        }

    @staticmethod
    def small_params() -> dict:
        return {"n_options": 256, "compute_cost": 620}

    def run(self, mem: MemoryFrontend, rng: np.random.Generator) -> List[float]:
        n = self.params["n_options"]
        cost = self.params["compute_cost"]

        spots = rng.choice(_SPOTS, size=n, p=_SPOT_PROBS)
        strikes = rng.choice(_STRIKES, size=n)
        vols = rng.choice(_VOLS, size=n)
        times = rng.choice(_TIMES, size=n)
        is_call = rng.random(n) < 0.5

        region_spot = mem.space.alloc("spot", n)
        region_strike = mem.space.alloc("strike", n)
        region_vol = mem.space.alloc("vol", n)
        region_time = mem.space.alloc("time", n)
        region_type = mem.space.alloc("otype", n)
        for i in range(n):
            mem.store(region_spot.addr(i), float(spots[i]))
            mem.store(region_strike.addr(i), float(strikes[i]))
            mem.store(region_vol.addr(i), float(vols[i]))
            mem.store(region_time.addr(i), float(times[i]))
            mem.store(region_type.addr(i), int(is_call[i]))

        pc_spot = self.pcs.site("load_spot")
        pc_strike = self.pcs.site("load_strike")
        pc_vol = self.pcs.site("load_vol")
        pc_time = self.pcs.site("load_time")
        pc_type = self.pcs.site("load_otype")

        prices: List[float] = []
        for i in range(n):
            mem.set_thread(i % self.threads)
            spot = mem.load_approx(pc_spot, region_spot.addr(i))
            strike = mem.load_approx(pc_strike, region_strike.addr(i))
            vol = mem.load_approx(pc_vol, region_vol.addr(i))
            time = mem.load_approx(pc_time, region_time.addr(i))
            # The option type drives control flow, so it is loaded precisely
            # (Section IV: never approximate data that directly steers
            # control flow).
            call = mem.load(pc_type, region_type.addr(i))
            mem.advance(cost)
            prices.append(
                black_scholes_price(spot, strike, _RATE, vol, time, bool(call))
            )
        return prices

    def output_error(self, precise: List[float], approx: List[float]) -> float:
        """Fraction of prices with relative error above 1 % (Section IV-A)."""
        assert len(precise) == len(approx)
        bad = 0
        for p, a in zip(precise, approx):
            denom = abs(p) if abs(p) > 1e-9 else 1e-9
            if abs(a - p) / denom > 0.01:
                bad += 1
        return bad / len(precise) if precise else 0.0
