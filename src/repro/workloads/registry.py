"""Registry mapping benchmark names to workload classes."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.blackscholes import Blackscholes
from repro.workloads.bodytrack import Bodytrack
from repro.workloads.canneal import Canneal
from repro.workloads.ferret import Ferret
from repro.workloads.fluidanimate import Fluidanimate
from repro.workloads.swaptions import Swaptions
from repro.workloads.x264 import X264

#: Every benchmark of the paper's evaluation, in its figure order.
WORKLOADS: Dict[str, Type[Workload]] = {
    "blackscholes": Blackscholes,
    "bodytrack": Bodytrack,
    "canneal": Canneal,
    "ferret": Ferret,
    "fluidanimate": Fluidanimate,
    "swaptions": Swaptions,
    "x264": X264,
}


def workload_names() -> List[str]:
    """Benchmark names in canonical (paper) order."""
    return list(WORKLOADS)


def get_workload(
    name: str, params: Optional[dict] = None, small: bool = False
) -> Workload:
    """Instantiate a benchmark by name.

    Args:
        name: One of :func:`workload_names`.
        params: Parameter overrides applied on top of the defaults (or, with
            ``small=True``, on top of the reduced test-scale parameters).
        small: Use the reduced instance intended for fast tests.
    """
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(WORKLOADS)}"
        ) from None
    if small:
        merged = dict(cls.small_params())
        if params:
            merged.update(params)
        return cls(merged)
    return cls(params)
