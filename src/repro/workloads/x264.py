"""x264 — H.264 motion estimation (PARSEC media kernel).

Encodes a short synthetic sequence: each frame is the previous frame
translated by a slowly varying global motion plus per-pixel noise, the
pattern block-matching motion estimation exploits. For every 16x16
macroblock a diamond search scans candidate motion vectors, scoring each by
the sum of absolute differences (SAD) over a subsampled point pattern; the
*reference-frame pixel loads* inside the SAD are the annotated approximate
data (integer pixels, as in the paper). Motion estimation is the hottest
region of x264 and touches hundreds of static load PCs — Figure 12 reports
up to ~300, the most of any benchmark — reproduced here by the unrolled
(point, candidate) load sites.

Output error: the paper compares peak signal-to-noise ratio and bit rate,
weighted equally. We compute the PSNR of the motion-compensated prediction
and a bit-rate proxy (residual energy plus motion-vector magnitude bits)
and average their relative changes.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.sim.frontend import MemoryFrontend
from repro.workloads.base import Workload

#: Diamond-search offsets explored around the current best vector.
_DIAMOND = [(0, 0), (0, -2), (0, 2), (-2, 0), (2, 0), (-1, -1), (1, 1), (-1, 1), (1, -1)]


class X264(Workload):
    """Motion-estimate a synthetic sequence with approximate reference reads."""

    name = "x264"
    float_data = False
    workload_id = 5

    def default_params(self) -> dict:
        return {
            "width": 160,
            "height": 96,
            "frames": 4,
            "block": 16,
            "search_rounds": 3,
            "sample_points": 16,
            #: Non-load instructions per SAD evaluation (interpolation,
            #: cost bookkeeping); calibrates MPKI towards Table I's 0.59.
            "compute_cost": 3400,
        }

    @staticmethod
    def small_params() -> dict:
        return {"width": 64, "height": 48, "frames": 2, "search_rounds": 2}

    def _sequence(self, rng: np.random.Generator) -> List[np.ndarray]:
        """Synthesise frames: textured base translated by global motion."""
        width = self.params["width"]
        height = self.params["height"]
        frames = self.params["frames"]
        ys, xs = np.mgrid[0:height, 0:width]
        base = (
            120
            + 60 * np.sin(xs / 7.0)
            + 40 * np.cos(ys / 5.0)
            + 20 * np.sin((xs + ys) / 11.0)
        )
        sequence = []
        for f in range(frames):
            dx, dy = 2 * f + 1, f  # slowly varying global motion
            shifted = np.roll(np.roll(base, dy, axis=0), dx, axis=1)
            noisy = shifted + rng.integers(-4, 5, size=base.shape)
            sequence.append(np.clip(noisy, 0, 255).astype(np.int64))
        return sequence

    def run(self, mem: MemoryFrontend, rng: np.random.Generator) -> Dict[str, float]:
        width = self.params["width"]
        height = self.params["height"]
        block = self.params["block"]
        rounds = self.params["search_rounds"]
        n_points = self.params["sample_points"]
        cost = self.params["compute_cost"]

        sequence = self._sequence(rng)
        reference_region = mem.space.alloc("reference_frame", width * height)
        current_region = mem.space.alloc("current_frame", width * height)

        # Subsampled SAD pattern: a deterministic spread inside the block.
        points = [
            ((k * 5) % block, ((k * 7) // block * 5 + k) % block)
            for k in range(n_points)
        ]
        # One PC per (point, candidate) pair: the unrolled SAD inner loop.
        pcs = [
            [self.pcs.site(f"sad_p{k}_c{c}") for c in range(len(_DIAMOND))]
            for k in range(n_points)
        ]
        cur_pcs = [self.pcs.site(f"cur_p{k}") for k in range(n_points)]

        total_sq_residual = 0.0
        total_mv_bits = 0.0
        n_pixels = 0
        mb_index = 0
        for f in range(1, len(sequence)):
            reference = sequence[f - 1]
            current = sequence[f]
            # "Decode" the reference and capture the current frame.
            flat = reference.ravel()
            flat_cur = current.ravel()
            for idx in range(flat.size):
                mem.store(reference_region.addr(idx), int(flat[idx]))
                mem.store(current_region.addr(idx), int(flat_cur[idx]))

            for by in range(0, height - block + 1, block):
                for bx in range(0, width - block + 1, block):
                    mem.set_thread(mb_index % self.threads)
                    mb_index += 1
                    best_mv, best_sad = (0, 0), float("inf")
                    centre = (0, 0)
                    for _ in range(rounds):
                        improved = False
                        for c, (ox, oy) in enumerate(_DIAMOND):
                            mvx, mvy = centre[0] + ox, centre[1] + oy
                            sad = 0
                            for k, (px, py) in enumerate(points):
                                rx = (bx + px + mvx) % width
                                ry = (by + py + mvy) % height
                                ref_pixel = mem.load_approx(
                                    pcs[k][c],
                                    reference_region.addr(ry * width + rx),
                                    is_float=False,
                                )
                                # Current-frame pixels are being encoded and
                                # are never annotated: a precise load.
                                cur_pixel = mem.load(
                                    cur_pcs[k],
                                    current_region.addr((by + py) * width + (bx + px)),
                                )
                                sad += abs(cur_pixel - ref_pixel)
                            mem.advance(cost)
                            if sad < best_sad:
                                best_sad = sad
                                best_mv = (mvx, mvy)
                                improved = True
                        if not improved:
                            break
                        centre = best_mv

                    # Encode: the residual is computed from *precise* pixels
                    # (only the search decision was approximate).
                    mvx, mvy = best_mv
                    pred = np.roll(
                        np.roll(reference, -mvy, axis=0), -mvx, axis=1
                    )[by : by + block, bx : bx + block]
                    residual = current[by : by + block, bx : bx + block] - pred
                    total_sq_residual += float((residual.astype(float) ** 2).sum())
                    total_mv_bits += 2 + abs(mvx) + abs(mvy)
                    n_pixels += block * block

        mse = total_sq_residual / max(n_pixels, 1)
        psnr = 10 * math.log10(255.0 * 255.0 / max(mse, 1e-9))
        bits = total_mv_bits + total_sq_residual / 64.0
        return {"psnr": psnr, "bits": bits}

    def output_error(self, precise: Dict[str, float], approx: Dict[str, float]) -> float:
        """PSNR and bit-rate changes, weighted equally (Section IV-A)."""
        psnr_err = abs(approx["psnr"] - precise["psnr"]) / max(abs(precise["psnr"]), 1e-9)
        bits_err = abs(approx["bits"] - precise["bits"]) / max(abs(precise["bits"]), 1e-9)
        return min(0.5 * psnr_err + 0.5 * bits_err, 1.0)
