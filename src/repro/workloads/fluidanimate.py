"""fluidanimate — smoothed-particle-hydrodynamics fluid step (PARSEC).

Particles in a 2-D box are binned into cells; densities are accumulated
over neighbouring-cell pairs and pressure/viscosity forces integrate the
particle positions forward. Following Section IV-A, the particle state read
during the *density and acceleration* phases (positions and densities) is
annotated approximate; integration and cell binning stay precise.

Particle records are stored at a cache-line-ish stride (32 B) to model the
array-of-structures layout of the real benchmark, which is what gives
fluidanimate its non-trivial MPKI despite heavy locality.

Output error: the percentage of particles that end in a different cell
than under precise execution (Section IV-A).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.sim.frontend import MemoryFrontend
from repro.workloads.base import Workload


class Fluidanimate(Workload):
    """One SPH simulation with approximate density/force reads."""

    name = "fluidanimate"
    float_data = True
    workload_id = 7

    def default_params(self) -> dict:
        return {
            "particles": 512,
            "timesteps": 3,
            "smoothing": 0.06,
            "dt": 0.004,
            "rest_density": 80.0,
            "stiffness": 12.0,
            "gravity": -9.8,
            #: Struct stride in bytes (AoS layout of the real benchmark).
            "stride": 48,
            #: Non-load instructions per interacting pair.
            "compute_cost": 350,
        }

    @staticmethod
    def small_params() -> dict:
        return {"particles": 128, "timesteps": 2}

    def run(self, mem: MemoryFrontend, rng: np.random.Generator) -> List[int]:
        n = self.params["particles"]
        steps = self.params["timesteps"]
        h = self.params["smoothing"]
        dt = self.params["dt"]
        rest = self.params["rest_density"]
        stiffness = self.params["stiffness"]
        gravity = self.params["gravity"]
        stride = self.params["stride"]
        cost = self.params["compute_cost"]

        # A dam-break style initial configuration. The box spans
        # [ORIGIN, ORIGIN + 1] in world coordinates — the real benchmark
        # simulates in un-normalised world space, which matters for the
        # relative confidence window.
        origin = 8.0
        px = rng.uniform(origin + 0.05, origin + 0.55, size=n)
        py = rng.uniform(origin + 0.05, origin + 0.95, size=n)
        vx = np.zeros(n)
        vy = np.zeros(n)
        rho = np.full(n, rest)

        region_x = mem.space.alloc("px", n, itemsize=stride)
        region_y = mem.space.alloc("py", n, itemsize=stride)
        region_rho = mem.space.alloc("rho", n, itemsize=stride)
        # The cell lists are index (pointer) data and are therefore read
        # precisely (Section IV: never approximate memory addresses).
        region_idx = mem.space.alloc("cell_entries", n)

        def publish(i: int) -> None:
            mem.store(region_x.addr(i), float(px[i]))
            mem.store(region_y.addr(i), float(py[i]))
            mem.store(region_rho.addr(i), float(rho[i]))

        for i in range(n):
            publish(i)

        pc_idx = self.pcs.site("cell_entry")
        pc_dx = self.pcs.site("density_x")
        pc_dy = self.pcs.site("density_y")
        pc_fx = self.pcs.site("force_x")
        pc_fy = self.pcs.site("force_y")
        pc_frho = self.pcs.site("force_rho")

        grid = max(int(1.0 / h), 1)

        def cell_of(x: float, y: float) -> int:
            cx = min(max(int((x - origin) * grid), 0), grid - 1)
            cy = min(max(int((y - origin) * grid), 0), grid - 1)
            return cy * grid + cx

        def build_cells() -> dict:
            """Bin particles into cells and publish the flattened cell
            entry array; returns cell -> (start_slot, count)."""
            cells: dict = {}
            for i in range(n):
                cells.setdefault(cell_of(px[i], py[i]), []).append(i)
            spans: dict = {}
            slot = 0
            for cell, members in cells.items():
                spans[cell] = (slot, len(members))
                for member in members:
                    mem.store(region_idx.addr(slot), member)
                    slot += 1
            return spans

        def neighbour_slots(i: int, spans: dict) -> List[int]:
            cx = min(max(int((px[i] - origin) * grid), 0), grid - 1)
            cy = min(max(int((py[i] - origin) * grid), 0), grid - 1)
            found: List[int] = []
            for oy in (-1, 0, 1):
                for ox in (-1, 0, 1):
                    nx, ny = cx + ox, cy + oy
                    if 0 <= nx < grid and 0 <= ny < grid:
                        start, count = spans.get(ny * grid + nx, (0, 0))
                        found.extend(range(start, start + count))
            return found

        h2 = h * h
        for step in range(steps):
            spans = build_cells()

            # Density pass: approximate reads of neighbour positions.
            for i in range(n):
                mem.set_thread(i % self.threads)
                density = 0.0
                for slot in neighbour_slots(i, spans):
                    j = mem.load(pc_idx, region_idx.addr(slot))
                    xj = mem.load_approx(pc_dx, region_x.addr(j))
                    yj = mem.load_approx(pc_dy, region_y.addr(j))
                    mem.advance(cost)
                    r2 = (px[i] - xj) ** 2 + (py[i] - yj) ** 2
                    if r2 < h2:
                        w = 1.0 - r2 / h2
                        density += w * w * w
                rho[i] = rest * density
                mem.store(region_rho.addr(i), float(rho[i]))

            # Force pass: approximate reads of neighbour state.
            for i in range(n):
                mem.set_thread(i % self.threads)
                ax, ay = 0.0, gravity
                pressure_i = stiffness * (rho[i] - rest)
                for slot in neighbour_slots(i, spans):
                    j = mem.load(pc_idx, region_idx.addr(slot))
                    if j == i:
                        continue
                    xj = mem.load_approx(pc_fx, region_x.addr(j))
                    yj = mem.load_approx(pc_fy, region_y.addr(j))
                    rho_j = mem.load_approx(pc_frho, region_rho.addr(j))
                    mem.advance(cost)
                    dx = px[i] - xj
                    dy = py[i] - yj
                    r2 = dx * dx + dy * dy
                    if 1e-12 < r2 < h2:
                        r = r2 ** 0.5
                        w = 1.0 - r / h
                        pressure_j = stiffness * (max(rho_j, 1e-9) - rest)
                        shared = (pressure_i + pressure_j) * w / (2.0 * max(rho_j, 1e-3) * r)
                        ax += shared * dx
                        ay += shared * dy
                # Integrate precisely (the paper never approximates updates).
                vx[i] = 0.98 * (vx[i] + ax * dt)
                vy[i] = 0.98 * (vy[i] + ay * dt)
                px[i] = min(max(px[i] + vx[i] * dt, origin), origin + 0.999)
                py[i] = min(max(py[i] + vy[i] * dt, origin), origin + 0.999)
                publish(i)

        return [cell_of(px[i], py[i]) for i in range(n)]

    def output_error(self, precise: List[int], approx: List[int]) -> float:
        """Fraction of particles in a different final cell (Section IV-A)."""
        assert len(precise) == len(approx)
        if not precise:
            return 0.0
        mismatched = sum(1 for p, a in zip(precise, approx) if p != a)
        return mismatched / len(precise)
