"""ferret — content-based image similarity search (PARSEC server app).

A database of image-segment feature vectors is scanned for each query; the
closest K database entries are returned. The floating-point feature-vector
elements are the annotated approximate data — and, as the paper observes,
they have no discrete range or apparent pattern, and distinct vectors are
loaded by a *single* static PC per dimension, which makes ferret the least
approximable benchmark (its error is also measured pessimistically).

Output error: 1 - |approximate results ∩ precise results| / |precise
results|, averaged over queries (Section IV-A, after [39]).
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.sim.frontend import MemoryFrontend
from repro.workloads.base import Workload


class Ferret(Workload):
    """Top-K nearest-neighbour search with approximate vector reads."""

    name = "ferret"
    float_data = True
    workload_id = 6

    def default_params(self) -> dict:
        return {
            "database_size": 2048,
            "dimensions": 8,
            "queries": 16,
            "top_k": 8,
            #: Clusters in the synthetic feature space (images of the same
            #: scene share a cluster, giving the search something to find).
            "clusters": 24,
            #: Non-load instructions per candidate distance computation
            #: (ranking/heap bookkeeping; calibrates MPKI towards Table I).
            "compute_cost": 600,
        }

    @staticmethod
    def small_params() -> dict:
        return {"database_size": 128, "queries": 8, "clusters": 8}

    def run(self, mem: MemoryFrontend, rng: np.random.Generator) -> List[Set[int]]:
        n = self.params["database_size"]
        dims = self.params["dimensions"]
        n_queries = self.params["queries"]
        top_k = self.params["top_k"]
        clusters = self.params["clusters"]
        cost = self.params["compute_cost"]

        # Feature vectors model colour/texture histograms: every
        # dimension has a characteristic scale (low-frequency bins carry
        # more mass), clusters modulate it multiplicatively, and noise adds
        # the paper's "no discrete range or apparent pattern" spread.
        scales = rng.uniform(0.3, 1.5, size=dims)
        cluster_mod = 1.0 + rng.normal(0, 0.15, size=(clusters, dims))
        assignment = rng.integers(0, clusters, size=n)
        database = np.abs(
            scales * cluster_mod[assignment] * (1.0 + rng.normal(0, 0.07, size=(n, dims)))
        )
        query_clusters = rng.integers(0, clusters, size=n_queries)
        queries = np.abs(
            scales
            * cluster_mod[query_clusters]
            * (1.0 + rng.normal(0, 0.07, size=(n_queries, dims)))
        )

        region = mem.space.alloc("features", n * dims)
        # Each database entry also carries a segment descriptor (image id,
        # segment bounds) that the search reads precisely; it is laid out as
        # a separate 64-byte record per entry, so the descriptor walk
        # contributes background precise misses like the real ferret's
        # metadata traversal.
        region_meta = mem.space.alloc("segment_meta", n, itemsize=64)
        for i in range(n):
            for d in range(dims):
                mem.store(region.addr(i * dims + d), float(database[i, d]))
            mem.store(region_meta.addr(i), i)

        # One static PC per dimension of the distance loop — the paper notes
        # different feature vectors stream through a single PC.
        pcs = [self.pcs.site(f"feature_dim_{d}") for d in range(dims)]
        pc_meta = self.pcs.site("segment_meta")

        results: List[Set[int]] = []
        for q in range(n_queries):
            mem.set_thread(q % self.threads)
            query = queries[q]
            distances = np.empty(n)
            for i in range(n):
                # Walk the segment descriptor first (a precise pointer-like
                # load), then the feature vector (annotated approximate).
                entry = mem.load(pc_meta, region_meta.addr(i))
                dist = 0.0
                base = entry * dims
                for d in range(dims):
                    value = mem.load_approx(pcs[d], region.addr(base + d))
                    diff = value - query[d]
                    dist += diff * diff
                mem.advance(cost)
                distances[i] = dist
            order = np.argsort(distances, kind="stable")
            results.append(set(int(i) for i in order[:top_k]))
        return results

    def output_error(self, precise: List[Set[int]], approx: List[Set[int]]) -> float:
        """1 - mean overlap with the precise result sets (pessimistic)."""
        assert len(precise) == len(approx)
        if not precise:
            return 0.0
        total = 0.0
        for p_set, a_set in zip(precise, approx):
            if not p_set:
                continue
            total += 1.0 - len(p_set & a_set) / len(p_set)
        return total / len(precise)
